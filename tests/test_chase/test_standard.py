"""Tests for the standard chase (nulls, egd unification, failure)."""

import pytest

from repro.chase import canonical_universal_solution, has_solution, standard_chase
from repro.parser import parse_mapping, parse_query
from repro.relational import Fact, Instance, evaluate
from repro.relational.homomorphism import is_homomorphic_to
from repro.relational.terms import is_null_value


def f(rel, *args):
    return Fact(rel, args)


@pytest.fixture
def copy_mapping():
    return parse_mapping(
        """
        SOURCE R/2. TARGET T/2.
        R(x, y) -> T(x, y).
        """
    )


class TestTgdChase:
    def test_copy(self, copy_mapping):
        result = standard_chase(Instance([f("R", "a", "b")]), copy_mapping)
        assert not result.failed
        assert set(result.target) == {f("T", "a", "b")}

    def test_existential_creates_null(self):
        mapping = parse_mapping(
            """
            SOURCE R/1. TARGET T/2.
            R(x) -> T(x, y).
            """
        )
        result = standard_chase(Instance([f("R", "a")]), mapping)
        (fact,) = result.target
        assert fact.args[0] == "a"
        assert is_null_value(fact.args[1])
        assert result.nulls_created == 1

    def test_standard_chase_does_not_refire_satisfied_triggers(self):
        mapping = parse_mapping(
            """
            SOURCE R/2. TARGET T/2.
            R(x, y) -> T(x, z).
            """
        )
        # The head is satisfiable with the existing T-fact derived first.
        result = standard_chase(
            Instance([f("R", "a", "b"), f("R", "a", "c")]), mapping
        )
        assert len(result.target) == 1  # one null for both triggers

    def test_target_tgds_saturate(self):
        mapping = parse_mapping(
            """
            SOURCE E/2. TARGET P/2.
            E(x, y) -> P(x, y).
            P(x, y), P(y, z) -> P(x, z).
            """
        )
        chain = Instance([f("E", 1, 2), f("E", 2, 3), f("E", 3, 4)])
        result = standard_chase(chain, mapping)
        assert f("P", 1, 4) in result.target

    def test_universality(self):
        # The canonical solution maps homomorphically into any solution.
        mapping = parse_mapping(
            """
            SOURCE R/1. TARGET T/2, U/1.
            R(x) -> T(x, y), U(y).
            """
        )
        source = Instance([f("R", "a")])
        canonical = canonical_universal_solution(source, mapping)
        other_solution = Instance([f("T", "a", "w"), f("U", "w"), f("U", "z")])
        assert is_homomorphic_to(canonical, other_solution)


class TestEgdChase:
    def test_null_unified_with_constant(self):
        mapping = parse_mapping(
            """
            SOURCE R/2, S/2. TARGET T/2.
            R(x, y) -> T(x, z).
            S(x, y) -> T(x, y).
            T(x, y), T(x, z) -> y = z.
            """
        )
        source = Instance([f("R", "a", "ignored"), f("S", "a", "c")])
        result = standard_chase(source, mapping)
        assert not result.failed
        assert set(result.target) == {f("T", "a", "c")}
        assert result.merges >= 1

    def test_two_constants_clash(self, copy_mapping):
        mapping = parse_mapping(
            """
            SOURCE R/2. TARGET T/2.
            R(x, y) -> T(x, y).
            T(x, y), T(x, z) -> y = z.
            """
        )
        source = Instance([f("R", "a", "b"), f("R", "a", "c")])
        result = standard_chase(source, mapping)
        assert result.failed
        assert "cannot equate" in result.failure

    def test_null_null_unification(self):
        mapping = parse_mapping(
            """
            SOURCE P/1, L/2. TARGET K/2, LL/2.
            P(t) -> K(c, t).
            L(t1, t2) -> LL(t1, t2).
            LL(t1, t2), K(c1, t1), K(c2, t2) -> c1 = c2.
            """
        )
        source = Instance([f("P", "t1"), f("P", "t2"), f("L", "t1", "t2")])
        result = standard_chase(source, mapping)
        clusters = {fact.args[0] for fact in result.target.facts_of("K")}
        assert len(clusters) == 1  # both transcripts share one cluster null

    def test_has_solution(self):
        mapping = parse_mapping(
            """
            SOURCE R/2. TARGET T/2.
            R(x, y) -> T(x, y).
            T(x, y), T(x, z) -> y = z.
            """
        )
        assert has_solution(Instance([f("R", "a", "b")]), mapping)
        assert not has_solution(
            Instance([f("R", "a", "b"), f("R", "a", "c")]), mapping
        )

    def test_canonical_universal_solution_raises_on_failure(self):
        mapping = parse_mapping(
            """
            SOURCE R/2. TARGET T/2.
            R(x, y) -> T(x, y).
            T(x, y), T(x, z) -> y = z.
            """
        )
        with pytest.raises(ValueError, match="no solution"):
            canonical_universal_solution(
                Instance([f("R", "a", "b"), f("R", "a", "c")]), mapping
            )


class TestMonotonicity:
    def test_tgd_only_chase_is_monotone(self):
        mapping = parse_mapping(
            """
            SOURCE E/2. TARGET P/2.
            E(x, y) -> P(x, y).
            P(x, y), P(y, z) -> P(x, z).
            """
        )
        small = Instance([f("E", 1, 2)])
        large = Instance([f("E", 1, 2), f("E", 2, 3)])
        small_chased = standard_chase(small, mapping).target
        large_chased = standard_chase(large, mapping).target
        assert small_chased.issubset(large_chased)

    def test_certain_answers_via_universal_solution(self):
        mapping = parse_mapping(
            """
            SOURCE R/1. TARGET T/2.
            R(x) -> T(x, y).
            """
        )
        solution = canonical_universal_solution(Instance([f("R", "a")]), mapping)
        query = parse_query("q(x) :- T(x, y).")
        from repro.relational import evaluate_constants_only

        assert evaluate_constants_only(query, solution) == {("a",)}
        query2 = parse_query("q(x, y) :- T(x, y).")
        assert evaluate_constants_only(query2, solution) == set()
