"""Tests for the semi-naive GAV/skolem chase and grounding enumeration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chase.gav import enumerate_groundings, gav_chase
from repro.dependencies.tgds import TGD, SkolemTerm
from repro.parser import parse_dependency
from repro.relational import Fact, Instance
from repro.relational.queries import Atom
from repro.relational.terms import SkolemValue, Variable

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def f(rel, *args):
    return Fact(rel, args)


def rule(text):
    return parse_dependency(text)


class TestGavChase:
    def test_copy_rule(self):
        result = gav_chase(Instance([f("R", "a", "b")]), [rule("R(x,y) -> T(x,y).")])
        assert f("T", "a", "b") in result
        assert f("R", "a", "b") in result  # source preserved

    def test_transitive_closure(self):
        rules = [rule("E(x,y) -> P(x,y)."), rule("P(x,y), P(y,z) -> P(x,z).")]
        chain = Instance([f("E", i, i + 1) for i in range(6)])
        result = gav_chase(chain, rules)
        assert f("P", 0, 6) in result
        assert len(result.facts_of("P")) == 21  # 6+5+4+3+2+1

    def test_skolem_head(self):
        skolem_rule = TGD([Atom("R", (X,))], [Atom("T", (X, SkolemTerm("f", [X])))])
        result = gav_chase(Instance([f("R", "a")]), [skolem_rule])
        assert f("T", "a", SkolemValue("f", ("a",))) in result

    def test_skolem_dedup_across_triggers(self):
        # Same frontier values -> same skolem value, derived once.
        skolem_rule = TGD(
            [Atom("R", (X, Y))], [Atom("T", (X, SkolemTerm("f", [X])))]
        )
        source = Instance([f("R", "a", "b"), f("R", "a", "c")])
        result = gav_chase(source, [skolem_rule])
        assert len(result.facts_of("T")) == 1

    def test_non_gav_rule_rejected(self):
        with pytest.raises(ValueError, match="GAV"):
            gav_chase(Instance(), [rule("R(x) -> T(x, z).")])

    def test_empty_rules(self):
        source = Instance([f("R", "a")])
        assert set(gav_chase(source, [])) == set(source)

    def test_constants_in_rule_body(self):
        constant_rule = rule("R('only', x) -> T(x).")
        source = Instance([f("R", "only", "a"), f("R", "other", "b")])
        result = gav_chase(source, [constant_rule])
        assert set(result.facts_of("T")) == {f("T", "a")}


class TestEnumerateGroundings:
    def test_all_groundings_reported(self):
        rules = [rule("E(x,y), E(y,z) -> P(x,z).")]
        inst = gav_chase(Instance([f("E", 1, 2), f("E", 2, 3)]), rules)
        groundings = list(enumerate_groundings(rules, inst))
        assert (
            rules[0],
            (f("E", 1, 2), f("E", 2, 3)),
            f("P", 1, 3),
        ) in groundings

    def test_tautological_groundings_dropped(self):
        trans = rule("P(x,y), P(y,z) -> P(x,z).")
        inst = Instance([f("P", "a", "a"), f("P", "a", "b")])
        groundings = list(enumerate_groundings([trans], inst))
        for _rule, body, head in groundings:
            assert head not in body

    def test_deduplication(self):
        # Two bindings producing the same grounding appear once.
        dup = rule("R(x, y) -> T(x).")
        inst = Instance([f("R", "a", "b")])
        inst = gav_chase(inst, [dup])
        groundings = list(enumerate_groundings([dup], inst))
        assert len(groundings) == 1


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5)),
        min_size=1,
        max_size=12,
    )
)
def test_gav_chase_matches_naive_fixpoint(edges):
    """Semi-naive chase equals a naive fixpoint on transitive closure."""
    rules = [rule("E(x,y) -> P(x,y)."), rule("P(x,y), P(y,z) -> P(x,z).")]
    source = Instance(f("E", a, b) for a, b in edges)
    result = gav_chase(source, rules)

    # Naive fixpoint.
    pairs = set(edges)
    changed = True
    while changed:
        changed = False
        for (a, b) in list(pairs):
            for (c, d) in list(pairs):
                if b == c and (a, d) not in pairs:
                    pairs.add((a, d))
                    changed = True
    assert {fact.args for fact in result.facts_of("P")} == pairs
