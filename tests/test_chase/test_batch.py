"""Tests for the set-at-a-time batch operators (PR 10 tentpole).

Every batch operator is checked against its tuple-at-a-time reference:
``batch_chase`` vs ``gav_chase`` (same fixpoint *and* same round/derived
counters), ``enumerate_groundings_batch`` vs ``enumerate_groundings``
(same grounding set under every planner mode, including forced SQLite
push-down), ``find_violations_batch`` vs ``find_violations`` (same
canonical violation list).  Internal mechanics with observable
consequences — signature-shared indexes, the SQLite fallback latch —
get direct tests too.
"""

import pytest

from repro.chase.batch import (
    BatchOptions,
    _AtomStep,
    _IndexCache,
    batch_chase,
    enumerate_groundings_batch,
    find_violations_batch,
    plan_mode,
)
from repro.chase.gav import enumerate_groundings, gav_chase
from repro.parser import parse_dependency
from repro.relational import Fact, Instance
from repro.relational.queries import Atom
from repro.relational.terms import Variable
from repro.scenarios.tpch import tpch_mapping, tpch_scenario
from repro.xr.exchange import canonicalize_violations, find_violations

X, Y, Z = Variable("x"), Variable("y"), Variable("z")

FORCE_NESTED = BatchOptions(nested_threshold=10**9)
FORCE_SQLITE = BatchOptions(nested_threshold=0, sqlite_threshold=1)


def f(rel, *args):
    return Fact(rel, args)


def rule(text):
    return parse_dependency(text)


def chain(n=8):
    return Instance([f("E", i, i + 1) for i in range(n)])


TC_RULES = [rule("E(x,y) -> P(x,y)."), rule("P(x,y), P(y,z) -> P(x,z).")]


class TestBatchChase:
    def test_matches_gav_chase_facts_and_stats(self):
        batch_stats: dict[str, int] = {}
        tuple_stats: dict[str, int] = {}
        batch = batch_chase(chain(), TC_RULES, stats=batch_stats)
        reference = gav_chase(chain(), TC_RULES, stats=tuple_stats)
        assert set(batch) == set(reference)
        assert batch_stats == tuple_stats

    def test_matches_on_tpch_cell(self):
        scenario = tpch_scenario(0.005, 0.4, 3)
        from repro.reduction.reduce import reduce_mapping

        tgds = reduce_mapping(scenario.mapping).gav.st_tgds
        batch_stats: dict[str, int] = {}
        tuple_stats: dict[str, int] = {}
        batch = batch_chase(scenario.instance, tgds, stats=batch_stats)
        reference = gav_chase(scenario.instance, tgds, stats=tuple_stats)
        assert set(batch) == set(reference)
        assert batch_stats == tuple_stats
        assert batch_stats["rounds"] >= 2  # the target-side join tgd fires

    def test_skolem_heads(self):
        from repro.dependencies.tgds import TGD, SkolemTerm

        skolem_rule = TGD([Atom("R", (X, Y))], [Atom("T", (X, SkolemTerm("f", [X])))])
        source = Instance([f("R", "a", "b"), f("R", "a", "c")])
        assert set(batch_chase(source, [skolem_rule])) == set(
            gav_chase(source, [skolem_rule])
        )

    def test_non_gav_rule_rejected(self):
        with pytest.raises(ValueError, match="GAV"):
            batch_chase(Instance(), [rule("R(x) -> T(x, z).")])

    def test_round_limit(self):
        with pytest.raises(RuntimeError, match="rounds"):
            batch_chase(chain(16), TC_RULES, max_rounds=2)


class TestPlanner:
    def test_tiny_bodies_stay_nested(self):
        instance = Instance([f("R", 1, 2)])
        assert plan_mode(instance, [Atom("R", (X, Y))], BatchOptions()) == "nested"

    def test_medium_bodies_hash(self):
        instance = Instance([f("R", i, i) for i in range(50)])
        assert plan_mode(instance, [Atom("R", (X, Y))], BatchOptions()) == "hash"

    def test_large_bodies_sqlite(self):
        instance = Instance([f("R", i, i) for i in range(50)])
        options = BatchOptions(sqlite_threshold=40)
        assert plan_mode(instance, [Atom("R", (X, Y))], options) == "sqlite"


class TestGroundings:
    def groundings_of(self, rules, instance, **kwargs):
        return {
            (rule.label, body, head)
            for rule, body, head in enumerate_groundings_batch(
                rules, instance, **kwargs
            )
        }

    def reference_of(self, rules, instance):
        return {
            (rule.label, body, head)
            for rule, body, head in enumerate_groundings(rules, instance)
        }

    def test_hash_mode_matches_reference(self):
        chased = gav_chase(chain(), TC_RULES)
        plan_log: dict[str, str] = {}
        got = self.groundings_of(TC_RULES, chased, plan_log=plan_log)
        assert got == self.reference_of(TC_RULES, chased)
        assert "hash" in plan_log.values()

    def test_nested_mode_matches_reference(self):
        chased = gav_chase(chain(), TC_RULES)
        plan_log: dict[str, str] = {}
        got = self.groundings_of(
            TC_RULES, chased, options=FORCE_NESTED, plan_log=plan_log
        )
        assert got == self.reference_of(TC_RULES, chased)
        assert set(plan_log.values()) == {"nested"}

    def test_sqlite_mode_matches_reference(self):
        chased = gav_chase(chain(), TC_RULES)
        plan_log: dict[str, str] = {}
        got = self.groundings_of(
            TC_RULES, chased, options=FORCE_SQLITE, plan_log=plan_log
        )
        assert got == self.reference_of(TC_RULES, chased)
        assert set(plan_log.values()) == {"sqlite"}

    def test_sqlite_falls_back_on_unencodable_values(self):
        # Booleans have no stable SQLite affinity here; the plan must
        # degrade to the hash join and still return the right set.
        instance = gav_chase(
            Instance([f("E", True, False), f("E", False, True)]), TC_RULES
        )
        plan_log: dict[str, str] = {}
        got = self.groundings_of(
            TC_RULES, instance, options=FORCE_SQLITE, plan_log=plan_log
        )
        assert got == self.reference_of(TC_RULES, instance)
        assert set(plan_log.values()) == {"hash"}

    def test_tautological_groundings_dropped(self):
        loop = Instance([f("P", 1, 1)])
        assert self.groundings_of(TC_RULES[1:], loop) == set()


class TestViolations:
    def test_matches_reference_on_tpch(self):
        scenario = tpch_scenario(0.005, 0.5, 1)
        from repro.reduction.reduce import reduce_mapping

        gav = reduce_mapping(scenario.mapping).gav
        chased = gav_chase(scenario.instance, gav.st_tgds)
        batch = canonicalize_violations(
            find_violations_batch(gav.target_egds, chased)
        )
        assert batch == find_violations(gav, chased)
        assert batch  # injection at 50 % must produce violations

    def test_all_modes_agree(self):
        scenario = tpch_scenario(0.005, 0.5, 1)
        from repro.reduction.reduce import reduce_mapping

        gav = reduce_mapping(scenario.mapping).gav
        chased = gav_chase(scenario.instance, gav.st_tgds)
        results = {}
        for label, options in (
            ("nested", FORCE_NESTED),
            ("hash", BatchOptions()),
            ("sqlite", FORCE_SQLITE),
        ):
            results[label] = canonicalize_violations(
                find_violations_batch(gav.target_egds, chased, options=options)
            )
        assert results["nested"] == results["hash"] == results["sqlite"]


class TestIndexSharing:
    def test_same_signature_shares_one_index(self):
        # An egd self-join compiles its two atoms to the same signature
        # (same relation, same key/const/same-var shape), so the cache
        # must hand back the identical index object.
        instance = Instance([f("T", i, i % 3) for i in range(20)])
        layout_a: dict[Variable, int] = {}
        step_a = _AtomStep(Atom("T", (X, Y)), layout_a)
        layout_b: dict[Variable, int] = {}
        step_b = _AtomStep(Atom("T", (X, Z)), layout_b)
        assert step_a.signature == step_b.signature
        cache = _IndexCache(instance)
        assert cache.index_for(step_a) is cache.index_for(step_b)

    def test_incremental_maintenance(self):
        instance = Instance([f("T", 1, 2)])
        layout: dict[Variable, int] = {}
        step = _AtomStep(Atom("T", (X, Y)), layout)
        cache = _IndexCache(instance)
        before = sum(len(bucket) for bucket in cache.index_for(step).values())
        cache.add_fact(f("T", 3, 4))
        after = sum(len(bucket) for bucket in cache.index_for(step).values())
        assert after == before + 1
