"""Golden-metrics replay: the deterministic work counters of the pinned
corpus scenarios must be reproduced bit-for-bit.

``tests/corpus/golden_metrics.json`` pins the *amount of work* the
segmentary pipeline does — chase rounds, groundings, clusters, ground
rules, programs solved, cache traffic — complementing the golden-answer
file, which only pins *what* is answered.  A rewrite that keeps answers
right but silently changes the work profile (extra chase rounds, a cache
that stopped hitting) fails here.  Re-record deliberately with
``repro.fuzz.corpus.record_golden_metrics`` only when the expected work
legitimately changes.
"""

from pathlib import Path

import pytest

from repro.fuzz.corpus import (
    GOLDEN_METRIC_PREFIXES,
    GOLDEN_METRICS_SCENARIOS,
    REPRO_SUFFIX,
    load_golden_metrics,
    load_repro,
    scenario_metrics,
)

CORPUS_DIR = Path(__file__).resolve().parents[1] / "corpus"


def test_golden_file_covers_the_pinned_scenarios():
    goldens = load_golden_metrics(CORPUS_DIR)
    assert set(goldens) == set(GOLDEN_METRICS_SCENARIOS)
    for name, counters in goldens.items():
        assert counters, f"{name}: empty counter record"
        for key, value in counters.items():
            assert key.startswith(GOLDEN_METRIC_PREFIXES), (name, key)
            assert isinstance(value, int) and value >= 0, (name, key, value)


def test_pinned_scenarios_exercise_distinct_paths():
    goldens = load_golden_metrics(CORPUS_DIR)
    solved = [
        name for name, counters in goldens.items()
        if counters["query_programs_solved_total"] > 0
    ]
    violated = [
        name for name, counters in goldens.items()
        if counters["exchange_violations_total"] > 0
    ]
    assert solved and violated, (
        "the golden pair must cover both a solver-deciding scenario and "
        "a violation-bearing one"
    )


@pytest.mark.parametrize("name", GOLDEN_METRICS_SCENARIOS)
def test_scenario_metrics_match_goldens_bit_identically(name):
    scenario = load_repro(CORPUS_DIR / f"{name}{REPRO_SUFFIX}")
    first = scenario_metrics(scenario)
    second = scenario_metrics(scenario)
    assert first == second, f"{name}: two runs disagree with each other"
    assert first == load_golden_metrics(CORPUS_DIR)[name], (
        f"{name}: engine work profile diverged from the recorded goldens"
    )
