"""Fault-injection differential checks (repro.fuzz.faults).

Tier-1 covers plan determinism and two known-interesting seeds (one whose
guaranteed index-0 fault is a hang — the degradation path — and one whose
fault is a crash — the recovery path).  The 25-seed sweep mirrors the CI
fault-smoke job and is excluded from tier-1 via the ``faults`` marker.
"""

from dataclasses import replace

import pytest

from repro.fuzz.faults import fault_plan_for_seed, run_fault_check
from repro.fuzz.generator import DEFAULT_CONFIG, random_scenario

FAULT_CONFIG = replace(DEFAULT_CONFIG, check_faults=True)

# Under DEFAULT_CONFIG these seeds produce scenarios whose query phase
# actually dispatches solver tasks (most random scenarios are decided
# trivially), so the injected faults really fire.
HANG_SEED = 15    # index 0 hangs: exercises degradation
CRASH_SEED = 34   # index 0 crashes: exercises retry recovery


class TestFaultPlans:
    def test_deterministic_per_seed(self):
        for seed in (0, 1, 7, 15, 34, 1000):
            assert fault_plan_for_seed(seed) == fault_plan_for_seed(seed)

    def test_distinct_across_seeds(self):
        plans = {fault_plan_for_seed(seed) for seed in range(20)}
        assert len(plans) > 1

    def test_index_zero_always_faulted(self):
        # Segmentary batches are often a single task; a plan that never
        # touches index 0 would inject nothing on them.
        for seed in range(50):
            plan = fault_plan_for_seed(seed)
            assert 0 in (plan.crash_on | plan.hang_on)
            assert not (plan.crash_on & plan.hang_on)

    def test_validation_rejects_useless_hangs(self):
        with pytest.raises(ValueError):
            replace(
                DEFAULT_CONFIG,
                check_faults=True,
                fault_deadline=2.0,
                fault_hang_seconds=1.0,
            )


class TestKnownSeeds:
    def test_hang_seed_invariants_hold(self):
        scenario = random_scenario(HANG_SEED, FAULT_CONFIG)
        problems = run_fault_check(scenario, FAULT_CONFIG, seed=HANG_SEED)
        assert problems == []

    def test_crash_seed_recovers_exactly(self):
        scenario = random_scenario(CRASH_SEED, FAULT_CONFIG)
        problems = run_fault_check(scenario, FAULT_CONFIG, seed=CRASH_SEED)
        assert problems == []


@pytest.mark.faults
class TestFaultSweep:
    def test_twenty_five_seeds(self):
        failures = []
        for seed in range(25):
            scenario = random_scenario(seed, FAULT_CONFIG)
            problems = run_fault_check(scenario, FAULT_CONFIG, seed=seed)
            failures.extend(f"seed {seed}: {p}" for p in problems)
        assert failures == []
