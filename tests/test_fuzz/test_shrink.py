"""The delta-debugging shrinker on synthetic predicates."""

from repro.fuzz.render import Scenario
from repro.fuzz.shrink import shrink_scenario
from repro.fuzz.xval import xval_scenario
from repro.parser import parse_instance, parse_mapping, parse_program
from repro.relational.instance import Fact
from repro.relational.queries import UnionOfConjunctiveQueries


def _scenario() -> Scenario:
    mapping = parse_mapping(
        """
        SOURCE R/2, S/2. TARGET T/2, U/2.
        R(x, y) -> T(x, y).
        S(x, y) -> U(x, y).
        T(x, y), T(x, z) -> y = z.
        U(x, y), U(x, z) -> y = z.
        """
    )
    instance = parse_instance(
        "R('a', 'b'). R('a', 'c'). R('d', 'd'). "
        "S('a', 'b'). S('b', 'c'). S('c', 'a')."
    )
    query = parse_program("q(x) :- T(x, y), U(y, z).")
    return Scenario(mapping, instance, query)


def test_not_failing_returns_input_unchanged():
    scenario = _scenario()
    assert shrink_scenario(scenario, lambda s: False) is scenario


def test_shrinks_facts_to_single_witness():
    witness = Fact("R", ("a", "b"))
    minimal = shrink_scenario(_scenario(), lambda s: witness in set(s.instance))
    assert set(minimal.instance) == {witness}


def test_shrinks_dependencies_and_query():
    def failing(scenario):
        # "Fails" whenever any egd and a T-atom in the query remain.
        has_egd = bool(scenario.mapping.target_egds)
        disjuncts = (
            scenario.query.disjuncts
            if isinstance(scenario.query, UnionOfConjunctiveQueries)
            else [scenario.query]
        )
        has_t = any(
            atom.relation == "T" for cq in disjuncts for atom in cq.body
        )
        return has_egd and has_t

    minimal = shrink_scenario(_scenario(), failing)
    assert len(minimal.instance) == 0
    assert len(minimal.mapping.target_egds) == 1
    assert len(minimal.query.body) == 1
    assert minimal.query.body[0].relation == "T"


def test_crashing_predicate_counts_as_not_failing():
    scenario = _scenario()

    def brittle(candidate):
        if len(candidate.instance) < 3:
            raise RuntimeError("boom")
        return True

    minimal = shrink_scenario(scenario, brittle)
    # It can delete facts down to 3, never below (the predicate crashes).
    assert len(minimal.instance) == 3


def test_schema_pruning_drops_unused_relations():
    minimal = shrink_scenario(
        _scenario(), lambda s: any(f.relation == "R" for f in s.instance)
    )
    names = {r.name for r in minimal.mapping.source} | {
        r.name for r in minimal.mapping.target
    }
    # The predicate only cares about R facts: all dependencies and S facts
    # are shrunk away, so the S relation must be pruned.  (The query keeps
    # one atom — whichever target relation survives the query shrink.)
    assert "R" in names
    assert "S" not in names
    assert len(names) <= 2


def test_shrink_is_deterministic():
    predicate = lambda s: len(set(s.instance)) >= 2  # noqa: E731
    first = shrink_scenario(xval_scenario(42), predicate)
    second = shrink_scenario(xval_scenario(42), predicate)
    from repro.fuzz.render import render_scenario

    assert render_scenario(first) == render_scenario(second)
