"""The update-workload differential harness: generator, serialization,
shrinker, corpus replay, and the deep sweeps (opt-in via ``pytest -m
fuzz``) the ISSUE's acceptance gate runs — ≥100 seeds × ≥20-step streams,
incremental maintenance bit-identical to from-scratch re-exchange."""

import time
from pathlib import Path

import pytest

from repro.fuzz.generator import DEFAULT_CONFIG, random_scenario
from repro.fuzz.updates import (
    check_update_seed,
    check_update_stream,
    load_update_corpus,
    parse_update_scenario,
    random_update_stream,
    render_update_scenario,
    replay_update_corpus,
    run_update_fuzz,
    shrink_update_stream,
)
from repro.incremental import Delta, apply_delta
from repro.relational import Fact

UPDATES_CORPUS = Path(__file__).resolve().parents[1] / "corpus" / "updates"


class TestStreamGenerator:
    def test_deterministic_per_seed(self):
        scenario = random_scenario(5, DEFAULT_CONFIG)
        first = random_update_stream(5, scenario, 12, DEFAULT_CONFIG)
        second = random_update_stream(5, scenario, 12, DEFAULT_CONFIG)
        assert first == second

    def test_steps_are_effective(self):
        """Every generated step changes the running instance (no no-ops)."""
        scenario = random_scenario(9, DEFAULT_CONFIG)
        deltas = random_update_stream(9, scenario, 12, DEFAULT_CONFIG)
        current = scenario.instance.copy()
        for delta in deltas:
            assert not delta.normalized(current).is_noop()
            current = apply_delta(current, delta)

    def test_streams_only_touch_source_relations(self):
        scenario = random_scenario(2, DEFAULT_CONFIG)
        names = {relation.name for relation in scenario.mapping.source}
        for delta in random_update_stream(2, scenario, 12, DEFAULT_CONFIG):
            for fact in delta.support_facts():
                assert fact.relation in names


class TestSerialization:
    def test_update_scenario_round_trip(self):
        scenario = random_scenario(4, DEFAULT_CONFIG)
        deltas = random_update_stream(4, scenario, 6, DEFAULT_CONFIG)
        text = render_update_scenario(scenario, deltas)
        parsed_scenario, parsed_deltas = parse_update_scenario(text)
        assert parsed_deltas == deltas
        assert set(parsed_scenario.instance) == set(scenario.instance)

    def test_scenario_without_updates_section(self):
        scenario = random_scenario(4, DEFAULT_CONFIG)
        from repro.fuzz.render import render_scenario

        _, deltas = parse_update_scenario(render_scenario(scenario))
        assert deltas == []


class TestShrinker:
    def test_shrinks_to_the_responsible_step(self):
        """ddmin against a synthetic predicate: 'fails iff the stream still
        inserts the poison fact' must shrink to that single operation."""
        scenario = random_scenario(6, DEFAULT_CONFIG)
        relation = next(iter(scenario.mapping.source))
        poison = Fact(relation.name, ("poison",) * relation.arity)
        deltas = random_update_stream(6, scenario, 8, DEFAULT_CONFIG)
        deltas.insert(3, Delta(inserts=frozenset({poison})))

        def is_failing(candidate, stream):
            return any(poison in d.inserts for d in stream)

        shrunk_scenario, shrunk = shrink_update_stream(
            scenario, deltas, is_failing
        )
        assert len(shrunk) == 1
        assert shrunk[0].inserts == frozenset({poison})
        assert not shrunk[0].retracts
        assert len(shrunk_scenario.instance) <= len(scenario.instance)


class TestDifferentialSmoke:
    def test_small_campaign_is_clean(self):
        summary = run_update_fuzz(seeds=4, steps=5, config=DEFAULT_CONFIG)
        details = [
            f"seed {failure.seed}: " + "; ".join(failure.discrepancies)
            for failure in summary.failures
        ]
        assert summary.ok, "\n".join(details)

    def test_detects_a_planted_divergence(self, monkeypatch):
        """Sensitivity check: corrupt the reference replay (drop every
        insert) and the harness must report a mismatch at step 0 —
        otherwise a silent checker would make every sweep vacuously
        green."""
        import repro.fuzz.updates as updates_module

        scenario = random_scenario(1, DEFAULT_CONFIG)
        deltas = [None]
        for seed in range(1, 50):
            candidate = random_update_stream(
                seed, scenario, 4, DEFAULT_CONFIG
            )
            if any(d.normalized(scenario.instance).inserts for d in candidate):
                deltas = candidate
                break
        assert deltas[0] is not None, "no insert-bearing stream found"
        assert check_update_stream(scenario, deltas, DEFAULT_CONFIG) == []

        def corrupted(instance, delta):
            return apply_delta(
                instance, Delta(retracts=delta.retracts)
            )

        monkeypatch.setattr(updates_module, "apply_delta", corrupted)
        problems = check_update_stream(scenario, deltas, DEFAULT_CONFIG)
        assert problems, "harness failed to notice a corrupted reference"


class TestSolverHardSeeds:
    def test_giant_cluster_seed_is_state_checked_quickly(self):
        """Seed 89 chases 7 source facts into a single giant cluster whose
        repair program is a solver blow-up (hours per answer mode per
        step).  The influence cap must keep the differential check to the
        PTIME state comparisons — completing in seconds, finding
        nothing — instead of wedging every sweep that includes the seed."""
        started = time.perf_counter()
        assert check_update_seed(89, DEFAULT_CONFIG, steps=6) == []
        assert time.perf_counter() - started < 60

    def test_cap_trips_on_seed_89(self):
        """The scenario actually exceeds the cap (guards against the cap
        silently rising above what the seed produces, which would turn
        the test above back into an hours-long solve)."""
        from repro.fuzz.updates import ANSWER_CHECK_INFLUENCE_CAP
        from repro.xr.segmentary import SegmentaryEngine

        scenario = random_scenario(89, DEFAULT_CONFIG)
        deltas = random_update_stream(89, scenario, 6, DEFAULT_CONFIG)
        engine = SegmentaryEngine(scenario.mapping, scenario.instance.copy())
        engine.exchange()
        session = engine.update_session()
        try:
            tripped = False
            for delta in deltas:
                session.apply(delta)
                tripped = tripped or any(
                    len(cluster.influence_ids) > ANSWER_CHECK_INFLUENCE_CAP
                    for cluster in engine.analysis.clusters
                )
            assert tripped
        finally:
            engine.close()


class TestCorpus:
    def test_corpus_exists(self):
        entries = load_update_corpus(UPDATES_CORPUS)
        names = {path.stem for path, _, _ in entries}
        assert "duplicate-head-rule" in names
        assert "update-seed-0018" in names  # found the grounding-key bug
        assert len(entries) >= 5

    def test_corpus_replays_clean(self):
        for path, problems in replay_update_corpus(UPDATES_CORPUS):
            assert not problems, f"{path.name}: " + "; ".join(problems)

    def test_corpus_replays_clean_under_both_exchange_strategies(self):
        """Incremental-on-batch (PR 10 satellite): the PR 7 update corpus
        must stay per-step bit-identical when both the warm engine and the
        from-scratch reference build their exchange with the batch
        operators — and with the tuple path, for symmetry."""
        from dataclasses import replace

        for strategy in ("batch", "tuple"):
            config = replace(DEFAULT_CONFIG, exchange_strategy=strategy)
            for path, problems in replay_update_corpus(UPDATES_CORPUS, config):
                assert not problems, (
                    f"{path.name} [{strategy}]: " + "; ".join(problems)
                )

    def test_generated_entries_match_their_seeds(self):
        """Seed-named corpus files are regenerable byte-for-byte."""
        for path, _, _ in load_update_corpus(UPDATES_CORPUS):
            if not path.stem.startswith("update-seed-"):
                continue
            seed = int(path.stem.rsplit("-", 1)[1])
            scenario = random_scenario(seed, DEFAULT_CONFIG)
            deltas = random_update_stream(seed, scenario, 10, DEFAULT_CONFIG)
            assert path.read_text() == render_update_scenario(
                scenario, deltas
            ), path.name


@pytest.mark.fuzz
class TestDeepUpdateSweeps:
    def test_deep_update_sweep(self):
        summary = run_update_fuzz(seeds=100, steps=20, config=DEFAULT_CONFIG)
        details = [
            f"seed {failure.seed}: " + "; ".join(failure.discrepancies)
            for failure in summary.failures
        ]
        assert summary.ok, "\n".join(details)

    def test_deep_update_sweep_long_streams(self):
        summary = run_update_fuzz(
            seeds=25, start=500, steps=40, config=DEFAULT_CONFIG
        )
        assert summary.ok, [f.discrepancies for f in summary.failures]
