"""The seeded scenario generator: determinism, well-formedness, knobs."""

import pytest

from repro.fuzz.generator import (
    DEFAULT_CONFIG,
    PROFILES,
    FuzzConfig,
    random_dependency_set,
    random_freeform_scenario,
    random_ibench_fuzz_scenario,
    random_scenario,
)
from repro.fuzz.render import render_scenario, scenarios_equal
from repro.relational.queries import UnionOfConjunctiveQueries

SEEDS = range(30)


def test_profiles_exposed():
    assert set(PROFILES) == {"freeform", "ibench", "mixed", "tpch"}
    assert DEFAULT_CONFIG.profile == "mixed"


@pytest.mark.parametrize("profile", PROFILES)
def test_generation_is_deterministic(profile):
    config = FuzzConfig(profile=profile)
    for seed in SEEDS:
        first = random_scenario(seed, config)
        second = random_scenario(seed, config)
        assert scenarios_equal(first, second), f"seed={seed}"
        assert render_scenario(first) == render_scenario(second)


def test_scenarios_are_well_formed():
    for seed in SEEDS:
        scenario = random_scenario(seed, DEFAULT_CONFIG)
        mapping = scenario.mapping
        assert mapping.st_tgds, f"seed={seed}: no st-tgds"
        assert mapping.is_weakly_acyclic(), f"seed={seed}"
        declared = {r.name for r in mapping.source}
        assert {f.relation for f in scenario.instance} <= declared


def test_freeform_respects_fact_bounds():
    # min_facts is a *draw* count: Instance is a set, so colliding draws
    # collapse and only the upper bound is a hard size guarantee.
    config = FuzzConfig(profile="freeform", min_facts=3, max_facts=5)
    for seed in SEEDS:
        instance = random_freeform_scenario(seed, config).instance
        assert 1 <= len(instance) <= 5, f"seed={seed}"


def test_distinct_seeds_differ():
    rendered = {render_scenario(random_scenario(s, DEFAULT_CONFIG)) for s in SEEDS}
    # Not a bijection, but collisions across 30 seeds would mean the seed
    # is not actually reaching the generator.
    assert len(rendered) > len(SEEDS) // 2


def test_boolean_and_ucq_queries_occur():
    config = FuzzConfig(profile="freeform", boolean_rate=0.5, ucq_rate=0.5)
    booleans = unions = 0
    for seed in range(60):
        query = random_freeform_scenario(seed, config).query
        if isinstance(query, UnionOfConjunctiveQueries):
            unions += 1
            width = len(query.disjuncts[0].head_vars)
        else:
            width = len(query.head_vars)
        if width == 0:
            booleans += 1
    assert booleans > 0, "boolean_rate knob never produced a 0-ary query"
    assert unions > 0, "ucq_rate knob never produced a UCQ"


def test_existentials_occur():
    config = FuzzConfig(profile="freeform", existential_rate=0.9)
    found = False
    for seed in range(40):
        mapping = random_freeform_scenario(seed, config).mapping
        for tgd in (*mapping.st_tgds, *mapping.target_tgds):
            if tgd.existential:
                found = True
    assert found, "existential_rate knob never produced an existential"


def test_skolem_heavy_builds_chains():
    config = FuzzConfig(profile="freeform", skolem_heavy=True, target_tgd_depth=3)
    for seed in range(10):
        mapping = random_freeform_scenario(seed, config).mapping
        assert mapping.target_tgds, f"seed={seed}: no target chain"
        assert mapping.is_weakly_acyclic()
        assert any(
            tgd.existential for tgd in mapping.target_tgds
        ), f"seed={seed}: skolem-heavy chain has no existentials"


def test_ibench_profile_generates():
    for seed in range(6):
        scenario = random_ibench_fuzz_scenario(seed, FuzzConfig(profile="ibench"))
        assert scenario.mapping.st_tgds
        assert scenario.mapping.is_weakly_acyclic()


def test_conflict_rate_changes_collisions():
    calm = FuzzConfig(profile="freeform", conflict_rate=0.0)
    hot = FuzzConfig(profile="freeform", conflict_rate=1.0)

    def distinct_constants(config):
        values = set()
        for seed in range(25):
            for fact in random_freeform_scenario(seed, config).instance:
                values.update(fact.args)
        return len(values)

    assert distinct_constants(hot) < distinct_constants(calm)


def test_random_dependency_set_is_seeded():
    import random

    first = random_dependency_set(random.Random("deps:5"))
    second = random_dependency_set(random.Random("deps:5"))
    assert first == second  # TGD equality ignores the auto-assigned label
    assert first


def test_config_validation():
    with pytest.raises(ValueError):
        FuzzConfig(profile="nope")
    with pytest.raises(ValueError):
        FuzzConfig(min_arity=0)
    with pytest.raises(ValueError):
        FuzzConfig(conflict_rate=1.5)
    with pytest.raises(ValueError):
        FuzzConfig(min_facts=9, max_facts=3)
