"""Weak acyclicity vs a naive reference on random dependency sets.

The production checker (:mod:`repro.dependencies.acyclicity`) works on the
condensation of the position graph; the reference below re-implements the
Fagin–Kolaitis–Miller–Popa definition as literally as possible — build the
edges, then look for a special edge ``u → v`` with a path back from ``v``
to ``u``.  Agreement on random (possibly cyclic) tgd sets is the test.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.dependencies.acyclicity import is_weakly_acyclic
from repro.dependencies.tgds import TGD
from repro.fuzz.generator import random_dependency_set
from repro.parser import parse_mapping
from repro.relational.terms import Variable


def naive_is_weakly_acyclic(tgds) -> bool:
    regular: set[tuple] = set()
    special: set[tuple] = set()
    for tgd in tgds:
        body_positions: dict[Variable, set[tuple[str, int]]] = {}
        for atom in tgd.body:
            for index, term in enumerate(atom.terms):
                if isinstance(term, Variable):
                    body_positions.setdefault(term, set()).add(
                        (atom.relation, index)
                    )
        for atom in tgd.head:
            for index, term in enumerate(atom.terms):
                if not isinstance(term, Variable):
                    continue
                target = (atom.relation, index)
                if term in tgd.existential:
                    for frontier_var in tgd.frontier:
                        for source in body_positions.get(frontier_var, ()):
                            special.add((source, target))
                else:
                    for source in body_positions.get(term, ()):
                        regular.add((source, target))

    adjacency: dict[tuple, set[tuple]] = {}
    for source, target in regular | special:
        adjacency.setdefault(source, set()).add(target)

    def reaches(origin, goal) -> bool:
        seen, stack = set(), [origin]
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency.get(node, ()))
        return False

    return not any(reaches(target, source) for source, target in special)


@settings(max_examples=150, deadline=None)
@given(st.integers(0, 1_000_000))
def test_checker_matches_naive_reference(seed):
    tgds = random_dependency_set(random.Random(f"wa:{seed}"))
    assert is_weakly_acyclic(tgds) == naive_is_weakly_acyclic(tgds), (
        f"seed={seed}: " + "; ".join(map(repr, tgds))
    )


def test_both_agree_on_known_cases():
    gav = parse_mapping(
        "SOURCE R/2. TARGET T/2, U/2. R(x, y) -> T(x, y)."
    ).st_tgds
    assert is_weakly_acyclic(gav) and naive_is_weakly_acyclic(gav)

    # A regular self-loop is fine ...
    copy = TGD(
        [parse_mapping("SOURCE R/2. TARGET T/2. R(x, y) -> T(x, y).").st_tgds[0].head[0]],
        [parse_mapping("SOURCE R/2. TARGET T/2. R(x, y) -> T(y, x).").st_tgds[0].head[0]],
    )
    assert is_weakly_acyclic([copy]) and naive_is_weakly_acyclic([copy])

    # ... but an existential feeding its own body position is not.
    cyclic = parse_mapping(
        "SOURCE R/1. TARGET T/2. R(x) -> T(x, x). T(x, y) -> T(y, z)."
    ).target_tgds
    assert not is_weakly_acyclic(cyclic)
    assert not naive_is_weakly_acyclic(cyclic)
