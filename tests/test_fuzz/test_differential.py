"""The differential runner: clean sweeps, and an injected bug caught + shrunk.

The injected bug poisons the segmentary engine's signature-program cache so
every lookup "hits" with an empty accepted set — the cached engines silently
drop certain answers whose support crosses suspect facts.  The differential
matrix must catch it, the shrinker must reduce it to a tiny repro, and the
serialized repro must still reproduce it after a parse round trip.
"""

from dataclasses import replace

import pytest

from repro import cli
from repro.fuzz.differential import (
    check_seed,
    close_shared_executor,
    run_differential,
    run_fuzz,
)
from repro.fuzz.generator import DEFAULT_CONFIG, FuzzConfig
from repro.fuzz.render import Scenario, parse_scenario, render_scenario
from repro.fuzz.shrink import shrink_scenario
from repro.parser import parse_instance, parse_mapping, parse_program
from repro.runtime.cache import SignatureProgramCache

FAST = replace(DEFAULT_CONFIG, check_parallel=False)


@pytest.fixture(autouse=True, scope="module")
def _teardown_executor():
    yield
    close_shared_executor()


def test_clean_seeds_agree():
    for seed in range(8):
        report = check_seed(seed, FAST)
        assert report.ok, f"seed={seed}: {[str(d) for d in report.discrepancies]}"
        assert "monolithic" in report.engines
        assert "segmentary-cold" in report.engines
        assert "segmentary-warm" in report.engines
        assert "segmentary-nocache" in report.engines


def test_oracle_runs_only_on_small_instances():
    small = check_seed(0, FAST)
    assert ("oracle" in small.engines) == (
        len(small.scenario.instance) <= FAST.oracle_max_facts
    )
    no_oracle = check_seed(0, replace(FAST, use_oracle=False))
    assert "oracle" not in no_oracle.engines


def test_parallel_axis_runs():
    report = check_seed(3, replace(DEFAULT_CONFIG, check_parallel=True))
    assert report.ok
    assert "segmentary-parallel" in report.engines


def _conflicted_scenario() -> Scenario:
    mapping = parse_mapping(
        """
        SOURCE R/2. TARGET T/2.
        R(x, y) -> T(x, y).
        T(x, y), T(x, z) -> y = z.
        """
    )
    instance = parse_instance(
        "R('a', 'b'). R('a', 'c'). R('d', 'e')."
    )
    query = parse_program("q(x) :- T(x, y).")
    return Scenario(mapping, instance, query, label="poisoned-cache repro")


def _poison_cache(monkeypatch):
    """Every program lookup hits with an empty accepted set."""
    monkeypatch.setattr(
        SignatureProgramCache, "lookup_program", lambda self, key: frozenset()
    )


def test_injected_cache_bug_is_caught(monkeypatch):
    scenario = _conflicted_scenario()
    assert run_differential(scenario, FAST).ok, "scenario must be clean pre-bug"

    _poison_cache(monkeypatch)
    report = run_differential(scenario, FAST)
    assert not report.ok, "poisoned cache must disagree with the baseline"
    kinds = {d.kind for d in report.discrepancies}
    assert "certain-mismatch" in kinds or "possible-mismatch" in kinds


def test_injected_bug_shrinks_to_small_serialized_repro(monkeypatch):
    _poison_cache(monkeypatch)

    def is_failing(scenario):
        return not run_differential(scenario, FAST).ok

    minimal = shrink_scenario(_conflicted_scenario(), is_failing)
    assert len(minimal.instance) <= 10
    assert is_failing(minimal), "shrunk scenario must still reproduce"

    # The serialized repro round-trips and still fails.
    text = render_scenario(minimal)
    assert is_failing(parse_scenario(text))


def test_run_fuzz_campaign_clean(tmp_path):
    summary = run_fuzz(
        6, config=FAST, jobs=1, shrink=True, corpus_dir=str(tmp_path)
    )
    assert summary.ok
    assert summary.seeds == 6
    assert not list(tmp_path.glob("*.repro")), "clean runs write no repros"


@pytest.mark.slow
def test_run_fuzz_records_and_shrinks_failures(monkeypatch, tmp_path):
    _poison_cache(monkeypatch)
    config = replace(FAST, profile="freeform", use_oracle=False)
    # Seeds 25..32 include seed 28, whose scenario routes a certain answer
    # through a cached signature program — the poison drops it there.
    summary = run_fuzz(
        8, start=25, config=config, jobs=1, shrink=True, corpus_dir=str(tmp_path)
    )
    assert not summary.ok, "poisoned cache must fail some seed"
    failure = summary.failures[0]
    assert failure.discrepancies
    assert failure.shrunk_text is not None
    assert failure.repro_path is not None
    written = list(tmp_path.glob("*.repro"))
    assert written, "failing repros are serialized into the corpus dir"
    # The serialized text parses back into a scenario.
    parse_scenario(written[0].read_text())


def test_cli_fuzz_smoke(capsys):
    code = cli.main(["fuzz", "--seeds", "4", "--no-parallel"])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 failure(s)" in out


@pytest.mark.slow
def test_cli_fuzz_reports_failures(monkeypatch, capsys):
    _poison_cache(monkeypatch)
    code = cli.main(
        ["fuzz", "--seeds", "6", "--start", "25", "--no-parallel",
         "--profile", "freeform", "--no-oracle", "--shrink"]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "FAIL seed=" in out
    assert "% --- mapping ---" in out, "the (shrunk) repro text is printed"


def test_fuzz_config_matrix_flags():
    config = FuzzConfig(check_figure1=False, check_possible=False)
    report = check_seed(1, replace(config, check_parallel=False))
    assert "monolithic-figure1" not in report.engines
    assert not report.possible
