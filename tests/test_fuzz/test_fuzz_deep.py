"""Deep differential sweeps — opt-in via ``pytest -m fuzz``.

Tier-1 keeps the matrix honest on a handful of seeds; these runs are the
real campaign (hundreds of seeds per profile, full engine matrix).  The
nightly CI job runs them alongside ``python -m repro fuzz``.
"""

from dataclasses import replace

import pytest

from repro.fuzz.differential import close_shared_executor, run_fuzz
from repro.fuzz.generator import DEFAULT_CONFIG, FuzzConfig

pytestmark = pytest.mark.fuzz


@pytest.fixture(autouse=True, scope="module")
def _teardown_executor():
    yield
    close_shared_executor()


def _assert_clean(summary):
    details = [
        f"seed {f.seed}: " + "; ".join(f.discrepancies) for f in summary.failures
    ]
    assert summary.ok, "\n".join(details)


def test_deep_mixed_sweep():
    _assert_clean(run_fuzz(200, config=DEFAULT_CONFIG))


def test_deep_freeform_skolem_heavy():
    config = FuzzConfig(
        profile="freeform", skolem_heavy=True, target_tgd_depth=3
    )
    _assert_clean(run_fuzz(100, config=config))


def test_deep_ibench_sweep():
    _assert_clean(run_fuzz(100, config=FuzzConfig(profile="ibench")))


def test_deep_high_conflict():
    config = replace(
        DEFAULT_CONFIG, profile="freeform", conflict_rate=1.0, max_facts=6
    )
    _assert_clean(run_fuzz(100, start=1000, config=config))
