"""Parser round-trip property tests: parse(render(x)) is x.

The renderer in :mod:`repro.fuzz.render` serializes scenarios into the
parser's own text syntax; these tests pin the two directions together on
random tgds, egds, CQs, UCQs, mappings, and whole scenarios.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.fuzz.generator import (
    DEFAULT_CONFIG,
    FuzzConfig,
    random_egd,
    random_query,
    random_scenario,
    random_tgd,
)
from repro.fuzz.render import (
    mappings_equal,
    parse_scenario,
    queries_equal,
    render_mapping,
    render_query,
    render_scenario,
    scenarios_equal,
)
from repro.dependencies.mapping import SchemaMapping
from repro.parser import parse_mapping, parse_program
from repro.relational.schema import RelationSymbol, Schema

SOURCE = [RelationSymbol("R", 2), RelationSymbol("S", 3)]
TARGET = [RelationSymbol("T", 2), RelationSymbol("U", 3)]


def _random_mapping(seed: int) -> SchemaMapping:
    rng = random.Random(f"roundtrip:{seed}")
    st_tgds = [
        random_tgd(rng, SOURCE, TARGET, DEFAULT_CONFIG)
        for _ in range(rng.randint(1, 3))
    ]
    egds = [
        egd
        for _ in range(rng.randint(0, 2))
        if (egd := random_egd(rng, TARGET, DEFAULT_CONFIG)) is not None
    ]
    return SchemaMapping(Schema(SOURCE), Schema(TARGET), st_tgds, [], egds)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_mapping_roundtrip(seed):
    mapping = _random_mapping(seed)
    text = render_mapping(mapping)
    assert mappings_equal(parse_mapping(text), mapping), f"seed={seed}\n{text}"


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_query_roundtrip(seed):
    rng = random.Random(f"query:{seed}")
    config = FuzzConfig(profile="freeform", ucq_rate=0.5, boolean_rate=0.3)
    query = random_query(rng, TARGET, config)
    text = render_query(query)
    assert queries_equal(parse_program(text), query), f"seed={seed}\n{text}"


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_scenario_roundtrip(seed):
    scenario = random_scenario(seed, DEFAULT_CONFIG)
    text = render_scenario(scenario)
    parsed = parse_scenario(text)
    assert scenarios_equal(parsed, scenario), f"seed={seed}\n{text}"
    assert parsed.label == scenario.label
    # Rendering is canonical: a second round trip is byte-identical.
    assert render_scenario(parsed) == text


def test_roundtrip_preserves_tricky_constants():
    from repro.fuzz.render import Scenario
    from repro.relational.instance import Fact, Instance
    from repro.relational.queries import Atom, ConjunctiveQuery
    from repro.relational.terms import Variable

    mapping = parse_mapping("SOURCE R/2. TARGET T/2. R(x, y) -> T(x, y).")
    instance = Instance(
        [
            Fact("R", ("it's", "a b")),
            Fact("R", (0, -17)),
            Fact("R", ("", "don''t")),
        ]
    )
    x = Variable("x")
    query = ConjunctiveQuery([x], [Atom("T", [x, Variable("y")])])
    scenario = Scenario(mapping, instance, query)
    parsed = parse_scenario(render_scenario(scenario))
    assert set(parsed.instance) == set(instance)
