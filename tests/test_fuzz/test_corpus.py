"""The checked-in regression corpus: provenance, replay, persistence."""

from dataclasses import replace
from pathlib import Path

from repro.fuzz.corpus import (
    XVAL_REGRESSION_SEEDS,
    build_default_corpus,
    default_corpus_entries,
    load_corpus,
    load_repro,
    replay,
    save_repro,
    scenario_digest,
)
from repro.fuzz.generator import DEFAULT_CONFIG
from repro.fuzz.render import render_scenario, scenarios_equal
from repro.fuzz.xval import xval_scenario

CORPUS_DIR = Path(__file__).resolve().parents[1] / "corpus"
FAST = replace(DEFAULT_CONFIG, check_parallel=False)


def test_corpus_exists_and_loads():
    entries = load_corpus(CORPUS_DIR)
    assert len(entries) >= 10
    names = {path.stem for path, _ in entries}
    for seed in XVAL_REGRESSION_SEEDS:
        assert f"xval-seed-{seed:04d}" in names, f"regression seed {seed} missing"
    assert "figure1-errata" in names


def test_corpus_matches_regenerated_provenance():
    """Every regenerable corpus file is byte-identical to its generator
    output — nobody hand-edited a repro without updating its source."""
    expected = default_corpus_entries()
    on_disk = {path.stem: path for path, _ in load_corpus(CORPUS_DIR)}
    for name, scenario in expected.items():
        assert name in on_disk, f"{name} missing from tests/corpus/"
        assert on_disk[name].read_text() == render_scenario(scenario), name


def test_corpus_replays_clean():
    for path, scenario in load_corpus(CORPUS_DIR):
        report = replay(scenario, FAST)
        assert report.ok, (
            f"{path.name}: " + "; ".join(str(d) for d in report.discrepancies)
        )


def test_save_load_roundtrip(tmp_path):
    scenario = xval_scenario(7)
    path = save_repro(scenario, tmp_path)
    assert path.suffix == ".repro"
    assert scenario_digest(scenario) in path.stem
    assert scenarios_equal(load_repro(path), scenario)


def test_build_default_corpus_is_idempotent(tmp_path):
    first = build_default_corpus(tmp_path)
    contents = {p: p.read_text() for p in first}
    second = build_default_corpus(tmp_path)
    assert first == second
    assert all(p.read_text() == text for p, text in contents.items())
