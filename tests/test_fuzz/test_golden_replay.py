"""Golden-answer replay: the corpus answers recorded before the interning
rewrite must be reproduced bit-for-bit by the current engines.

``tests/corpus/golden_answers.json`` was recorded with the pre-rewrite
(fact-keyed, networkx-based) pipeline; any divergence here means the
performance work changed an answer somewhere in exchange, envelopes,
program build, or solving.  Re-record deliberately with
``repro.fuzz.corpus.record_golden_answers`` only when the *expected*
answers legitimately change.
"""

from pathlib import Path

import pytest

from repro.fuzz.corpus import (
    GOLDEN_ANSWERS_FILE,
    load_corpus,
    load_golden_answers,
    scenario_answers,
)

CORPUS_DIR = Path(__file__).resolve().parents[1] / "corpus"


def corpus_scenarios():
    return {path.stem: scenario for path, scenario in load_corpus(CORPUS_DIR)}


def test_golden_file_exists_and_covers_corpus():
    goldens = load_golden_answers(CORPUS_DIR)
    names = set(corpus_scenarios())
    assert set(goldens) == names, (
        f"{GOLDEN_ANSWERS_FILE} out of sync with the corpus: "
        f"missing {names - set(goldens)}, stale {set(goldens) - names}"
    )
    for name, answers in goldens.items():
        assert set(answers) == {
            "segmentary_certain",
            "segmentary_possible",
            "monolithic_certain",
            "figure1_certain",
        }, name


@pytest.mark.parametrize(
    "name", sorted(p.stem for p, _ in load_corpus(CORPUS_DIR))
)
def test_corpus_answers_match_goldens(name):
    goldens = load_golden_answers(CORPUS_DIR)
    scenario = corpus_scenarios()[name]
    assert scenario_answers(scenario) == goldens[name], (
        f"{name}: engine answers diverged from the recorded goldens"
    )
