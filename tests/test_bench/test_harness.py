"""Tests for the benchmark harness and reporting helpers."""

from repro.bench.reporting import format_series, format_table
from repro.bench.runner import BenchmarkContext, run_query_suite


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["alpha", 1], ["b", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series("ep1", [(0, 1.0), (3, 2.5)])
        assert text == "ep1: 0=1.000s  3=2.500s"


class TestBenchmarkContext:
    def test_instances_cached(self):
        context = BenchmarkContext()
        assert context.instance("S3") is context.instance("S3")

    def test_reduced_mapping_cached(self):
        context = BenchmarkContext()
        assert context.reduced_mapping() is context.reduced_mapping()

    def test_segmentary_engine_warm(self):
        context = BenchmarkContext()
        engine = context.segmentary_engine("S3")
        assert engine.analysis is not None  # exchange already run
        assert context.segmentary_engine("S3") is engine

    def test_run_query_suite(self):
        context = BenchmarkContext()
        engine = context.segmentary_engine("S3")
        results = run_query_suite(engine, ["xr1", "xr2"])
        assert [r.query for r in results] == ["xr1", "xr2"]
        assert all(r.seconds >= 0 for r in results)
        assert results[0].answers == 1  # boolean query true
