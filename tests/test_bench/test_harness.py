"""Tests for the benchmark harness and reporting helpers."""

from repro.bench.reporting import format_series, format_table
from repro.bench.runner import BenchmarkContext, run_query_suite


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["alpha", 1], ["b", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series("ep1", [(0, 1.0), (3, 2.5)])
        assert text == "ep1: 0=1.000s  3=2.500s"


class TestBenchmarkContext:
    def test_instances_cached(self):
        context = BenchmarkContext()
        assert context.instance("S3") is context.instance("S3")

    def test_reduced_mapping_cached(self):
        context = BenchmarkContext()
        assert context.reduced_mapping() is context.reduced_mapping()

    def test_segmentary_engine_warm(self):
        context = BenchmarkContext()
        engine = context.segmentary_engine("S3")
        assert engine.analysis is not None  # exchange already run
        assert context.segmentary_engine("S3") is engine

    def test_run_query_suite(self):
        context = BenchmarkContext()
        engine = context.segmentary_engine("S3")
        results = run_query_suite(engine, ["xr1", "xr2"])
        assert [r.query for r in results] == ["xr1", "xr2"]
        assert all(r.seconds >= 0 for r in results)
        assert results[0].answers == 1  # boolean query true


class TestMicroPayloadMetadata:
    """PR 10: every benchmark row is self-describing — scenario family,
    exchange strategy, and the stage labels observed in that run."""

    @classmethod
    def setup_class(cls):
        from repro.bench.micro import run_micro

        cls.payload = run_micro(
            scenarios=["S0", "tpch-sf0.01-r0"], repeats=1
        )

    def test_every_row_has_meta(self):
        for name, row in self.payload["scenarios"].items():
            meta = row["meta"]
            assert meta["exchange_strategy"] == "batch", name
            assert meta["scenario_family"] in ("genomics", "tpch"), name
            # Stage labels are derived from the run, not hardcoded, and
            # must match the medians actually reported.
            assert set(meta["stages"]) == set(row["exchange_s"]), name
            assert {"chase", "groundings", "violations", "total"} <= set(
                meta["stages"]
            ), name

    def test_families_assigned_correctly(self):
        scenarios = self.payload["scenarios"]
        assert scenarios["S0"]["meta"]["scenario_family"] == "genomics"
        assert scenarios["tpch-sf0.01-r0"]["meta"]["scenario_family"] == "tpch"

    def test_exchange_strategy_series(self):
        for name, row in self.payload["scenarios"].items():
            series = row["exchange_strategy_s"]
            assert series["stages"] == ["chase", "groundings", "violations"]
            assert series["batch"] > 0 and series["tuple"] > 0, name
            assert series["speedup"] > 0, name

    def test_tpch_rows_skip_query_stages(self):
        row = self.payload["scenarios"]["tpch-sf0.01-r0"]
        assert "query_s" not in row
        assert "solve_strategy_s" not in row
        assert "incremental_s" not in row
        assert row["counts"]["injected_facts"] == 0  # ratio 0 cell

    def test_table_and_compare_handle_mixed_families(self):
        from repro.bench.micro import compare_payloads, format_micro_table

        table = format_micro_table(self.payload)
        assert "tpch-sf0.01-r0" in table
        speedups = compare_payloads(self.payload, self.payload)
        assert speedups["S0"]["exchange"] == 1.0
        assert speedups["tpch-sf0.01-r0"] == {"exchange": 1.0}
