"""Tests for the TPC-H-style scenario family (PR 10).

The generator must be a pure function of ``(scale, ratio, seed)`` — the
determinism tests check that across calls *and* across interpreter
processes with different hash seeds, and a committed golden snapshot pins
one small cell byte-for-byte.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.fuzz.render import render_instance
from repro.reduction.reduce import reduce_mapping
from repro.scenarios.tpch import (
    _KEYED,
    parse_tpch_name,
    tpch_cell_name,
    tpch_mapping,
    tpch_scenario,
)
from repro.xr.exchange import build_exchange_data

GOLDEN = Path(__file__).resolve().parents[1] / "corpus" / "tpch-sf0.01-r0.2-seed0.golden"


def snapshot_text(scenario) -> str:
    lines = [
        "% tpch golden snapshot: scale=0.01 ratio=0.2 seed=0",
        "% regenerate: repro.scenarios.tpch.tpch_scenario(0.01, 0.2, 0)",
        "% --- instance ---",
        render_instance(scenario.instance),
        "% --- injected ---",
    ]
    lines += [repr(fact) for fact in scenario.injected]
    return "\n".join(lines) + "\n"


class TestMapping:
    def test_weakly_acyclic_gav_egd(self):
        mapping = tpch_mapping()
        assert mapping.is_weakly_acyclic()
        assert reduce_mapping(mapping).gav.is_gav_gav_egd()

    def test_every_keyed_relation_has_target_egds(self):
        mapping = tpch_mapping()
        constrained = {egd.body[0].relation for egd in mapping.target_egds}
        for name in _KEYED:
            assert f"t_{name}" in constrained


class TestDeterminism:
    def test_same_cell_twice_is_identical(self):
        first = tpch_scenario(0.01, 0.2, 0)
        second = tpch_scenario(0.01, 0.2, 0)
        assert list(first.instance) == list(second.instance)  # order too
        assert first.injected == second.injected

    def test_seed_changes_instance(self):
        assert set(tpch_scenario(0.01, 0.2, 0).instance) != set(
            tpch_scenario(0.01, 0.2, 1).instance
        )

    def test_stable_across_hash_seeds(self):
        """Byte-identical output from subprocesses with different
        PYTHONHASHSEED values — no set/dict iteration order leaks into
        the generated instance (the ``--jobs`` spawn-safety property)."""
        program = (
            "from repro.fuzz.render import render_instance\n"
            "from repro.scenarios.tpch import tpch_scenario\n"
            "s = tpch_scenario(0.005, 0.4, 7)\n"
            "print(render_instance(s.instance))\n"
            "print(sorted(repr(f) for f in s.injected))\n"
        )
        outputs = []
        for hash_seed in ("0", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            src = str(Path(__file__).resolve().parents[2] / "src")
            env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
            result = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]

    def test_golden_snapshot(self):
        assert GOLDEN.read_text() == snapshot_text(tpch_scenario(0.01, 0.2, 0))


class TestInjection:
    def test_zero_ratio_injects_nothing(self):
        scenario = tpch_scenario(0.01, 0.0, 0)
        assert scenario.injected == ()
        data = build_exchange_data(
            reduce_mapping(scenario.mapping).gav, scenario.instance
        )
        assert data.violations == []

    def test_injected_facts_clash_on_keys(self):
        scenario = tpch_scenario(0.01, 0.3, 2)
        assert scenario.injected
        originals = set(scenario.instance)
        for fact in scenario.injected:
            assert fact.relation in _KEYED
            assert fact in originals
            # Some original row shares the key but differs elsewhere.
            assert any(
                other.args[0] == fact.args[0] and other.args != fact.args
                for other in scenario.instance.facts_of(fact.relation)
            )

    def test_injection_yields_violations(self):
        scenario = tpch_scenario(0.01, 0.3, 2)
        data = build_exchange_data(
            reduce_mapping(scenario.mapping).gav, scenario.instance
        )
        assert data.violations

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            tpch_scenario(0.0, 0.2, 0)
        with pytest.raises(ValueError):
            tpch_scenario(0.01, 1.5, 0)


class TestNames:
    def test_round_trip(self):
        assert tpch_cell_name(0.01, 0.2) == "tpch-sf0.01-r0.2"
        assert parse_tpch_name("tpch-sf0.01-r0.2") == (0.01, 0.2)
        assert parse_tpch_name(tpch_cell_name(0.05, 0.0)) == (0.05, 0.0)

    def test_bad_names_rejected(self):
        for bad in ("tpch", "tpch-sf-r0.2", "M9", "tpch-sf0.01"):
            with pytest.raises(ValueError):
                parse_tpch_name(bad)
