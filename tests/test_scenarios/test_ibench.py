"""Tests for the iBench-style scenario generator (the paper's future work)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scenarios import ScenarioBuilder, random_ibench_scenario
from repro.xr.monolithic import MonolithicEngine
from repro.xr.segmentary import SegmentaryEngine


class TestBuilder:
    def test_empty_builder_rejected(self):
        with pytest.raises(ValueError):
            ScenarioBuilder().build()

    def test_copy_primitive(self):
        scenario = ScenarioBuilder().copy(arity=3).build()
        assert len(scenario.mapping.st_tgds) == 1
        assert len(scenario.mapping.target_egds) == 2  # key on 3 attributes
        assert scenario.mapping.is_weakly_acyclic()

    def test_projection_keep_bounds(self):
        with pytest.raises(ValueError):
            ScenarioBuilder().projection(arity=3, keep=0)

    def test_augment_has_existentials(self):
        scenario = ScenarioBuilder().augment(arity=2, added=2).build()
        (tgd,) = scenario.mapping.st_tgds
        assert len(tgd.existential) == 2

    def test_vpartition_two_targets(self):
        scenario = ScenarioBuilder().vpartition(left=2, right=1).build()
        assert len(scenario.mapping.target.names()) == 2

    def test_selfjoin_has_target_tgds(self):
        scenario = ScenarioBuilder().selfjoin().build()
        assert scenario.mapping.target_tgds
        assert scenario.mapping.is_weakly_acyclic()

    def test_composition(self):
        scenario = (
            ScenarioBuilder().copy().fusion().augment().selfjoin().build()
        )
        assert len(scenario.mapping.source.names()) == 5  # fusion has two
        assert scenario.mapping.is_weakly_acyclic()


class TestGeneration:
    def test_deterministic(self):
        scenario = ScenarioBuilder().fusion().build()
        first = scenario.generate(keys_per_primitive=5, conflict_rate=0.5, seed=3)
        second = scenario.generate(keys_per_primitive=5, conflict_rate=0.5, seed=3)
        assert set(first) == set(second)

    def test_zero_conflicts_is_consistent(self):
        from repro.chase import has_solution

        scenario = ScenarioBuilder().copy().fusion().build()
        instance = scenario.generate(keys_per_primitive=4, conflict_rate=0.0)
        assert has_solution(instance, scenario.mapping)

    def test_full_conflicts_are_inconsistent(self):
        from repro.chase import has_solution

        scenario = ScenarioBuilder().fusion().build()
        instance = scenario.generate(keys_per_primitive=3, conflict_rate=1.0)
        assert not has_solution(instance, scenario.mapping)


class TestEnginesOnScenarios:
    def test_fusion_conflict_answers(self):
        from repro.relational.queries import Atom, ConjunctiveQuery
        from repro.relational.terms import Variable

        scenario = ScenarioBuilder().fusion(arity=2).build()
        instance = scenario.generate(keys_per_primitive=4, conflict_rate=0.5, seed=1)
        target = next(iter(scenario.mapping.target)).name
        x, y = Variable("x"), Variable("y")
        key_query = ConjunctiveQuery([x], [Atom(target, (x, y))])
        row_query = ConjunctiveQuery([x, y], [Atom(target, (x, y))])
        engine = SegmentaryEngine(scenario.mapping, instance)
        keys = engine.answer(key_query)
        rows = engine.answer(row_query)
        assert len(keys) == 4            # every key has some target row
        assert len(rows) < 4 or len(rows) == 4  # conflicted keys lose rows
        monolithic = MonolithicEngine(scenario.mapping, instance)
        assert monolithic.answer(key_query) == keys
        assert monolithic.answer(row_query) == rows

    def test_selfjoin_certain_reachability(self):
        from repro.relational.queries import Atom, ConjunctiveQuery
        from repro.relational.terms import Variable

        scenario = ScenarioBuilder().selfjoin(chain=3).build()
        instance = scenario.generate(keys_per_primitive=1, conflict_rate=1.0, seed=0)
        closed = next(
            name for name in scenario.mapping.target.names() if name.startswith("TC_")
        )
        x, y = Variable("x"), Variable("y")
        query = ConjunctiveQuery([x, y], [Atom(closed, (x, y))])
        engine = SegmentaryEngine(scenario.mapping, instance)
        answers = engine.answer(query)
        # The fork at the chain head makes reachability from node 0
        # uncertain, but the tail of the chain (1 -> 2 -> 3, closed) stays.
        assert ("sj1_n0_1", "sj1_n0_3") in answers
        assert not any(pair[0].endswith("_0") for pair in answers)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_random_scenarios_are_well_formed(seed):
    scenario = random_ibench_scenario(seed, size=3)
    assert scenario.mapping.is_weakly_acyclic()
    instance = scenario.generate(keys_per_primitive=2, conflict_rate=0.3, seed=seed)
    assert len(instance) > 0
    # The reduction accepts every generated mapping.
    from repro.reduction import reduce_mapping

    reduce_mapping(scenario.mapping)
