"""Tests for terms and values."""

import pytest

from repro.relational.terms import (
    Const,
    Null,
    SkolemValue,
    Variable,
    fresh_null,
    is_constant_value,
    is_null_value,
    reset_null_counter,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_hashable(self):
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_distinct_from_const_of_same_payload(self):
        assert Variable("x") != Const("x")
        assert hash(Variable("x")) != hash(Const("x"))

    def test_repr(self):
        assert repr(Variable("foo")) == "?foo"


class TestConst:
    def test_equality(self):
        assert Const(3) == Const(3)
        assert Const(3) != Const("3")

    def test_wraps_raw_value(self):
        assert Const("abc").value == "abc"


class TestNull:
    def test_equality_by_label(self):
        assert Null(1) == Null(1)
        assert Null(1) != Null(2)

    def test_fresh_nulls_are_distinct(self):
        assert fresh_null() != fresh_null()

    def test_reset_counter(self):
        reset_null_counter()
        first = fresh_null()
        reset_null_counter()
        assert fresh_null() == first

    def test_null_is_not_a_constant(self):
        assert is_null_value(Null(1))
        assert not is_constant_value(Null(1))


class TestSkolemValue:
    def test_equality_structural(self):
        assert SkolemValue("f", ("a", 1)) == SkolemValue("f", ("a", 1))
        assert SkolemValue("f", ("a",)) != SkolemValue("g", ("a",))
        assert SkolemValue("f", ("a",)) != SkolemValue("f", ("b",))

    def test_nesting_and_depth(self):
        inner = SkolemValue("g", ("a",))
        outer = SkolemValue("f", (inner, "b"))
        assert outer.depth() == 2
        assert inner.depth() == 1

    def test_counts_as_null(self):
        assert is_null_value(SkolemValue("f", ()))
        assert not is_constant_value(SkolemValue("f", ()))

    def test_hashable_in_sets(self):
        values = {SkolemValue("f", ("a",)), SkolemValue("f", ("a",))}
        assert len(values) == 1


class TestValueClassification:
    @pytest.mark.parametrize("value", ["a", 0, 3.5, (), "N1"])
    def test_plain_values_are_constants(self, value):
        assert is_constant_value(value)
        assert not is_null_value(value)
