"""Tests for facts and instances."""

import pytest
from hypothesis import given, strategies as st

from repro.relational.instance import Fact, Instance
from repro.relational.terms import Null


def f(rel, *args):
    return Fact(rel, args)


class TestFact:
    def test_equality(self):
        assert f("R", "a", "b") == f("R", "a", "b")
        assert f("R", "a", "b") != f("R", "b", "a")
        assert f("R", "a") != f("S", "a")

    def test_arity(self):
        assert f("R", "a", "b").arity == 2
        assert f("R").arity == 0

    def test_has_nulls(self):
        assert f("R", Null(1)).has_nulls()
        assert not f("R", "a").has_nulls()


class TestInstanceBasics:
    def test_add_and_contains(self):
        inst = Instance()
        assert inst.add(f("R", "a"))
        assert not inst.add(f("R", "a"))  # duplicate
        assert f("R", "a") in inst
        assert f("R", "b") not in inst
        assert len(inst) == 1

    def test_discard(self):
        inst = Instance([f("R", "a"), f("R", "b")])
        assert inst.discard(f("R", "a"))
        assert not inst.discard(f("R", "a"))
        assert len(inst) == 1
        assert f("R", "a") not in inst

    def test_iteration_covers_all_relations(self):
        facts = {f("R", "a"), f("S", "b", "c")}
        assert set(Instance(facts)) == facts

    def test_bool(self):
        assert not Instance()
        assert Instance([f("R", "a")])

    def test_facts_of(self):
        inst = Instance([f("R", "a"), f("S", "b")])
        assert inst.facts_of("R") == {f("R", "a")}
        assert inst.facts_of("missing") == set()

    def test_relations(self):
        inst = Instance([f("R", "a"), f("S", "b")])
        assert inst.relations() == {"R", "S"}

    def test_active_domain(self):
        inst = Instance([f("R", "a", "b"), f("S", "b", 3)])
        assert inst.active_domain() == {"a", "b", 3}


class TestInstanceIndex:
    def test_lookup_by_position(self):
        inst = Instance([f("R", "a", "b"), f("R", "a", "c"), f("R", "x", "b")])
        assert set(inst.lookup("R", 0, "a")) == {f("R", "a", "b"), f("R", "a", "c")}
        assert set(inst.lookup("R", 1, "b")) == {f("R", "a", "b"), f("R", "x", "b")}
        assert inst.lookup("R", 0, "zzz") == []

    def test_index_updated_on_add(self):
        inst = Instance([f("R", "a", "b")])
        assert len(inst.lookup("R", 0, "a")) == 1  # build index
        inst.add(f("R", "a", "c"))
        assert len(inst.lookup("R", 0, "a")) == 2

    def test_index_invalidated_on_discard(self):
        inst = Instance([f("R", "a", "b"), f("R", "a", "c")])
        assert len(inst.lookup("R", 0, "a")) == 2
        inst.discard(f("R", "a", "b"))
        assert len(inst.lookup("R", 0, "a")) == 1


class TestInstanceAlgebra:
    def test_restrict(self):
        inst = Instance([f("R", "a"), f("S", "b")])
        assert set(inst.restrict(["R"])) == {f("R", "a")}

    def test_union_difference_intersection(self):
        left = Instance([f("R", "a"), f("R", "b")])
        right = Instance([f("R", "b"), f("R", "c")])
        assert set(left.union(right)) == {f("R", "a"), f("R", "b"), f("R", "c")}
        assert set(left.difference(right)) == {f("R", "a")}
        assert set(left.intersection(right)) == {f("R", "b")}

    def test_issubset_and_equality(self):
        small = Instance([f("R", "a")])
        big = Instance([f("R", "a"), f("R", "b")])
        assert small.issubset(big)
        assert not big.issubset(small)
        assert Instance([f("R", "a")]) == Instance([f("R", "a")])
        assert Instance([f("R", "a")]) != big

    def test_copy_is_independent(self):
        original = Instance([f("R", "a")])
        clone = original.copy()
        clone.add(f("R", "b"))
        assert len(original) == 1
        assert len(clone) == 2


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["R", "S"]),
            st.text(alphabet="abc", min_size=1, max_size=2),
            st.text(alphabet="abc", min_size=1, max_size=2),
        ),
        max_size=30,
    )
)
def test_instance_behaves_like_a_set_of_facts(raw):
    facts = [Fact(rel, (x, y)) for rel, x, y in raw]
    inst = Instance(facts)
    assert set(inst) == set(facts)
    assert len(inst) == len(set(facts))
    for fact in facts:
        assert fact in inst
        assert fact in inst.lookup(fact.relation, 0, fact.args[0])
