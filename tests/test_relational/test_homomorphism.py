"""Tests for homomorphisms between instances."""

from repro.relational.homomorphism import find_homomorphism, is_homomorphic_to
from repro.relational.instance import Fact, Instance
from repro.relational.terms import Null


def f(rel, *args):
    return Fact(rel, args)


class TestHomomorphism:
    def test_identity(self):
        inst = Instance([f("R", "a", "b")])
        assert is_homomorphic_to(inst, inst)

    def test_null_maps_to_constant(self):
        source = Instance([f("R", "a", Null(1))])
        target = Instance([f("R", "a", "b")])
        mapping = find_homomorphism(source, target)
        assert mapping is not None
        assert mapping[Null(1)] == "b"

    def test_constant_cannot_be_renamed(self):
        source = Instance([f("R", "a")])
        target = Instance([f("R", "b")])
        assert not is_homomorphic_to(source, target)

    def test_two_nulls_may_collapse(self):
        source = Instance([f("R", Null(1)), f("R", Null(2))])
        target = Instance([f("R", "a")])
        assert is_homomorphic_to(source, target)

    def test_consistent_mapping_required_across_facts(self):
        n = Null(1)
        source = Instance([f("R", n, "x"), f("S", n, "y")])
        target = Instance([f("R", "a", "x"), f("S", "b", "y")])
        assert not is_homomorphic_to(source, target)
        target.add(f("S", "a", "y"))
        assert is_homomorphic_to(source, target)

    def test_empty_source_is_homomorphic_anywhere(self):
        assert is_homomorphic_to(Instance(), Instance())

    def test_missing_relation(self):
        source = Instance([f("R", Null(1))])
        assert not is_homomorphic_to(source, Instance([f("S", "a")]))

    def test_backtracking_required(self):
        # The greedy first choice for n1 must be revised.
        n1, n2 = Null(1), Null(2)
        source = Instance([f("E", n1, n2), f("E", n2, n1)])
        target = Instance([f("E", "a", "b"), f("E", "b", "a"), f("E", "a", "c")])
        mapping = find_homomorphism(source, target)
        assert mapping is not None
        assert {mapping[n1], mapping[n2]} == {"a", "b"}

    def test_identity_on_constants_in_result(self):
        source = Instance([f("R", "a", Null(1))])
        target = Instance([f("R", "a", "b")])
        mapping = find_homomorphism(source, target)
        assert mapping["a"] == "a"
