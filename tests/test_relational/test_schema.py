"""Tests for schemas and relation symbols."""

import pytest

from repro.relational.schema import RelationSymbol, Schema


class TestRelationSymbol:
    def test_negative_arity_rejected(self):
        with pytest.raises(ValueError):
            RelationSymbol("R", -1)

    def test_attribute_count_must_match_arity(self):
        with pytest.raises(ValueError):
            RelationSymbol("R", 2, ["only_one"])
        ok = RelationSymbol("R", 2, ["a", "b"])
        assert ok.attributes == ("a", "b")

    def test_equality(self):
        assert RelationSymbol("R", 2) == RelationSymbol("R", 2)
        assert RelationSymbol("R", 2) != RelationSymbol("R", 3)


class TestSchema:
    def test_lookup(self):
        schema = Schema([RelationSymbol("R", 2)])
        assert "R" in schema
        assert schema["R"].arity == 2
        assert schema.get("missing") is None
        assert schema.arity("R") == 2

    def test_conflicting_redeclaration_rejected(self):
        schema = Schema([RelationSymbol("R", 2)])
        with pytest.raises(ValueError):
            schema.add(RelationSymbol("R", 3))
        schema.add(RelationSymbol("R", 2))  # idempotent

    def test_union(self):
        left = Schema([RelationSymbol("R", 1)])
        right = Schema([RelationSymbol("S", 2)])
        merged = left.union(right)
        assert merged.names() == {"R", "S"}
        assert left.names() == {"R"}  # original untouched

    def test_disjointness(self):
        left = Schema([RelationSymbol("R", 1)])
        right = Schema([RelationSymbol("R", 1)])
        assert not left.is_disjoint_from(right)
        assert left.is_disjoint_from(Schema([RelationSymbol("S", 1)]))

    def test_len_and_iter(self):
        schema = Schema([RelationSymbol("R", 1), RelationSymbol("S", 2)])
        assert len(schema) == 2
        assert {r.name for r in schema} == {"R", "S"}
