"""Tests for CQ/UCQ representation and evaluation."""

import pytest

from repro.relational.instance import Fact, Instance
from repro.relational.queries import (
    Atom,
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    evaluate,
    evaluate_constants_only,
    match_atoms,
    plan_join_order,
)
from repro.relational.terms import Const, Null, Variable

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def f(rel, *args):
    return Fact(rel, args)


@pytest.fixture
def triangle():
    return Instance(
        [f("E", "a", "b"), f("E", "b", "c"), f("E", "c", "a"), f("E", "a", "c")]
    )


class TestAtom:
    def test_variables(self):
        atom = Atom("R", (X, Const("k"), Y))
        assert atom.variables() == {X, Y}

    def test_substitute(self):
        atom = Atom("R", (X, Const("k")))
        assert atom.substitute({X: "v"}) == f("R", "v", "k")

    def test_substitute_missing_binding_raises(self):
        with pytest.raises(KeyError):
            Atom("R", (X,)).substitute({})


class TestConjunctiveQuery:
    def test_unsafe_head_rejected(self):
        with pytest.raises(ValueError, match="unsafe"):
            ConjunctiveQuery([X], [Atom("R", (Y,))])

    def test_boolean_query(self):
        q = ConjunctiveQuery([], [Atom("R", (X,))])
        assert q.is_boolean()

    def test_variables(self):
        q = ConjunctiveQuery([X], [Atom("R", (X, Y))])
        assert q.variables() == {X, Y}


class TestEvaluation:
    def test_single_atom(self, triangle):
        q = ConjunctiveQuery([X, Y], [Atom("E", (X, Y))])
        assert evaluate(q, triangle) == {
            ("a", "b"), ("b", "c"), ("c", "a"), ("a", "c"),
        }

    def test_join(self, triangle):
        q = ConjunctiveQuery([X, Z], [Atom("E", (X, Y)), Atom("E", (Y, Z))])
        assert ("a", "c") in evaluate(q, triangle)
        assert ("a", "a") in evaluate(q, triangle)  # a->c->a

    def test_projection(self, triangle):
        q = ConjunctiveQuery([X], [Atom("E", (X, Y))])
        assert evaluate(q, triangle) == {("a",), ("b",), ("c",)}

    def test_boolean_answer(self, triangle):
        q = ConjunctiveQuery([], [Atom("E", (X, X))])
        assert evaluate(q, triangle) == set()
        q2 = ConjunctiveQuery([], [Atom("E", (X, Y))])
        assert evaluate(q2, triangle) == {()}

    def test_constant_in_body(self, triangle):
        q = ConjunctiveQuery([Y], [Atom("E", (Const("a"), Y))])
        assert evaluate(q, triangle) == {("b",), ("c",)}

    def test_repeated_variable_selects_loops(self):
        inst = Instance([f("E", "a", "a"), f("E", "a", "b")])
        q = ConjunctiveQuery([X], [Atom("E", (X, X))])
        assert evaluate(q, inst) == {("a",)}

    def test_inequalities(self):
        inst = Instance([f("E", "a", "a"), f("E", "a", "b")])
        q = ConjunctiveQuery([X, Y], [Atom("E", (X, Y))], inequalities=[(X, Y)])
        assert evaluate(q, inst) == {("a", "b")}

    def test_empty_relation(self):
        q = ConjunctiveQuery([X], [Atom("Missing", (X,))])
        assert evaluate(q, Instance()) == set()

    def test_constants_only_filters_nulls(self):
        inst = Instance([f("R", "a", Null(1)), f("R", "b", "c")])
        q = ConjunctiveQuery([X, Y], [Atom("R", (X, Y))])
        assert evaluate_constants_only(q, inst) == {("b", "c")}
        assert len(evaluate(q, inst)) == 2


class TestUCQ:
    def test_union_semantics(self, triangle):
        q1 = ConjunctiveQuery([X], [Atom("E", (X, Const("b")))])
        q2 = ConjunctiveQuery([X], [Atom("E", (Const("b"), X))])
        ucq = UnionOfConjunctiveQueries([q1, q2])
        assert evaluate(ucq, triangle) == {("a",), ("c",)}

    def test_width_mismatch_rejected(self):
        q1 = ConjunctiveQuery([X], [Atom("E", (X, Y))])
        q2 = ConjunctiveQuery([X, Y], [Atom("E", (X, Y))])
        with pytest.raises(ValueError):
            UnionOfConjunctiveQueries([q1, q2])

    def test_empty_union_rejected(self):
        with pytest.raises(ValueError):
            UnionOfConjunctiveQueries([])


class TestMatcher:
    def test_match_atoms_with_seed_binding(self, triangle):
        atoms = [Atom("E", (X, Y))]
        bindings = list(match_atoms(triangle, atoms, {X: "a"}))
        assert {b[Y] for b in bindings} == {"b", "c"}

    def test_plan_prefers_bound_atoms(self, triangle):
        big = Instance(triangle)
        for index in range(50):
            big.add(f("F", index, index))
        atoms = [Atom("F", (Z, Z)), Atom("E", (Const("a"), Y))]
        order = plan_join_order(big, atoms, set())
        assert order[0].relation == "E"  # constant probe first

    def test_match_is_exhaustive(self, triangle):
        atoms = [Atom("E", (X, Y)), Atom("E", (Y, Z))]
        found = {
            (b[X], b[Y], b[Z]) for b in match_atoms(triangle, atoms)
        }
        expected = {
            (x, y, z)
            for (x, y) in [("a", "b"), ("b", "c"), ("c", "a"), ("a", "c")]
            for (y2, z) in [("a", "b"), ("b", "c"), ("c", "a"), ("a", "c")]
            if y == y2
        }
        assert found == expected
