"""Tests for selective singularization and nullability analysis."""

from repro.dependencies.tgds import TGD, SkolemTerm
from repro.reduction.singularize import (
    EQ_RELATION,
    nullable_positions,
    singularize_atoms,
)
from repro.relational.queries import Atom
from repro.relational.terms import Const, Variable

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestNullablePositions:
    def test_skolem_head_position_nullable(self):
        rule = TGD([Atom("R", (X,))], [Atom("T", (X, SkolemTerm("f", [X])))])
        nullable = nullable_positions([rule])
        assert nullable == {("T", 1)}

    def test_propagation_through_rules(self):
        rules = [
            TGD([Atom("R", (X,))], [Atom("T", (X, SkolemTerm("f", [X])))]),
            TGD([Atom("T", (X, Y))], [Atom("U", (Y,))]),
        ]
        assert ("U", 0) in nullable_positions(rules)

    def test_no_skolems_nothing_nullable(self):
        rules = [TGD([Atom("R", (X, Y))], [Atom("T", (Y, X))])]
        assert nullable_positions(rules) == set()

    def test_fixpoint_through_eq(self):
        rules = [
            TGD([Atom("R", (X,))], [Atom("T", (X, SkolemTerm("f", [X])))]),
            TGD([Atom("T", (X, Y))], [Atom(EQ_RELATION, (Y, X))]),
            TGD([Atom(EQ_RELATION, (X, Y))], [Atom(EQ_RELATION, (Y, X))]),
        ]
        nullable = nullable_positions(rules)
        assert (EQ_RELATION, 0) in nullable
        assert (EQ_RELATION, 1) in nullable


class TestSingularizeAtoms:
    def test_constant_join_left_syntactic(self):
        atoms = [Atom("T", (X, Y)), Atom("U", (X, Z))]
        new_atoms, eq_atoms, anchors = singularize_atoms(atoms, set())
        assert new_atoms == atoms
        assert eq_atoms == []
        assert anchors == {X: False, Y: False, Z: False}

    def test_nullable_join_mediated(self):
        nullable = {("T", 1), ("U", 0)}
        atoms = [Atom("T", (X, Y)), Atom("U", (Y, Z))]
        new_atoms, eq_atoms, anchors = singularize_atoms(atoms, nullable)
        assert len(eq_atoms) == 1
        assert eq_atoms[0].relation == EQ_RELATION
        # Y occurs at two nullable positions: one is replaced.
        replaced = [t for atom in new_atoms for t in atom.terms]
        assert Y in replaced
        assert anchors[Y] is True

    def test_anchor_prefers_non_nullable_position(self):
        nullable = {("T", 1)}
        atoms = [Atom("T", (X, Y)), Atom("U", (Y, Z))]
        new_atoms, eq_atoms, anchors = singularize_atoms(atoms, nullable)
        # Y's anchor is the non-nullable U position: binding stays constant.
        assert anchors[Y] is False
        assert new_atoms[1].terms[0] == Y
        assert new_atoms[0].terms[1] != Y  # nullable occurrence mediated

    def test_constant_at_nullable_position_pinned(self):
        nullable = {("T", 0)}
        atoms = [Atom("T", (Const("k"), X))]
        new_atoms, eq_atoms, _ = singularize_atoms(atoms, nullable)
        assert isinstance(new_atoms[0].terms[0], Variable)
        assert eq_atoms[0].terms[1] == Const("k")

    def test_constant_at_safe_position_untouched(self):
        atoms = [Atom("T", (Const("k"), X))]
        new_atoms, eq_atoms, _ = singularize_atoms(atoms, set())
        assert new_atoms == atoms and eq_atoms == []

    def test_repeated_variable_in_one_atom(self):
        nullable = {("T", 0), ("T", 1)}
        atoms = [Atom("T", (X, X))]
        new_atoms, eq_atoms, _ = singularize_atoms(atoms, nullable)
        terms = new_atoms[0].terms
        assert terms[0] != terms[1]
        assert len(eq_atoms) == 1

    def test_fresh_variables_are_fresh_across_calls(self):
        nullable = {("T", 0), ("T", 1)}
        _, eq1, _ = singularize_atoms([Atom("T", (X, X))], nullable)
        _, eq2, _ = singularize_atoms([Atom("T", (X, X))], nullable)
        assert eq1[0].terms[1] != eq2[0].terms[1]
