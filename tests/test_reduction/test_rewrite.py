"""Tests for query rewriting over the reduced schema."""

import pytest

from repro.parser import parse_mapping, parse_query
from repro.reduction import reduce_mapping
from repro.reduction.rewrite import rewrite_query
from repro.reduction.singularize import EQ_RELATION
from repro.relational.queries import UnionOfConjunctiveQueries
from repro.relational.terms import Variable


@pytest.fixture
def reduced():
    return reduce_mapping(
        parse_mapping(
            """
            SOURCE R/1. TARGET T/2.
            R(x) -> T(x, y).
            T(x, y), T(x, z) -> y = z.
            """
        )
    )


class TestRewrite:
    def test_returns_ucq(self, reduced):
        rewritten = reduced.rewrite(parse_query("q(x) :- T(x, y)."))
        assert isinstance(rewritten, UnionOfConjunctiveQueries)
        assert len(rewritten.disjuncts) == 1

    def test_safe_head_var_kept(self, reduced):
        rewritten = reduced.rewrite(parse_query("q(x) :- T(x, y)."))
        (disjunct,) = rewritten.disjuncts
        assert disjunct.head_vars == (Variable("x"),)

    def test_nullable_head_var_answers_through_eq(self, reduced):
        rewritten = reduced.rewrite(parse_query("q(y) :- T(x, y)."))
        (disjunct,) = rewritten.disjuncts
        (head_var,) = disjunct.head_vars
        assert head_var != Variable("y")
        assert any(
            atom.relation == EQ_RELATION and Variable("y") in atom.terms
            for atom in disjunct.body
        )

    def test_eq_in_query_rejected(self, reduced):
        query = parse_query(f"q(x) :- {EQ_RELATION}(x, y).")
        with pytest.raises(ValueError, match="reserved"):
            rewrite_query(query, reduced.nullable)

    def test_identity_rewriter_wraps_cq(self):
        mapping = parse_mapping(
            """
            SOURCE R/2. TARGET T/2.
            R(x, y) -> T(x, y).
            """
        )
        reduced = reduce_mapping(mapping)
        assert reduced.is_identity
        query = parse_query("q(x) :- T(x, y).")
        rewritten = reduced.rewrite(query)
        assert isinstance(rewritten, UnionOfConjunctiveQueries)
        assert rewritten.disjuncts[0] is query

    def test_ucq_rewritten_disjunctwise(self, reduced):
        from repro.parser import parse_program

        ucq = parse_program("q(x) :- T(x, y). q(x) :- T(y, x).")
        rewritten = reduced.rewrite(ucq)
        assert len(rewritten.disjuncts) == 2
