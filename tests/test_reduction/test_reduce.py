"""Tests for the GLAV-to-GAV reduction (Theorem 1)."""

import pytest

from repro.parser import parse_mapping
from repro.reduction import EQ_RELATION, reduce_mapping
from repro.reduction.singularize import nullable_positions


class TestIdentityPath:
    def test_pure_gav_mapping_is_identity(self):
        mapping = parse_mapping(
            """
            SOURCE R/2. TARGET T/2.
            R(x, y) -> T(x, y).
            T(x, y), T(x, z) -> y = z.
            """
        )
        reduced = reduce_mapping(mapping)
        assert reduced.is_identity
        assert reduced.gav is mapping

    def test_multi_head_triggers_full_reduction(self):
        mapping = parse_mapping(
            """
            SOURCE R/2. TARGET T/2, U/2.
            R(x, y) -> T(x, y), U(y, x).
            """
        )
        assert not reduce_mapping(mapping).is_identity


class TestFullReduction:
    @pytest.fixture
    def reduced(self):
        return reduce_mapping(
            parse_mapping(
                """
                SOURCE R/1. TARGET T/2, U/2.
                R(x) -> T(x, y).
                T(x, y) -> U(y, x).
                T(x, y), T(x, z) -> y = z.
                """
            )
        )

    def test_output_is_gav(self, reduced):
        assert reduced.gav.is_gav_gav_egd()
        assert all(not t.existential for t in reduced.gav.all_tgds())

    def test_eq_relation_added(self, reduced):
        assert EQ_RELATION in reduced.gav.target

    def test_skolem_functions_recorded(self, reduced):
        assert len(reduced.skolem_functions) == 1
        (name,) = reduced.skolem_functions
        assert "y" in name

    def test_single_hard_egd(self, reduced):
        assert len(reduced.gav.target_egds) == 1
        (egd,) = reduced.gav.target_egds
        assert egd.constants_only
        assert egd.body[0].relation == EQ_RELATION

    def test_congruence_rules_present(self, reduced):
        labels = {t.label for t in reduced.gav.target_tgds}
        assert "eq_sym" in labels
        assert "eq_trans" in labels

    def test_reserved_relation_name_rejected(self):
        mapping = parse_mapping(
            """
            SOURCE R/1. TARGET EQ/2.
            R(x) -> EQ(x, y).
            """
        )
        with pytest.raises(ValueError, match="reserved"):
            reduce_mapping(mapping)

    def test_non_weakly_acyclic_rejected(self):
        mapping = parse_mapping(
            """
            SOURCE R/2. TARGET T/2.
            R(x, y) -> T(x, y).
            T(x, y) -> T(y, z).
            """
        )
        with pytest.raises(ValueError, match="weakly acyclic"):
            reduce_mapping(mapping)

    def test_stats(self, reduced):
        stats = reduced.stats()
        assert stats["tgds_before"] == 2
        assert stats["egds_before"] == 1
        assert stats["egds_after"] == 1
        assert stats["tgds_after"] > stats["tgds_before"]


class TestNullability:
    def test_copied_positions_not_nullable(self):
        reduced = reduce_mapping(
            parse_mapping(
                """
                SOURCE R/2. TARGET T/2.
                R(x, y) -> T(x, z).
                T(x, y), T(x, z) -> y = z.
                """
            )
        )
        assert ("T", 0) not in reduced.nullable
        assert ("T", 1) in reduced.nullable

    def test_nullability_propagates_through_target_tgds(self):
        reduced = reduce_mapping(
            parse_mapping(
                """
                SOURCE R/1. TARGET T/2, U/2.
                R(x) -> T(x, y).
                T(x, y) -> U(y, x).
                """
            )
        )
        assert ("U", 0) in reduced.nullable
        assert ("U", 1) not in reduced.nullable

    def test_reflexivity_only_for_nullable_positions(self):
        reduced = reduce_mapping(
            parse_mapping(
                """
                SOURCE R/2. TARGET T/2.
                R(x, y) -> T(x, z).
                T(x, y), T(x, z) -> y = z.
                """
            )
        )
        reflexivity_labels = {
            t.label for t in reduced.gav.target_tgds if t.label.startswith("eq_refl")
        }
        # Only T's nullable position (and the skolem witness's value slot).
        assert "eq_refl_T_1" in reflexivity_labels
        assert "eq_refl_T_0" not in reflexivity_labels


class TestSemanticEquivalence:
    """The reduced chase agrees with the standard chase on consistency."""

    @pytest.mark.parametrize(
        "facts, consistent",
        [
            ([("R", ("a", "b"))], True),
            # The null invented for R merges with S's constant: fine.
            ([("R", ("a", "b")), ("S", ("a", "c"))], True),
            # Two distinct constants forced equal through the null: failure.
            ([("R", ("a", "b")), ("S", ("a", "b")), ("S", ("a", "c"))], False),
        ],
    )
    def test_consistency_matches(self, facts, consistent):
        from repro.chase import gav_chase, has_solution
        from repro.relational import Fact, Instance
        from repro.xr.exchange import build_exchange_data

        mapping = parse_mapping(
            """
            SOURCE R/2, S/2. TARGET T/2.
            R(x, y) -> T(x, z).
            S(x, y) -> T(x, y).
            T(x, y), T(x, z) -> y = z.
            """
        )
        instance = Instance(Fact(r, args) for r, args in facts)
        reduced = reduce_mapping(mapping)
        data = build_exchange_data(reduced.gav, instance)
        assert (not data.violations) == has_solution(instance, mapping) == consistent
