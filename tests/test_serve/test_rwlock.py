"""Tests for the writer-preferring readers–writer lock."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.rwlock import RWLock


def test_readers_share():
    lock = RWLock()
    assert lock.acquire_read()
    assert lock.acquire_read()
    snapshot = lock.snapshot()
    assert snapshot["readers"] == 2
    lock.release_read()
    lock.release_read()
    assert lock.snapshot()["readers"] == 0


def test_writer_excludes_readers_and_writers():
    lock = RWLock()
    assert lock.acquire_write()
    assert not lock.acquire_read(timeout=0.05)
    assert not lock.acquire_write(timeout=0.05)
    lock.release_write()
    assert lock.acquire_read(timeout=0.05)
    lock.release_read()


def test_reader_blocks_writer_until_released():
    lock = RWLock()
    lock.acquire_read()
    assert not lock.acquire_write(timeout=0.05)
    lock.release_read()
    assert lock.acquire_write(timeout=0.5)
    lock.release_write()


def test_writer_preference_blocks_new_readers():
    """Once a writer waits, later readers queue behind it — a steady
    reader stream cannot starve the writer."""
    lock = RWLock()
    lock.acquire_read()
    writer_done = threading.Event()

    def writer() -> None:
        lock.acquire_write()
        writer_done.set()
        lock.release_write()

    thread = threading.Thread(target=writer)
    thread.start()
    # Wait for the writer to be registered as waiting.
    for _ in range(100):
        if lock.snapshot()["writers_waiting"]:
            break
        time.sleep(0.01)
    assert lock.snapshot()["writers_waiting"] == 1
    # A new reader must NOT get in ahead of the waiting writer.
    assert not lock.acquire_read(timeout=0.05)
    lock.release_read()
    assert writer_done.wait(2.0)
    thread.join()
    # After the writer finishes, readers flow again.
    assert lock.acquire_read(timeout=1.0)
    lock.release_read()


def test_context_managers():
    lock = RWLock()
    with lock.read_locked():
        assert lock.snapshot()["readers"] == 1
    with lock.write_locked():
        assert lock.snapshot()["writer_active"]
    assert lock.snapshot() == {
        "readers": 0, "writer_active": False, "writers_waiting": 0,
    }


def test_release_without_acquire_raises():
    lock = RWLock()
    with pytest.raises(RuntimeError):
        lock.release_write()
    lock.acquire_read()
    lock.release_read()
    with pytest.raises(RuntimeError):
        lock.release_read()


def test_concurrent_invariant_never_reader_and_writer():
    """Hammer: at no instant do an active writer and a reader coexist."""
    lock = RWLock()
    violations: list[str] = []
    state = {"readers": 0, "writers": 0}
    guard = threading.Lock()

    def reader() -> None:
        for _ in range(200):
            with lock.read_locked():
                with guard:
                    state["readers"] += 1
                    if state["writers"]:
                        violations.append("reader during writer")
                with guard:
                    state["readers"] -= 1

    def writer() -> None:
        for _ in range(50):
            with lock.write_locked():
                with guard:
                    state["writers"] += 1
                    if state["writers"] > 1 or state["readers"]:
                        violations.append("writer overlap")
                with guard:
                    state["writers"] -= 1

    threads = [threading.Thread(target=reader) for _ in range(4)]
    threads += [threading.Thread(target=writer) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert violations == []
