"""Request/response schema round-trips and protocol validation."""

from __future__ import annotations

import json

import pytest

from repro.runtime.budget import NO_BUDGET, SolveBudget
from repro.serve.protocol import (
    ProtocolError,
    answer_payload,
    parse_query_request,
    parse_update_request,
    request_budget,
    serialize_rows,
)
from repro.xr.segmentary import QueryPhaseStats


class TestQueryRequest:
    def test_round_trip(self):
        request = parse_query_request(
            {"query": "q(x) :- P(x, y).", "mode": "possible",
             "deadline": 2.5, "task_timeout": 0.5}
        )
        assert request.mode == "possible"
        assert request.deadline == 2.5
        assert request.task_timeout == 0.5
        assert request.query.name == "q"
        assert request.query_text == "q(x) :- P(x, y)."

    def test_defaults(self):
        request = parse_query_request({"query": "q() :- P(x, y)."})
        assert request.mode == "certain"
        assert request.deadline is None and request.task_timeout is None

    def test_ucq_parses(self):
        request = parse_query_request(
            {"query": "q(x) :- P(x, y). q(y) :- P(x, y)."}
        )
        assert request.query.name == "q"

    @pytest.mark.parametrize("payload", [
        [],                                     # not an object
        {},                                     # missing query
        {"query": ""},                          # empty query
        {"query": 7},                           # wrong type
        {"query": "q(x) :- P(x, y).", "mode": "brave"},  # bad mode
        {"query": "q(x) :- P(x, y).", "deadline": 0},    # non-positive
        {"query": "q(x) :- P(x, y).", "deadline": "1"},  # wrong type
        {"query": "q(x) :- P(x, y).", "deadline": True}, # bool is not a number
        {"query": "q(x) :- P(x, y).", "typo": 1},        # unknown field
        {"query": "oops("},                     # unparsable
    ])
    def test_rejects_malformed(self, payload):
        with pytest.raises(ProtocolError):
            parse_query_request(payload)


class TestRequestBudget:
    def test_no_knobs_keeps_null_singleton(self):
        request = parse_query_request({"query": "q() :- P(x, y)."})
        assert request_budget(request, NO_BUDGET) is NO_BUDGET

    def test_request_tightens_ceiling(self):
        request = parse_query_request(
            {"query": "q() :- P(x, y).", "deadline": 0.5}
        )
        ceiling = SolveBudget(deadline=10.0, task_timeout=2.0, max_retries=1)
        budget = request_budget(request, ceiling)
        assert budget.deadline == 0.5
        assert budget.task_timeout == 2.0
        assert budget.max_retries == 1

    def test_request_cannot_loosen_ceiling(self):
        request = parse_query_request(
            {"query": "q() :- P(x, y).", "deadline": 100.0,
             "task_timeout": 100.0}
        )
        ceiling = SolveBudget(deadline=1.0, task_timeout=0.25)
        budget = request_budget(request, ceiling)
        assert budget.deadline == 1.0
        assert budget.task_timeout == 0.25


class TestUpdateRequest:
    def test_round_trip(self):
        deltas = parse_update_request(
            {"updates": "+R('a', 'b').\n-R('c', 'd').\n\n+R('e', 'f')."}
        )
        assert len(deltas) == 2
        assert len(deltas[0].inserts) == 1
        assert len(deltas[0].retracts) == 1

    @pytest.mark.parametrize("payload", [
        {},                       # missing updates
        {"updates": ""},          # empty
        {"updates": 7},           # wrong type
        {"updates": "+R('a').", "typo": 1},  # unknown field
        {"updates": "nonsense"},  # unparsable
    ])
    def test_rejects_malformed(self, payload):
        with pytest.raises(ProtocolError):
            parse_update_request(payload)


class TestAnswerPayload:
    def test_rows_canonical_and_json_safe(self):
        request = parse_query_request({"query": "q(x, y) :- P(x, y)."})
        stats = QueryPhaseStats()
        payload = answer_payload(
            request, {("b", 2), ("a", 1)}, stats
        )
        assert payload["rows"] == [["'a'", "1"], ["'b'", "2"]]
        assert payload["degraded"] is False
        assert "unknown_candidates" not in payload
        json.dumps(payload)  # everything JSON-serializable

    def test_degraded_payload_surfaces_unknowns(self):
        request = parse_query_request({"query": "q(x) :- P(x, y)."})
        stats = QueryPhaseStats(
            degraded=True, timeouts=1,
            unknown_candidates={("z",), ("a",)},
        )
        payload = answer_payload(request, {("a",)}, stats)
        assert payload["degraded"] is True
        assert payload["unknown_candidates"] == [["'a'"], ["'z'"]]

    def test_serialization_is_deterministic(self):
        rows = {("b",), ("a", 1), ()}
        assert serialize_rows(rows) == serialize_rows(set(rows))
        assert serialize_rows(rows) == sorted(
            [[repr(v) for v in row] for row in rows]
        )
