"""In-process tests for :class:`QueryService` (no HTTP involved)."""

from __future__ import annotations

import threading

import pytest

from repro.parser import parse_mapping
from repro.relational import Fact, Instance
from repro.serve import (
    AdmissionRejected,
    QueryService,
    ServiceConfig,
    parse_query_request,
    parse_update_request,
)


def f(rel, *args):
    return Fact(rel, args)


@pytest.fixture
def mapping():
    return parse_mapping(
        """
        SOURCE R/2. TARGET P/2.
        R(x, y) -> P(x, y).
        P(x, y), P(x, z) -> y = z.
        """
    )


@pytest.fixture
def instance():
    return Instance(
        [f("R", "a", "b"), f("R", "a", "c"), f("R", "d", "e")]
    )


@pytest.fixture
def service(mapping, instance):
    built = QueryService(mapping, instance, ServiceConfig())
    yield built
    built.close()


def request(text: str, **extra):
    return parse_query_request({"query": text, **extra})


class TestQuery:
    def test_certain_answers(self, service):
        payload = service.query(request("q(x) :- P(x, y)."))
        assert payload["rows"] == [["'a'"], ["'d'"]]
        assert payload["degraded"] is False
        assert payload["stats"]["candidates"] >= 2

    def test_possible_answers(self, service):
        payload = service.query(
            request("q(x, y) :- P(x, y).", mode="possible")
        )
        assert ["'a'", "'b'"] in payload["rows"]
        assert ["'a'", "'c'"] in payload["rows"]
        assert ["'d'", "'e'"] in payload["rows"]

    def test_deadline_exceeded_degrades_not_raises(self, service):
        """An over-deadline request returns a degraded payload — the PR 4
        semantics on the wire — never an exception/500."""
        payload = service.query(
            request("q(x) :- P(x, y).", deadline=1e-9)
        )
        assert payload["degraded"] is True
        # The conflicted candidate is unknown; the clean one may or may
        # not have been decided before the cutoff.
        assert ["'a'"] in payload["unknown_candidates"]
        assert ["'a'"] not in payload["rows"]  # excluded from certain
        assert service.metrics.counter_values().get("serve_degraded_total") == 1

    def test_degraded_possible_includes_unknowns(self, service):
        payload = service.query(
            request("q(x) :- P(x, y).", mode="possible", deadline=1e-9)
        )
        assert payload["degraded"] is True
        for row in payload["unknown_candidates"]:
            assert row in payload["rows"]  # conservatively included

    def test_degraded_answers_never_cached(self, service):
        degraded = service.query(
            request("q(x) :- P(x, y).", deadline=1e-9)
        )
        assert degraded["degraded"]
        exact = service.query(request("q(x) :- P(x, y)."))
        assert exact["degraded"] is False
        assert exact["rows"] == [["'a'"], ["'d'"]]

    def test_metrics_flow(self, service):
        service.query(request("q(x) :- P(x, y)."))
        assert service.metrics.counter_values().get("serve_requests_total") == 1
        assert service.metrics.counter_values().get("queries_total") == 1
        text = service.metrics_text()
        assert "serve_requests_total 1" in text
        assert "serve_request_seconds" in text


class TestAdmission:
    def test_overflow_rejects_and_counts(self, mapping, instance):
        service = QueryService(
            mapping, instance,
            ServiceConfig(max_inflight=1, max_queue=0, queue_timeout=0.1),
        )
        try:
            service.admission._acquire()  # saturate the only slot
            with pytest.raises(AdmissionRejected):
                service.query(request("q(x) :- P(x, y)."))
            service.admission._release()
            assert service.metrics.counter_values().get("serve_rejected_total") == 1
            assert service.metrics.counter_values().get("serve_requests_total") == 1
            # Capacity restored: the next request answers normally.
            payload = service.query(request("q(x) :- P(x, y)."))
            assert payload["rows"] == [["'a'"], ["'d'"]]
        finally:
            service.close()


class TestUpdate:
    def test_update_then_query_sees_post_delta_answers(self, service):
        before = service.query(request("q(x, y) :- P(x, y)."))
        assert before["rows"] == [["'d'", "'e'"]]  # a is conflicted
        # Retract one side of the conflict: a becomes clean.
        result = service.update(
            parse_update_request({"updates": "-R('a', 'c')."})
        )
        assert result["applied"] == 1
        assert result["steps"][0]["retracted_source"] == 1
        after = service.query(request("q(x, y) :- P(x, y)."))
        assert after["rows"] == [["'a'", "'b'"], ["'d'", "'e'"]]
        assert service.metrics.counter_values().get("serve_updates_total") == 1

    def test_update_stream_steps_apply_in_order(self, service):
        service.update(parse_update_request(
            {"updates": "-R('a', 'c').\n\n+R('z', 'z')."}
        ))
        payload = service.query(request("q(x) :- P(x, y)."))
        assert payload["rows"] == [["'a'"], ["'d'"], ["'z'"]]

    def test_update_of_non_source_relation_raises_value_error(self, service):
        with pytest.raises(ValueError):
            service.update(
                parse_update_request({"updates": "+P('a', 'b')."})
            )

    def test_health_reflects_updates(self, service):
        source_before = service.health()["exchange"]["source_facts"]
        service.update(parse_update_request({"updates": "+R('q', 'q')."}))
        health = service.health()
        assert health["exchange"]["source_facts"] == source_before + 1
        assert health["status"] == "ok"
        assert health["admission"]["inflight"] == 0


class TestConcurrency:
    def test_queries_during_updates_see_full_states_only(self, service):
        """Readers overlapping the single writer observe pre- or
        post-delta answers — never a half-applied mix."""
        valid = (
            (("'a'",), ("'d'",)),            # with the a-conflict
            (("'a'",), ("'d'",), ("'z'",)),  # after insert
        )
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader() -> None:
            try:
                while not stop.is_set():
                    payload = service.query(request("q(x) :- P(x, y)."))
                    rows = tuple(tuple(row) for row in payload["rows"])
                    assert rows in valid, rows
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(10):
                service.update(parse_update_request(
                    {"updates": "+R('z', 'z')."}
                ))
                service.update(parse_update_request(
                    {"updates": "-R('z', 'z')."}
                ))
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        if errors:
            raise errors[0]
