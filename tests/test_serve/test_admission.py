"""Tests for the admission controller (bounded in-flight + wait queue)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.admission import AdmissionController, AdmissionRejected


def test_admits_up_to_max_inflight():
    controller = AdmissionController(max_inflight=2, max_queue=0)
    with controller.admit():
        with controller.admit():
            assert controller.snapshot()["inflight"] == 2
    assert controller.snapshot()["inflight"] == 0


def test_overflow_beyond_queue_rejects_immediately():
    controller = AdmissionController(
        max_inflight=1, max_queue=0, queue_timeout=5.0
    )
    controller._acquire()
    try:
        started = time.monotonic()
        with pytest.raises(AdmissionRejected) as excinfo:
            with controller.admit():
                pass
        # Queue full → immediate rejection, not a queue_timeout wait.
        assert time.monotonic() - started < 1.0
        assert excinfo.value.retry_after > 0
    finally:
        controller._release()


def test_queued_waiter_gets_slot_when_released():
    controller = AdmissionController(
        max_inflight=1, max_queue=2, queue_timeout=5.0
    )
    holder_entered = threading.Event()
    release_holder = threading.Event()
    waiter_done = threading.Event()

    def holder() -> None:
        with controller.admit():
            holder_entered.set()
            release_holder.wait(5.0)

    def waiter() -> None:
        holder_entered.wait(5.0)
        with controller.admit():
            waiter_done.set()

    threads = [
        threading.Thread(target=holder), threading.Thread(target=waiter),
    ]
    for thread in threads:
        thread.start()
    holder_entered.wait(5.0)
    # Give the waiter time to queue, then free the slot.
    for _ in range(100):
        if controller.snapshot()["waiting"]:
            break
        time.sleep(0.01)
    release_holder.set()
    assert waiter_done.wait(5.0)
    for thread in threads:
        thread.join()
    assert controller.snapshot() == {
        "inflight": 0, "waiting": 0, "max_inflight": 1, "max_queue": 2,
    }


def test_queued_waiter_times_out():
    controller = AdmissionController(
        max_inflight=1, max_queue=2, queue_timeout=0.1
    )
    controller._acquire()
    try:
        started = time.monotonic()
        with pytest.raises(AdmissionRejected):
            with controller.admit():
                pass
        elapsed = time.monotonic() - started
        assert 0.05 <= elapsed < 2.0
    finally:
        controller._release()
    # The slot is usable again afterwards.
    with controller.admit():
        pass


def test_rejection_leaves_no_residue():
    """A rejected request must not leak inflight or waiting counts."""
    controller = AdmissionController(
        max_inflight=1, max_queue=0, queue_timeout=0.05
    )
    controller._acquire()
    for _ in range(5):
        with pytest.raises(AdmissionRejected):
            with controller.admit():
                pass
    controller._release()
    assert controller.snapshot()["inflight"] == 0
    assert controller.snapshot()["waiting"] == 0


def test_validation():
    with pytest.raises(ValueError):
        AdmissionController(max_inflight=0)
    with pytest.raises(ValueError):
        AdmissionController(max_queue=-1)
    with pytest.raises(ValueError):
        AdmissionController(queue_timeout=0)


def test_concurrent_inflight_never_exceeds_bound():
    controller = AdmissionController(
        max_inflight=3, max_queue=16, queue_timeout=5.0
    )
    peak = [0]
    current = [0]
    guard = threading.Lock()
    rejected = [0]

    def work() -> None:
        for _ in range(20):
            try:
                with controller.admit():
                    with guard:
                        current[0] += 1
                        peak[0] = max(peak[0], current[0])
                    time.sleep(0.001)
                    with guard:
                        current[0] -= 1
            except AdmissionRejected:
                with guard:
                    rejected[0] += 1

    threads = [threading.Thread(target=work) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert peak[0] <= 3
    assert controller.snapshot()["inflight"] == 0
