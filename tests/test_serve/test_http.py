"""End-to-end HTTP tests: real sockets, real threads, real payloads.

Includes the PR's acceptance differential: on 10 fuzz seeds, answers
computed through the concurrent HTTP path must be **bit-identical** to
answers computed sequentially on a private engine — the serialized
(canonical) row lists are compared as exact JSON values.
"""

from __future__ import annotations

import http.client
import json
import threading
from contextlib import contextmanager

import pytest

from repro.fuzz import DEFAULT_CONFIG, random_scenario
from repro.fuzz.render import RenderError, render_query
from repro.parser import parse_mapping, parse_program
from repro.relational import Fact, Instance
from repro.serve import QueryService, ReproServer, ServiceConfig
from repro.serve.protocol import serialize_rows
from repro.xr.segmentary import SegmentaryEngine


def f(rel, *args):
    return Fact(rel, args)


@contextmanager
def serving(mapping, instance, config: ServiceConfig | None = None):
    """Boot a real server on an ephemeral port; yield (host, port)."""
    service = QueryService(mapping, instance, config or ServiceConfig())
    server = ReproServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.server_address[0], server.server_address[1], service
    finally:
        server.shutdown()
        thread.join(timeout=10.0)
        server.server_close()
        service.close()


def post(host, port, path, obj, connection=None):
    conn = connection or http.client.HTTPConnection(host, port, timeout=30)
    conn.request("POST", path, body=json.dumps(obj),
                 headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    body = json.loads(response.read())
    if connection is None:
        conn.close()
    return response.status, body, response


def get(host, port, path):
    conn = http.client.HTTPConnection(host, port, timeout=30)
    conn.request("GET", path)
    response = conn.getresponse()
    raw = response.read()
    conn.close()
    return response.status, raw


@pytest.fixture(scope="module")
def small_server():
    mapping = parse_mapping(
        """
        SOURCE R/2. TARGET P/2.
        R(x, y) -> P(x, y).
        P(x, y), P(x, z) -> y = z.
        """
    )
    instance = Instance(
        [f("R", "a", "b"), f("R", "a", "c"), f("R", "d", "e")]
    )
    with serving(mapping, instance) as (host, port, service):
        yield host, port, service


class TestRoutes:
    def test_healthz(self, small_server):
        host, port, _service = small_server
        status, raw = get(host, port, "/healthz")
        assert status == 200
        health = json.loads(raw)
        assert health["status"] == "ok"
        assert health["exchange"]["source_facts"] == 3

    def test_metrics_prometheus_text(self, small_server):
        host, port, _service = small_server
        status, raw = get(host, port, "/metrics")
        assert status == 200
        assert b"exchange_clusters_total" in raw

    def test_query_round_trip(self, small_server):
        host, port, _service = small_server
        status, body, _ = post(
            host, port, "/query", {"query": "q(x) :- P(x, y)."}
        )
        assert status == 200
        assert body["rows"] == [["'a'"], ["'d'"]]
        assert body["mode"] == "certain"
        assert body["degraded"] is False

    def test_deadline_degrades_over_http_not_500(self, small_server):
        host, port, _service = small_server
        status, body, _ = post(
            host, port, "/query",
            {"query": "q(x) :- P(x, y).", "deadline": 1e-9},
        )
        assert status == 200
        assert body["degraded"] is True
        assert ["'a'"] in body["unknown_candidates"]

    def test_keep_alive_reuses_connection(self, small_server):
        host, port, _service = small_server
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            for _ in range(3):
                status, body, _ = post(
                    host, port, "/query",
                    {"query": "q(x) :- P(x, y)."}, connection=conn,
                )
                assert status == 200
        finally:
            conn.close()

    def test_bad_json_is_400(self, small_server):
        host, port, _service = small_server
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("POST", "/query", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            assert b"invalid JSON" in response.read()
        finally:
            conn.close()

    def test_unparsable_query_is_400(self, small_server):
        host, port, _service = small_server
        status, body, _ = post(host, port, "/query", {"query": "oops("})
        assert status == 400
        assert "unparsable" in body["error"]

    def test_unknown_path_is_404(self, small_server):
        host, port, _service = small_server
        status, _, _ = post(host, port, "/nope", {})
        assert status == 404
        assert get(host, port, "/nope")[0] == 404

    def test_admission_overflow_is_429_with_retry_after(self):
        mapping = parse_mapping(
            "SOURCE R/1. TARGET P/1. R(x) -> P(x)."
        )
        config = ServiceConfig(
            max_inflight=1, max_queue=0, queue_timeout=0.2
        )
        with serving(mapping, Instance([f("R", "a")]), config) as (
            host, port, service,
        ):
            service.admission._acquire()  # saturate the only slot
            try:
                status, body, response = post(
                    host, port, "/query", {"query": "q(x) :- P(x)."}
                )
                assert status == 429
                assert response.getheader("Retry-After") is not None
                assert body["retry_after"] > 0
            finally:
                service.admission._release()
            status, body, _ = post(
                host, port, "/query", {"query": "q(x) :- P(x)."}
            )
            assert status == 200
            assert body["rows"] == [["'a'"]]

    def test_update_then_query_over_http(self, small_server):
        """The single-writer seam end-to-end: a query issued after an
        update acknowledges must see the post-delta answers."""
        host, port, _service = small_server
        status, body, _ = post(
            host, port, "/update", {"updates": "+R('w', 'w')."}
        )
        assert status == 200
        assert body["applied"] == 1
        status, body, _ = post(
            host, port, "/query", {"query": "q(x) :- P(x, y)."}
        )
        assert status == 200
        assert ["'w'"] in body["rows"]
        # Clean up for the other module-scoped tests.
        post(host, port, "/update", {"updates": "-R('w', 'w')."})

    def test_update_of_target_relation_is_400(self, small_server):
        host, port, _service = small_server
        status, body, _ = post(
            host, port, "/update", {"updates": "+P('a', 'b')."}
        )
        assert status == 400


DIFFERENTIAL_SEEDS = 10


def _renderable_scenarios():
    """The first ``DIFFERENTIAL_SEEDS`` fuzz scenarios whose query has a
    text rendering (the wire protocol ships query *text*)."""
    scenarios = []
    seed = 0
    while len(scenarios) < DIFFERENTIAL_SEEDS and seed < 200:
        scenario = random_scenario(seed, DEFAULT_CONFIG)
        try:
            text = render_query(scenario.query)
        except RenderError:
            seed += 1
            continue
        scenarios.append((seed, scenario, text))
        seed += 1
    assert len(scenarios) == DIFFERENTIAL_SEEDS
    return scenarios


class TestConcurrentDifferential:
    def test_concurrent_answers_bit_identical_to_sequential(self):
        """Acceptance: on 10 fuzz seeds, every concurrently-served
        answer equals the sequentially-computed one, bit for bit."""
        for seed, scenario, query_text in _renderable_scenarios():
            # Sequential reference on a private engine.
            with SegmentaryEngine(
                scenario.mapping, scenario.instance.copy()
            ) as engine:
                query = parse_program(query_text)
                expected = {
                    mode: serialize_rows(
                        engine.answer_with_stats(query, mode=mode)[0]
                    )
                    for mode in ("certain", "possible")
                }
            with serving(
                scenario.mapping, scenario.instance.copy()
            ) as (host, port, _service):
                results: list = []
                errors: list[BaseException] = []
                barrier = threading.Barrier(6)

                def client(index: int) -> None:
                    try:
                        mode = ("certain", "possible")[index % 2]
                        barrier.wait()
                        for _ in range(3):
                            status, body, _ = post(
                                host, port, "/query",
                                {"query": query_text, "mode": mode},
                            )
                            assert status == 200, body
                            assert body["degraded"] is False
                            results.append((mode, body["rows"]))
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)

                threads = [
                    threading.Thread(target=client, args=(i,))
                    for i in range(6)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                if errors:
                    raise errors[0]
                assert len(results) == 18
                for mode, rows in results:
                    assert rows == expected[mode], (
                        f"seed {seed} diverged under concurrency ({mode})"
                    )
