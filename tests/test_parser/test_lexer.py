"""Tests for the tokenizer."""

import pytest

from repro.parser.lexer import LexError, Token, tokenize


def kinds(text):
    return [token.kind for token in tokenize(text)]


class TestTokenize:
    def test_atom(self):
        assert kinds("R(x, y)") == [
            "IDENT", "LPAREN", "IDENT", "COMMA", "IDENT", "RPAREN", "EOF",
        ]

    def test_arrow_and_implied_by(self):
        assert kinds("-> :-") == ["ARROW", "IMPLIEDBY", "EOF"]

    def test_equality_operators(self):
        assert kinds("= !=") == ["EQ", "NEQ", "EOF"]

    def test_numbers(self):
        tokens = list(tokenize("42 -7 3.5"))
        assert [t.kind for t in tokens[:-1]] == ["NUMBER"] * 3
        assert [t.text for t in tokens[:-1]] == ["42", "-7", "3.5"]

    def test_strings_single_and_double(self):
        tokens = list(tokenize("'abc' \"de f\""))
        assert [t.kind for t in tokens[:-1]] == ["STRING", "STRING"]

    def test_comments_skipped(self):
        assert kinds("R(x) % trailing\n# full line\nS(y)") == [
            "IDENT", "LPAREN", "IDENT", "RPAREN",
            "IDENT", "LPAREN", "IDENT", "RPAREN", "EOF",
        ]

    def test_line_tracking(self):
        tokens = list(tokenize("a\nb"))
        assert tokens[0].line == 1
        assert tokens[1].line == 2

    def test_unknown_character(self):
        with pytest.raises(LexError, match="line 1"):
            list(tokenize("R(x) @"))

    def test_empty_input_yields_eof(self):
        assert kinds("") == ["EOF"]
