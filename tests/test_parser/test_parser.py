"""Tests for the dependency/query/mapping parser."""

import pytest

from repro.dependencies import EGD, TGD
from repro.parser import (
    ParseError,
    parse_dependency,
    parse_mapping,
    parse_program,
    parse_query,
)
from repro.relational.terms import Const, Variable


class TestParseDependency:
    def test_tgd(self):
        dep = parse_dependency("R(x, y), S(y) -> T(x, z).")
        assert isinstance(dep, TGD)
        assert dep.existential == {Variable("z")}
        assert len(dep.body) == 2

    def test_egd(self):
        dep = parse_dependency("T(x, y), T(x, z) -> y = z.")
        assert isinstance(dep, EGD)
        assert dep.lhs == Variable("y")
        assert dep.rhs == Variable("z")

    def test_egd_with_constant_rhs(self):
        dep = parse_dependency("T(x, y) -> y = 'fixed'.")
        assert isinstance(dep, EGD)
        assert dep.rhs == Const("fixed")

    def test_constants_in_atoms(self):
        dep = parse_dependency("R('lit', 42, x) -> T(x).")
        assert isinstance(dep, TGD)
        assert dep.body[0].terms[0] == Const("lit")
        assert dep.body[0].terms[1] == Const(42)

    def test_multi_head(self):
        dep = parse_dependency("R(x) -> T(x), U(x).")
        assert isinstance(dep, TGD)
        assert len(dep.head) == 2

    def test_missing_period_rejected(self):
        with pytest.raises(ParseError):
            parse_dependency("R(x) -> T(x)")

    def test_label_passthrough(self):
        dep = parse_dependency("R(x) -> T(x).", label="mylabel")
        assert dep.label == "mylabel"


class TestParseQuery:
    def test_basic(self):
        query = parse_query("q(x) :- T(x, y).")
        assert query.name == "q"
        assert query.head_vars == (Variable("x"),)

    def test_boolean(self):
        query = parse_query("q() :- T(x, y).")
        assert query.is_boolean()

    def test_anonymous_variables_are_fresh(self):
        query = parse_query("q(x) :- T(x, _), T(x, _).")
        anon = [
            t
            for atom in query.body
            for t in atom.terms
            if isinstance(t, Variable) and t.name.startswith("_anon")
        ]
        assert len(anon) == 2
        assert anon[0] != anon[1]

    def test_constant_head_rejected(self):
        with pytest.raises(ParseError):
            parse_query("q('k') :- T(x, y).")

    def test_trailing_period_optional(self):
        assert parse_query("q(x) :- T(x, y)") is not None


class TestParseProgram:
    def test_ucq(self):
        ucq = parse_program("q(x) :- T(x, y). q(x) :- U(x).")
        assert len(ucq.disjuncts) == 2

    def test_mismatched_names_rejected(self):
        with pytest.raises(ParseError):
            parse_program("q(x) :- T(x, y). p(x) :- U(x).")


class TestParseMapping:
    def test_full_mapping(self):
        mapping = parse_mapping(
            """
            % a comment
            SOURCE R/2, S/1.
            TARGET T/2, U/1.
            R(x, y) -> T(x, y).
            S(x) -> U(x).
            T(x, y) -> U(x).
            T(x, y), T(x, z) -> y = z.
            """
        )
        assert len(mapping.st_tgds) == 2
        assert len(mapping.target_tgds) == 1
        assert len(mapping.target_egds) == 1
        assert mapping.source.names() == {"R", "S"}

    def test_missing_declarations_rejected(self):
        with pytest.raises(ParseError, match="SOURCE/TARGET"):
            parse_mapping("R(x) -> T(x).")
        with pytest.raises(ParseError, match="SOURCE and TARGET"):
            parse_mapping("% nothing but a comment")

    def test_mixed_body_rejected(self):
        with pytest.raises(ParseError, match="neither"):
            parse_mapping(
                """
                SOURCE R/1. TARGET T/1.
                R(x), T(x) -> T(x).
                """
            )

    def test_roundtrip_through_engines(self):
        # The parsed mapping is directly usable.
        from repro.relational import Fact, Instance
        from repro.xr import MonolithicEngine

        mapping = parse_mapping(
            """
            SOURCE R/2. TARGET T/2.
            R(x, y) -> T(x, y).
            T(x, y), T(x, z) -> y = z.
            """
        )
        engine = MonolithicEngine(
            mapping, Instance([Fact("R", ("a", "b")), Fact("R", ("a", "c"))])
        )
        answers = engine.answer(parse_query("q(x) :- T(x, y)."))
        assert answers == {("a",)}
