"""Tests for the command-line interface and instance parsing."""

import pytest

from repro.cli import main
from repro.parser import ParseError, parse_instance
from repro.relational import Fact

MAPPING = """
SOURCE Employee/2. TARGET Office/2.
Employee(name, office) -> Office(name, office).
Office(name, o1), Office(name, o2) -> o1 = o2.
"""

DATA = """
Employee('ada', 'E14').
Employee('ada', 'W02').
Employee('bob', 'E15').
"""


@pytest.fixture
def files(tmp_path):
    mapping_path = tmp_path / "mapping.txt"
    mapping_path.write_text(MAPPING)
    data_path = tmp_path / "data.txt"
    data_path.write_text(DATA)
    return str(mapping_path), str(data_path)


class TestParseInstance:
    def test_basic(self):
        instance = parse_instance("R('a', 1). S('b', 'c').")
        assert set(instance) == {Fact("R", ("a", 1)), Fact("S", ("b", "c"))}

    def test_comments_and_whitespace(self):
        instance = parse_instance("% header\nR('a').\n# another\n")
        assert len(instance) == 1

    def test_variables_rejected(self):
        with pytest.raises(ParseError, match="not a constant"):
            parse_instance("R(x).")

    def test_empty(self):
        assert len(parse_instance("")) == 0


class TestCLI:
    def test_answer_certain(self, files, capsys):
        mapping_path, data_path = files
        code = main(
            ["answer", "-m", mapping_path, "-d", data_path,
             "-q", "q(n) :- Office(n, o)."]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "q('ada')." in output and "q('bob')." in output

    def test_answer_possible(self, files, capsys):
        mapping_path, data_path = files
        main(
            ["answer", "-m", mapping_path, "-d", data_path, "--possible",
             "-q", "q(n, o) :- Office(n, o)."]
        )
        output = capsys.readouterr().out
        assert "q('ada', 'E14')." in output
        assert "q('ada', 'W02')." in output

    def test_answer_monolithic(self, files, capsys):
        mapping_path, data_path = files
        main(
            ["answer", "-m", mapping_path, "-d", data_path,
             "--method", "monolithic", "-q", "q(n, o) :- Office(n, o)."]
        )
        output = capsys.readouterr().out
        assert output.count("q(") == 1  # only bob's row is certain
        assert "q('bob', 'E15')." in output

    def test_check_inconsistent(self, files, capsys):
        mapping_path, data_path = files
        code = main(["check", "-m", mapping_path, "-d", data_path])
        output = capsys.readouterr().out
        assert code == 1
        assert "INCONSISTENT" in output
        assert "egd violations:      1" in output

    def test_check_consistent(self, tmp_path, capsys):
        mapping_path = tmp_path / "mapping.txt"
        mapping_path.write_text(MAPPING)
        data_path = tmp_path / "clean.txt"
        data_path.write_text("Employee('bob', 'E15').")
        code = main(["check", "-m", str(mapping_path), "-d", str(data_path)])
        assert code == 0
        assert "status: consistent" in capsys.readouterr().out

    def test_repairs(self, files, capsys):
        mapping_path, data_path = files
        code = main(["repairs", "-m", mapping_path, "-d", data_path])
        output = capsys.readouterr().out
        assert code == 0
        assert output.count("% repair") == 2
        assert "1 source fact(s) deleted" in output

    def test_repairs_limit(self, files, capsys):
        mapping_path, data_path = files
        main(["repairs", "-m", mapping_path, "-d", data_path, "--limit", "1"])
        assert capsys.readouterr().out.count("% repair") == 1
