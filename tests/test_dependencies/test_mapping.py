"""Tests for schema mappings."""

import pytest

from repro.dependencies import SchemaMapping
from repro.parser import parse_dependency, parse_mapping
from repro.relational.schema import RelationSymbol, Schema


def schemas():
    source = Schema([RelationSymbol("R", 2)])
    target = Schema([RelationSymbol("T", 2), RelationSymbol("U", 1)])
    return source, target


class TestValidation:
    def test_overlapping_schemas_rejected(self):
        shared = Schema([RelationSymbol("R", 2)])
        with pytest.raises(ValueError, match="share"):
            SchemaMapping(shared, shared, [])

    def test_st_tgd_must_go_source_to_target(self):
        source, target = schemas()
        bad = parse_dependency("T(x, y) -> T(x, y).")
        with pytest.raises(ValueError):
            SchemaMapping(source, target, [bad])

    def test_target_tgd_must_stay_in_target(self):
        source, target = schemas()
        bad = parse_dependency("R(x, y) -> T(x, y).")
        with pytest.raises(ValueError):
            SchemaMapping(source, target, [], [bad])

    def test_egd_over_source_rejected(self):
        source, target = schemas()
        bad = parse_dependency("R(x, y), R(x, z) -> y = z.")
        with pytest.raises(ValueError):
            SchemaMapping(source, target, [], [], [bad])

    def test_arity_mismatch_rejected(self):
        source, target = schemas()
        bad = parse_dependency("R(x, y, z) -> T(x, y).")
        with pytest.raises(ValueError, match="arity"):
            SchemaMapping(source, target, [bad])


class TestClassification:
    def test_gav_gav_egd(self):
        mapping = parse_mapping(
            """
            SOURCE R/2. TARGET T/2.
            R(x, y) -> T(x, y).
            T(x, y), T(x, z) -> y = z.
            """
        )
        assert mapping.is_gav_gav_egd()
        assert mapping.has_target_constraints()

    def test_existential_breaks_gav(self):
        mapping = parse_mapping(
            """
            SOURCE R/1. TARGET T/2.
            R(x) -> T(x, y).
            """
        )
        assert not mapping.is_gav_gav_egd()

    def test_weak_acyclicity_delegates(self):
        mapping = parse_mapping(
            """
            SOURCE R/2. TARGET T/2.
            R(x, y) -> T(x, y).
            T(x, y) -> T(y, z).
            """
        )
        assert not mapping.is_weakly_acyclic()


class TestUtilities:
    def test_drop_egds(self):
        mapping = parse_mapping(
            """
            SOURCE R/2. TARGET T/2.
            R(x, y) -> T(x, y).
            T(x, y), T(x, z) -> y = z.
            """
        )
        assert mapping.drop_egds().target_egds == ()
        assert mapping.target_egds  # original untouched

    def test_with_extra_target_tgds_extends_schema(self):
        mapping = parse_mapping(
            """
            SOURCE R/2. TARGET T/2.
            R(x, y) -> T(x, y).
            """
        )
        extra = parse_dependency("T(x, y) -> Q(x).")
        extended = mapping.with_extra_target_tgds([extra])
        assert "Q" in extended.target
        assert len(extended.target_tgds) == 1

    def test_stats(self):
        mapping = parse_mapping(
            """
            SOURCE R/2. TARGET T/2.
            R(x, y) -> T(x, y).
            T(x, y), T(x, z) -> y = z.
            """
        )
        stats = mapping.stats()
        assert stats["st_tgds"] == 1
        assert stats["target_egds"] == 1
