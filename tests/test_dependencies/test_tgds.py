"""Tests for tuple-generating dependencies."""

import pytest

from repro.dependencies.tgds import TGD, SkolemTerm
from repro.relational.queries import Atom
from repro.relational.terms import Const, SkolemValue, Variable

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestTGDConstruction:
    def test_frontier_and_existential(self):
        tgd = TGD([Atom("R", (X, Y))], [Atom("T", (X, Z))])
        assert tgd.frontier == {X}
        assert tgd.existential == {Z}

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            TGD([], [Atom("T", (Const("a"),))])

    def test_empty_head_rejected(self):
        with pytest.raises(ValueError):
            TGD([Atom("R", (X,))], [])

    def test_labels_are_unique_by_default(self):
        first = TGD([Atom("R", (X,))], [Atom("T", (X,))])
        second = TGD([Atom("R", (X,))], [Atom("T", (X,))])
        assert first.label != second.label
        assert first == second  # equality ignores labels

    def test_skolem_args_must_be_body_variables(self):
        term = SkolemTerm("f", [Z])
        with pytest.raises(ValueError, match="not a body variable"):
            TGD([Atom("R", (X,))], [Atom("T", (X, term))])


class TestClassification:
    def test_gav(self):
        gav = TGD([Atom("R", (X, Y))], [Atom("T", (X,))])
        assert gav.is_gav() and gav.is_full()

    def test_existential_is_not_gav(self):
        tgd = TGD([Atom("R", (X,))], [Atom("T", (X, Z))])
        assert not tgd.is_gav() and not tgd.is_full()

    def test_multi_head_is_not_gav(self):
        tgd = TGD([Atom("R", (X,))], [Atom("T", (X,)), Atom("U", (X,))])
        assert not tgd.is_gav()

    def test_lav(self):
        lav = TGD([Atom("R", (X, Y))], [Atom("T", (X,)), Atom("U", (Y,))])
        assert lav.is_lav()
        not_lav = TGD([Atom("R", (X,)), Atom("S", (X,))], [Atom("T", (X,))])
        assert not not_lav.is_lav()

    def test_skolem_head_counts_as_gav(self):
        term = SkolemTerm("f", [X])
        tgd = TGD([Atom("R", (X,))], [Atom("T", (X, term))])
        assert tgd.is_gav()
        assert tgd.has_skolem_terms()


class TestSkolemTerm:
    def test_ground(self):
        term = SkolemTerm("f", [X, Const("k")])
        value = term.ground({X: "v"})
        assert value == SkolemValue("f", ("v", "k"))

    def test_relations_helpers(self):
        tgd = TGD(
            [Atom("R", (X,)), Atom("S", (X,))],
            [Atom("T", (X,)), Atom("U", (X,))],
        )
        assert tgd.body_relations() == {"R", "S"}
        assert tgd.head_relations() == {"T", "U"}
        assert tgd.variables() == {X}
