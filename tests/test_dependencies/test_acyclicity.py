"""Tests for the weak acyclicity test (Fagin et al.)."""

import pytest

from repro.dependencies.acyclicity import (
    existential_rank,
    is_weakly_acyclic,
    position_graph,
)
from repro.dependencies.tgds import TGD
from repro.parser import parse_dependency


def tgd(text):
    dep = parse_dependency(text)
    assert isinstance(dep, TGD)
    return dep


class TestWeakAcyclicity:
    def test_full_tgds_are_weakly_acyclic(self):
        deps = [tgd("T(x, y) -> U(y, x)."), tgd("U(x, y) -> T(x, y).")]
        assert is_weakly_acyclic(deps)

    def test_classic_non_weakly_acyclic_example(self):
        # E(x, y) -> ∃z E(y, z): special edge inside a cycle.
        assert not is_weakly_acyclic([tgd("E(x, y) -> E(y, z).")])

    def test_special_edge_without_cycle_is_fine(self):
        assert is_weakly_acyclic([tgd("E(x, y) -> F(y, z).")])

    def test_cycle_through_two_rules(self):
        deps = [tgd("E(x, y) -> F(y, z)."), tgd("F(x, y) -> E(x, y).")]
        assert not is_weakly_acyclic(deps)

    def test_empty_set(self):
        assert is_weakly_acyclic([])

    def test_regular_cycle_is_allowed(self):
        # Copying back and forth without existentials is fine.
        deps = [tgd("E(x, y) -> F(x, y)."), tgd("F(x, y) -> E(y, x).")]
        assert is_weakly_acyclic(deps)


class TestPositionGraph:
    def test_edges_kinds(self):
        graph = position_graph([tgd("E(x, y) -> F(y, z).")])
        kinds = {
            (src, dst): data["kind"]
            for src, dst, data in graph.edges(data=True)
        }
        assert kinds[("E", 1), ("F", 0)] == "regular"
        # Special edges from every frontier-variable position.
        assert kinds[("E", 1), ("F", 1)] == "special"


class TestExistentialRank:
    def test_rank_zero_without_existentials(self):
        ranks = existential_rank([tgd("E(x, y) -> F(y, x).")])
        assert all(rank == 0 for rank in ranks.values())

    def test_rank_counts_special_depth(self):
        deps = [tgd("E(x, y) -> F(y, z)."), tgd("F(x, y) -> G(y, w).")]
        ranks = existential_rank(deps)
        assert ranks[("F", 1)] == 1
        assert ranks[("G", 1)] == 2

    def test_rank_undefined_when_cyclic(self):
        with pytest.raises(ValueError):
            existential_rank([tgd("E(x, y) -> E(y, z).")])
