"""Tests for equality-generating dependencies."""

import pytest

from repro.dependencies.egds import EGD
from repro.relational.queries import Atom
from repro.relational.terms import Const, Variable

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestEGD:
    def test_basic_key_constraint(self):
        egd = EGD([Atom("T", (X, Y)), Atom("T", (X, Z))], Y, Z)
        assert egd.body_relations() == {"T"}
        assert egd.variables() == {X, Y, Z}

    def test_rhs_may_be_constant(self):
        egd = EGD([Atom("T", (X, Y))], Y, Const("fixed"))
        assert egd.rhs == Const("fixed")

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            EGD([], X, Y)

    def test_lhs_must_be_variable(self):
        with pytest.raises(ValueError):
            EGD([Atom("T", (X,))], Const("a"), X)  # type: ignore[arg-type]

    def test_lhs_must_occur_in_body(self):
        with pytest.raises(ValueError):
            EGD([Atom("T", (X,))], Y, X)

    def test_rhs_variable_must_occur_in_body(self):
        with pytest.raises(ValueError):
            EGD([Atom("T", (X,))], X, Y)

    def test_constants_only_flag_in_equality(self):
        plain = EGD([Atom("T", (X, Y))], X, Y)
        strict = EGD([Atom("T", (X, Y))], X, Y, constants_only=True)
        assert plain != strict

    def test_equality_ignores_labels(self):
        first = EGD([Atom("T", (X, Y))], X, Y, label="a")
        second = EGD([Atom("T", (X, Y))], X, Y, label="b")
        assert first == second
