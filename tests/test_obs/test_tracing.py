"""Unit tests of the span/tracer core: nesting, clocks, serialization."""

import threading

import pytest

from repro.obs.tracing import (
    NOOP_TRACER,
    REMOTE_CLOCK,
    Span,
    Tracer,
    validate_span_tree,
)


class TestNesting:
    def test_children_nest_under_open_parent(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        roots = tracer.finished
        assert [span.name for span in roots] == ["parent"]
        parent = roots[0]
        assert [child.name for child in parent.children] == ["first", "second"]
        assert validate_span_tree(parent) == []

    def test_timestamps_monotonic_and_contained(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.finished[0]
        inner = outer.children[0]
        assert outer.start <= inner.start <= inner.end <= outer.end
        assert inner.duration <= outer.duration

    def test_sibling_durations_sum_to_at_most_parent(self):
        tracer = Tracer()
        with tracer.span("parent"):
            for _ in range(5):
                with tracer.span("child"):
                    pass
        parent = tracer.finished[0]
        total = sum(child.duration for child in parent.children)
        assert total <= parent.duration + 1e-9
        assert validate_span_tree(parent) == []

    def test_out_of_order_close_raises(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="closed out of order"):
            outer.__exit__(None, None, None)

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("a") as a:
            assert tracer.current() is a
            with tracer.span("b") as b:
                assert tracer.current() is b
            assert tracer.current() is a
        assert tracer.current() is None

    def test_reset_drops_finished_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert tracer.finished
        tracer.reset()
        assert tracer.finished == []


class TestThreads:
    def test_threads_nest_independently(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(name):
            with tracer.span(name):
                barrier.wait()  # both spans provably open at once
                with tracer.span(f"{name}.child"):
                    pass

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        roots = tracer.finished
        assert sorted(span.name for span in roots) == ["t0", "t1"]
        for root in roots:
            assert [c.name for c in root.children] == [f"{root.name}.child"]
            assert validate_span_tree(root) == []


class TestTagsCountersSerialization:
    def test_tags_and_counters(self):
        tracer = Tracer()
        with tracer.span("solve", mode="certain") as span:
            span.tag("status", "ok")
            span.count("conflicts", 3)
            span.count("conflicts", 2)
        done = tracer.finished[0]
        assert done.tags == {"mode": "certain", "status": "ok"}
        assert done.counters == {"conflicts": 5}

    def test_dict_roundtrip(self):
        tracer = Tracer()
        with tracer.span("outer", kind="test") as outer:
            outer.count("work", 7)
            with tracer.span("inner"):
                pass
        original = tracer.finished[0]
        assert Span.from_dict(original.to_dict()) == original

    def test_attach_marks_remote_and_skips_clock_checks(self):
        worker = Tracer()
        with worker.span("solve.task") as span:
            span.count("decisions", 4)
        payload = worker.finished[0].to_dict()

        parent = Tracer()
        with parent.span("query.solve"):
            attached = parent.attach(payload)
        assert attached.is_remote
        assert attached.tags["clock"] == REMOTE_CLOCK
        root = parent.finished[0]
        assert root.children == [attached]
        # The remote subtree's foreign epoch must not fail validation even
        # though its timestamps lie outside the parent interval.
        assert validate_span_tree(root) == []

    def test_attach_without_open_span_becomes_root(self):
        tracer = Tracer()
        tracer.attach({"name": "orphan", "start": 0.0, "end": 1.0})
        assert [span.name for span in tracer.finished] == ["orphan"]


class TestValidation:
    def test_end_before_start_rejected(self):
        span = Span("bad", start=2.0, end=1.0)
        assert any("before start" in p for p in validate_span_tree(span))

    def test_negative_counter_rejected(self):
        span = Span("bad", start=0.0, end=1.0, counters={"work": -1})
        assert any("invalid" in p for p in validate_span_tree(span))

    def test_child_outside_parent_rejected(self):
        child = Span("child", start=0.0, end=5.0)
        parent = Span("parent", start=1.0, end=2.0, children=[child])
        problems = validate_span_tree(parent)
        assert any("outside parent" in p for p in problems)

    def test_overlapping_siblings_rejected(self):
        first = Span("a", start=0.0, end=2.0)
        second = Span("b", start=1.0, end=3.0)
        parent = Span("parent", start=0.0, end=10.0, children=[first, second])
        assert any("must not overlap" in p for p in validate_span_tree(parent))


class TestNoop:
    def test_noop_records_nothing(self):
        assert not NOOP_TRACER.enabled
        with NOOP_TRACER.span("anything", tag="x") as span:
            span.tag("k", "v")
            span.count("n")
        assert NOOP_TRACER.finished == []
        assert NOOP_TRACER.current() is None
        assert NOOP_TRACER.attach({"name": "x"}) is None
