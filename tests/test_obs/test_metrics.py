"""Unit tests of the metrics registry: instruments, determinism, merge."""

import threading

import pytest

from repro.obs.metrics import DEFAULT_TIME_BUCKETS, Metrics, NOOP_METRICS


class TestCounters:
    def test_inc_accumulates(self):
        metrics = Metrics()
        metrics.counter("work_total").inc()
        metrics.counter("work_total").inc(4)
        assert metrics.counter_values() == {"work_total": 5}

    def test_inc_convenience(self):
        metrics = Metrics()
        metrics.inc("events_total", 3)
        assert metrics.counter("events_total").value == 3

    def test_negative_increment_rejected(self):
        metrics = Metrics()
        with pytest.raises(ValueError, match="negative"):
            metrics.counter("work_total").inc(-1)

    def test_same_name_same_instrument(self):
        metrics = Metrics()
        assert metrics.counter("a") is metrics.counter("a")

    def test_concurrent_increments_lose_nothing(self):
        metrics = Metrics()

        def work():
            for _ in range(1000):
                metrics.inc("hits_total")

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.counter("hits_total").value == 8000


class TestGauges:
    def test_set_overwrites(self):
        metrics = Metrics()
        gauge = metrics.gauge("depth")
        gauge.set(3)
        gauge.set(2)
        assert gauge.value == 2.0

    def test_max_keeps_peak(self):
        metrics = Metrics()
        gauge = metrics.gauge("peak")
        gauge.max(5)
        gauge.max(3)
        assert gauge.value == 5.0


class TestHistograms:
    def test_boundaries_are_inclusive_upper_edges(self):
        metrics = Metrics()
        histogram = metrics.histogram("seconds", (0.1, 1.0))
        histogram.observe(0.1)    # == first edge: first bucket
        histogram.observe(0.5)    # second bucket
        histogram.observe(100.0)  # +Inf bucket
        assert histogram.counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(100.6)

    def test_bad_boundaries_rejected(self):
        metrics = Metrics()
        with pytest.raises(ValueError, match="strictly increasing"):
            metrics.histogram("bad", (1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            metrics.histogram("empty", ())

    def test_boundary_mismatch_rejected(self):
        metrics = Metrics()
        metrics.histogram("seconds", (0.1, 1.0))
        with pytest.raises(ValueError, match="different boundaries"):
            metrics.histogram("seconds", (0.2, 1.0))

    def test_default_buckets(self):
        metrics = Metrics()
        histogram = metrics.histogram("solve_seconds")
        assert histogram.boundaries == DEFAULT_TIME_BUCKETS


class TestRegistry:
    def test_kind_uniqueness_enforced(self):
        metrics = Metrics()
        metrics.counter("thing")
        with pytest.raises(ValueError, match="another kind"):
            metrics.gauge("thing")
        with pytest.raises(ValueError, match="another kind"):
            metrics.histogram("thing", (1.0,))

    def test_as_dict_is_sorted_and_plain(self):
        metrics = Metrics()
        metrics.inc("z_total")
        metrics.inc("a_total", 2)
        metrics.gauge("depth").set(1.5)
        metrics.histogram("seconds", (1.0,)).observe(0.5)
        payload = metrics.as_dict()
        assert list(payload["counters"]) == ["a_total", "z_total"]
        assert payload["counters"] == {"a_total": 2, "z_total": 1}
        assert payload["gauges"] == {"depth": 1.5}
        assert payload["histograms"]["seconds"] == {
            "boundaries": [1.0],
            "counts": [1, 0],
            "sum": 0.5,
            "count": 1,
        }

    def test_merge_adds_counters_and_cells_keeps_gauge_peak(self):
        left, right = Metrics(), Metrics()
        left.inc("work_total", 2)
        right.inc("work_total", 3)
        right.inc("only_right_total")
        left.gauge("peak").set(4)
        right.gauge("peak").set(9)
        left.histogram("seconds", (1.0,)).observe(0.5)
        right.histogram("seconds", (1.0,)).observe(2.0)
        left.merge(right)
        payload = left.as_dict()
        assert payload["counters"] == {"only_right_total": 1, "work_total": 5}
        assert payload["gauges"]["peak"] == 9.0
        assert payload["histograms"]["seconds"]["counts"] == [1, 1]
        assert payload["histograms"]["seconds"]["count"] == 2


class TestNoop:
    def test_noop_records_nothing(self):
        assert not NOOP_METRICS.enabled
        NOOP_METRICS.inc("anything", 5)
        NOOP_METRICS.counter("c").inc()
        NOOP_METRICS.gauge("g").max(3)
        NOOP_METRICS.histogram("h").observe(1.0)
        assert NOOP_METRICS.as_dict() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }
        assert NOOP_METRICS.counter_values() == {}
