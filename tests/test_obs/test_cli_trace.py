"""CLI observability: ``repro query --trace out.json --metrics out.prom``."""

import json

import pytest

from repro.cli import main
from repro.obs.export import validate_trace_document

MAPPING = """
SOURCE Employee/2. TARGET Office/2.
Employee(name, office) -> Office(name, office).
Office(name, o1), Office(name, o2) -> o1 = o2.
"""

DATA = """
Employee('ada', 'E14').
Employee('ada', 'W02').
Employee('bob', 'E15').
"""

QUERY = "q(n) :- Office(n, o)."


@pytest.fixture
def files(tmp_path):
    mapping_path = tmp_path / "mapping.txt"
    mapping_path.write_text(MAPPING)
    data_path = tmp_path / "data.txt"
    data_path.write_text(DATA)
    return str(mapping_path), str(data_path)


def test_query_alias_answers_like_answer(files, capsys):
    mapping_path, data_path = files
    assert main(["query", "-m", mapping_path, "-d", data_path, "-q", QUERY]) == 0
    output = capsys.readouterr().out
    assert "q('bob')." in output


def test_trace_and_metrics_artifacts(files, tmp_path, capsys):
    mapping_path, data_path = files
    trace_path = tmp_path / "out.json"
    metrics_path = tmp_path / "out.prom"
    code = main(
        ["query", "-m", mapping_path, "-d", data_path, "-q", QUERY,
         "--trace", str(trace_path), "--metrics", str(metrics_path)]
    )
    output = capsys.readouterr().out
    assert code == 0
    assert "q('bob')." in output
    assert str(trace_path) in output and str(metrics_path) in output

    document = json.loads(trace_path.read_text())
    assert validate_trace_document(document) == []
    names = [span["name"] for span in document["spans"]]
    assert names == ["exchange", "query"]
    assert document["metrics"]["counters"]["queries_total"] == 1

    text = metrics_path.read_text()
    assert "# TYPE queries_total counter" in text
    assert "queries_total 1" in text
    assert "exchange_violations_total 1" in text


def test_trace_does_not_change_answers(files, tmp_path, capsys):
    mapping_path, data_path = files
    base = ["query", "-m", mapping_path, "-d", data_path, "-q", QUERY]
    assert main(base) == 0
    plain = [
        line for line in capsys.readouterr().out.splitlines()
        if not line.startswith("%")
    ]
    assert main(base + ["--trace", str(tmp_path / "t.json")]) == 0
    traced = [
        line for line in capsys.readouterr().out.splitlines()
        if not line.startswith("%")
    ]
    assert traced == plain


def test_monolithic_trace(files, tmp_path):
    mapping_path, data_path = files
    trace_path = tmp_path / "mono.json"
    code = main(
        ["answer", "-m", mapping_path, "-d", data_path, "-q", QUERY,
         "--method", "monolithic", "--trace", str(trace_path)]
    )
    assert code == 0
    document = json.loads(trace_path.read_text())
    assert validate_trace_document(document) == []
    assert [span["name"] for span in document["spans"]] == ["monolithic"]
