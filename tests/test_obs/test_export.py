"""Exporter tests: trace-document schema, JSON round-trips, Prometheus text."""

import json

from repro.obs.export import (
    TRACE_KIND,
    TRACE_SCHEMA_VERSION,
    spans_from_document,
    to_prometheus,
    trace_document,
    validate_trace_document,
    write_prometheus,
    write_trace_json,
)
from repro.obs.recorder import NOOP_RECORDER, Recorder


def _sample_recorder() -> Recorder:
    obs = Recorder.create()
    with obs.tracer.span("exchange"):
        with obs.tracer.span("exchange.chase"):
            pass
    with obs.tracer.span("query", mode="certain") as span:
        span.count("candidates", 2)
    obs.metrics.inc("queries_total")
    obs.metrics.gauge("query_largest_program_atoms").max(13)
    obs.metrics.histogram("solve_seconds", (0.1, 1.0)).observe(0.05)
    return obs


class TestTraceDocument:
    def test_document_shape_and_validation(self):
        document = trace_document(_sample_recorder())
        assert document["kind"] == TRACE_KIND
        assert document["version"] == TRACE_SCHEMA_VERSION
        assert [span["name"] for span in document["spans"]] == [
            "exchange", "query",
        ]
        assert validate_trace_document(document) == []

    def test_json_file_roundtrip(self, tmp_path):
        obs = _sample_recorder()
        path = write_trace_json(tmp_path / "trace.json", obs)
        loaded = json.loads(path.read_text())
        assert loaded == trace_document(obs)
        assert validate_trace_document(loaded) == []
        rebuilt = spans_from_document(loaded)
        assert rebuilt == obs.tracer.finished

    def test_empty_recorder_is_valid(self):
        assert validate_trace_document(trace_document(NOOP_RECORDER)) == []

    def test_validation_catches_problems(self):
        assert validate_trace_document("not a dict") == [
            "document is not an object"
        ]
        document = trace_document(_sample_recorder())
        document["kind"] = "something-else"
        assert any("kind" in p for p in validate_trace_document(document))

        document = trace_document(_sample_recorder())
        document["spans"][0]["counters"] = {"work": "three"}
        assert any("not an int" in p for p in validate_trace_document(document))

        document = trace_document(_sample_recorder())
        document["metrics"]["histograms"]["solve_seconds"]["counts"] = [1]
        assert any(
            "boundaries" in p or "cells" in p
            for p in validate_trace_document(document)
        )

        document = trace_document(_sample_recorder())
        document["metrics"]["counters"]["queries_total"] = -2
        assert any("invalid" in p for p in validate_trace_document(document))

    def test_invariant_violations_fail_validation(self):
        document = {
            "kind": TRACE_KIND,
            "version": TRACE_SCHEMA_VERSION,
            "spans": [{"name": "bad", "start": 2.0, "end": 1.0,
                       "tags": {}, "counters": {}, "children": []}],
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        }
        assert any("before start" in p for p in validate_trace_document(document))


class TestPrometheus:
    def test_exposition_text_exact(self):
        obs = Recorder.create()
        obs.metrics.inc("b_total", 2)
        obs.metrics.inc("a_total")
        obs.metrics.gauge("depth").set(1.5)
        obs.metrics.histogram("seconds", (0.5, 1.0)).observe(0.25)
        obs.metrics.histogram("seconds", (0.5, 1.0)).observe(7.0)
        assert to_prometheus(obs.metrics) == (
            "# TYPE a_total counter\n"
            "a_total 1\n"
            "# TYPE b_total counter\n"
            "b_total 2\n"
            "# TYPE depth gauge\n"
            "depth 1.5\n"
            "# TYPE seconds histogram\n"
            'seconds_bucket{le="0.5"} 1\n'
            'seconds_bucket{le="1"} 1\n'
            'seconds_bucket{le="+Inf"} 2\n'
            "seconds_sum 7.25\n"
            "seconds_count 2\n"
        )

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(Recorder.create().metrics) == ""

    def test_write_prometheus(self, tmp_path):
        obs = Recorder.create()
        obs.metrics.inc("hits_total", 3)
        path = write_prometheus(tmp_path / "metrics.prom", obs.metrics)
        assert path.read_text() == "# TYPE hits_total counter\nhits_total 3\n"

    def test_deterministic_across_insertion_order(self):
        first, second = Recorder.create(), Recorder.create()
        first.metrics.inc("x_total")
        first.metrics.inc("y_total", 2)
        second.metrics.inc("y_total", 2)
        second.metrics.inc("x_total")
        assert to_prometheus(first.metrics) == to_prometheus(second.metrics)
