"""Engine-level instrumentation: spans, counters, and worker round-trips.

The contract under test: a live recorder changes *nothing* about the
answers while producing a span tree that satisfies the nesting invariants
and counters that agree with the engines' own stats objects.
"""

import pytest

from repro.obs.export import trace_document, validate_trace_document
from repro.obs.recorder import Recorder
from repro.obs.tracing import NOOP_TRACER, validate_span_tree
from repro.parser import parse_mapping, parse_program
from repro.relational.instance import Fact, Instance
from repro.xr.monolithic import MonolithicEngine
from repro.xr.segmentary import SegmentaryEngine


def f(relation, *args):
    return Fact(relation, args)


MAPPING = parse_mapping(
    """
    SOURCE R/2. TARGET P/2.
    R(x, y) -> P(x, y).
    P(x, y), P(x, z) -> y = z.
    """
)

#: Two independent key conflicts (on 'a' and on 'd'): two violation
#: clusters, hence two signature programs for a query over P.
INSTANCE = Instance(
    [f("R", "a", "b"), f("R", "a", "c"), f("R", "d", "e"), f("R", "d", "g")]
)

QUERY = parse_program("q(x) :- P(x, y).")


def span_names(roots):
    return [span.name for span in roots]


class TestSegmentary:
    def test_spans_cover_both_phases(self):
        obs = Recorder.create()
        with SegmentaryEngine(MAPPING, INSTANCE, obs=obs) as engine:
            engine.answer(QUERY)
        roots = obs.tracer.finished
        assert span_names(roots) == ["exchange", "query"]
        exchange, query = roots
        assert span_names(exchange.children) == [
            "exchange.chase", "exchange.groundings", "exchange.violations",
            "exchange.index", "exchange.envelope",
        ]
        assert span_names(query.children) == [
            "query.ground", "query.build", "query.solve",
        ]
        assert query.tags["mode"] == "certain"
        for root in roots:
            assert validate_span_tree(root) == []

    def test_solve_tasks_ride_home_as_remote_spans(self):
        obs = Recorder.create()
        with SegmentaryEngine(MAPPING, INSTANCE, cache=False, obs=obs) as engine:
            _, stats = engine.answer_with_stats(QUERY)
        assert stats.programs_solved == 2
        query = obs.tracer.finished[1]
        solve = query.children[-1]
        tasks = [c for c in solve.children if c.name == "solve.task"]
        assert len(tasks) == stats.programs_solved
        for task in tasks:
            assert task.is_remote
            assert task.tags["status"] == "ok"
            assert task.tags["mode"] == "certain"
            assert task.counters["conflicts"] >= 0
            assert task.counters["stable_models_found"] >= 1

    def test_counters_agree_with_stats(self):
        obs = Recorder.create()
        with SegmentaryEngine(MAPPING, INSTANCE, cache=False, obs=obs) as engine:
            exchange_stats = engine.exchange()
            _, stats = engine.answer_with_stats(QUERY)
        counters = obs.metrics.counter_values()
        assert counters["exchange_source_facts_total"] == exchange_stats.source_facts
        assert counters["exchange_chased_facts_total"] == exchange_stats.chased_facts
        assert counters["exchange_groundings_total"] == exchange_stats.groundings
        assert counters["exchange_violations_total"] == exchange_stats.violations
        assert counters["exchange_clusters_total"] == exchange_stats.clusters
        assert counters["exchange_chase_rounds_total"] >= 1
        assert counters["queries_total"] == 1
        assert counters["query_candidates_total"] == stats.candidates
        assert counters["query_signatures_total"] == stats.signatures
        assert counters["query_programs_solved_total"] == stats.programs_solved
        assert counters["query_ground_rules_total"] == stats.total_rules
        assert counters["cache_program_misses_total"] == stats.cache_misses
        assert (
            counters["solver_conflicts_total"]
            == stats.solver_stats["conflicts"]
        )
        assert counters["executor_tasks_total"] == stats.programs_solved
        assert counters["executor_batches_total"] == 1
        histogram = obs.metrics.histogram("solve_seconds")
        assert histogram.count == stats.programs_solved
        gauge = obs.metrics.gauge("query_largest_program_atoms")
        assert gauge.value == stats.largest_program_atoms

    def test_answers_identical_traced_and_untraced(self):
        with SegmentaryEngine(MAPPING, INSTANCE) as plain:
            certain = plain.answer(QUERY)
            possible = plain.possible_answers(QUERY)
        obs = Recorder.create()
        with SegmentaryEngine(MAPPING, INSTANCE, obs=obs) as traced:
            assert traced.answer(QUERY) == certain
            assert traced.possible_answers(QUERY) == possible
        assert validate_trace_document(trace_document(obs)) == []

    def test_parallel_worker_spans_cross_the_pool(self):
        obs = Recorder.create()
        with SegmentaryEngine(
            MAPPING, INSTANCE, jobs=2, cache=False, obs=obs
        ) as engine:
            answers, stats = engine.answer_with_stats(QUERY)
        with SegmentaryEngine(MAPPING, INSTANCE) as plain:
            assert answers == plain.answer(QUERY)
        assert stats.programs_solved == 2
        query = obs.tracer.finished[1]
        tasks = [
            c for c in query.children[-1].children if c.name == "solve.task"
        ]
        assert len(tasks) == 2
        assert all(task.is_remote for task in tasks)
        # Each worker's span carries its solver statistics as counters.
        assert all("decisions" in task.counters for task in tasks)

    def test_default_engine_stays_uninstrumented(self):
        with SegmentaryEngine(MAPPING, INSTANCE) as engine:
            engine.answer(QUERY)
            assert engine.obs.tracer is NOOP_TRACER
        assert NOOP_TRACER.finished == []


class TestMonolithic:
    def test_spans_and_counters(self):
        obs = Recorder.create()
        engine = MonolithicEngine(MAPPING, INSTANCE, obs=obs)
        engine.answer(QUERY)
        roots = obs.tracer.finished
        assert span_names(roots) == ["monolithic"]
        assert span_names(roots[0].children)[:1] == ["monolithic.build"]
        assert span_names(roots[0].children)[-1] == "monolithic.solve"
        assert validate_span_tree(roots[0]) == []
        counters = obs.metrics.counter_values()
        assert counters["monolithic_programs_total"] == 1
        assert counters["monolithic_atoms_total"] == engine.last_stats.atoms
        assert counters["monolithic_rules_total"] == engine.last_stats.rules
        assert (
            counters["monolithic_candidates_total"]
            == engine.last_stats.candidates
        )

    def test_last_stats_copies_do_not_alias(self):
        engine = MonolithicEngine(MAPPING, INSTANCE)
        engine.answer(QUERY)
        published = engine.last_stats
        published.candidates = -1
        published.unknown_candidates.add(("poisoned",))
        fresh = engine.last_stats
        assert fresh.candidates >= 0
        assert fresh.unknown_candidates == set()

    def test_answers_identical_traced_and_untraced(self):
        plain = MonolithicEngine(MAPPING, INSTANCE)
        traced = MonolithicEngine(MAPPING, INSTANCE, obs=Recorder.create())
        assert traced.answer(QUERY) == plain.answer(QUERY)
        assert traced.possible_answers(QUERY) == plain.possible_answers(QUERY)


class TestQueryStatsAliasing:
    def test_returned_stats_and_engine_snapshot_are_independent(self):
        with SegmentaryEngine(MAPPING, INSTANCE, cache=False) as engine:
            _, stats = engine.answer_with_stats(QUERY)
            stats.solver_stats["conflicts"] = -999
            stats.program_seconds.append(123.0)
            stats.unknown_candidates.add(("poisoned",))
            fresh = engine.last_query_stats
            assert fresh.solver_stats.get("conflicts", 0) >= 0
            assert 123.0 not in fresh.program_seconds
            assert fresh.unknown_candidates == set()
            # And the accessor itself hands out isolated copies each time.
            assert engine.last_query_stats is not engine.last_query_stats
