"""Property tests of the trace invariants over fuzz-generated scenarios.

For a spread of generator seeds: instrumentation must be answer-neutral
(traced answers == untraced answers, certain and possible), every produced
span tree must satisfy the structural invariants (proper nesting,
monotonic timestamps, child durations summing to at most the parent), and
the whole recorder must export a schema-valid, JSON-round-trippable trace
document.
"""

import json

import pytest

from repro.fuzz.generator import FuzzConfig, random_scenario
from repro.obs.export import trace_document, validate_trace_document
from repro.obs.recorder import Recorder
from repro.obs.tracing import validate_span_tree
from repro.reduction.reduce import reduce_mapping
from repro.xr.segmentary import SegmentaryEngine

SEEDS = list(range(18))

CONFIG = FuzzConfig(profile="mixed", max_facts=8, conflict_rate=0.6)


@pytest.mark.parametrize("seed", SEEDS)
def test_traced_run_is_answer_neutral_and_invariant_clean(seed):
    scenario = random_scenario(seed, CONFIG)
    reduced = reduce_mapping(scenario.mapping)

    with SegmentaryEngine(reduced, scenario.instance) as plain:
        expected_certain = plain.answer(scenario.query)
        expected_possible = plain.possible_answers(scenario.query)

    obs = Recorder.create()
    with SegmentaryEngine(reduced, scenario.instance, obs=obs) as traced:
        assert traced.answer(scenario.query) == expected_certain
        assert traced.possible_answers(scenario.query) == expected_possible

    roots = obs.tracer.finished
    # One exchange phase, then one query span per answer call.
    names = [span.name for span in roots]
    assert names == ["exchange", "query", "query"]
    for root in roots:
        assert validate_span_tree(root) == [], f"seed {seed}: {root.name}"

    counters = obs.metrics.counter_values()
    assert counters["queries_total"] == 2
    assert (
        counters["query_programs_solved_total"]
        <= counters["query_signatures_total"]
    )

    document = trace_document(obs)
    assert validate_trace_document(document) == []
    assert json.loads(json.dumps(document)) == document


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_repeated_traced_runs_are_metric_identical(seed):
    """Counters (not timings) are a pure function of the scenario."""
    scenario = random_scenario(seed, CONFIG)
    reduced = reduce_mapping(scenario.mapping)

    def run():
        obs = Recorder.create()
        with SegmentaryEngine(reduced, scenario.instance, obs=obs) as engine:
            engine.answer(scenario.query)
        return {
            name: value
            for name, value in obs.metrics.counter_values().items()
            if not name.startswith("solver_")
        }

    assert run() == run()
