"""Regression: head-atom-restricted enumeration blocking.

The engine's :meth:`StableModelEngine._exclude` clause ranges over the head
atoms only — atoms never appearing in a rule head are forced false by the
generator, so every stable model agrees on them.  On the XR programs most
of the atom table is body-only "remains" copies of context facts, and the
old full-universe blocking clauses dominated solve time.  These tests pin
that the restriction changes nothing observable: enumeration on programs
with many body-only atoms is identical to brute force, terminates, and
never repeats a model.
"""

from hypothesis import given, settings, strategies as st

from repro.asp.stable import StableModelEngine
from repro.asp.syntax import GroundRule

from tests.test_asp.test_stable import brute_stable, program_over


def enumerate_all(program, limit=500):
    models = []
    engine = StableModelEngine(program)
    while True:
        model = engine.next_stable_model()
        if model is None:
            return models
        models.append(model)
        assert len(models) <= limit, "enumeration failed to terminate"


class TestBodyOnlyAtoms:
    def test_many_body_only_atoms_do_not_widen_enumeration(self):
        # Atoms 3..40 occur only in (positive or negative) bodies: they are
        # false in every stable model, and enumeration must still see both
        # answer sets of the even/odd guess on atoms 1-2 exactly once.
        body_only = list(range(3, 41))
        rules = [
            GroundRule((1,), (), (2,)),
            GroundRule((2,), (), (1,)),
        ]
        for atom in body_only:
            # constraint bodies referencing the headless atom
            rules.append(GroundRule((), (atom,), ()))
            rules.append(GroundRule((1,), (atom,), ()))
        program = program_over(40, rules)
        models = enumerate_all(program)
        assert sorted(models, key=sorted) == [frozenset({1}), frozenset({2})]

    def test_no_rules_yields_empty_model_once(self):
        program = program_over(5, [])
        assert enumerate_all(program) == [frozenset()]

    def test_only_headless_atoms(self):
        # Every atom is body-only.  A constraint whose body needs a (forced
        # false) headless atom is vacuously satisfied, so the empty model is
        # the unique stable model; a constraint on its *negation* is
        # violated by every model, leaving none.
        program = program_over(4, [GroundRule((), (1, 2), ())])
        assert enumerate_all(program) == [frozenset()]
        program = program_over(4, [GroundRule((), (), (4,))])
        assert enumerate_all(program) == []

    def test_models_not_repeated_with_disjunction(self):
        rules = [
            GroundRule((1, 2)),  # 1 ∨ 2
            GroundRule((), (3,), ()),  # 3 is body-only
        ]
        program = program_over(10, rules)
        models = enumerate_all(program)
        assert sorted(models, key=sorted) == [frozenset({1}), frozenset({2})]


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_padded_random_programs_match_brute_force(data):
    """Random programs over atoms 1..n, with the atom table padded so the
    table is much wider than the head universe (the regression shape)."""
    num_atoms = data.draw(st.integers(1, 4))
    padding = data.draw(st.integers(5, 25))
    num_rules = data.draw(st.integers(0, 6))
    atoms = st.integers(1, num_atoms)
    rules = []
    for _ in range(num_rules):
        head = tuple(data.draw(st.lists(atoms, max_size=2, unique=True)))
        body_pos = tuple(data.draw(st.lists(atoms, max_size=2, unique=True)))
        body_neg = tuple(data.draw(st.lists(atoms, max_size=2, unique=True)))
        if set(head) & set(body_pos):
            continue
        rules.append(GroundRule(head, body_pos, body_neg))
    program = program_over(num_atoms + padding, rules)
    expected = brute_stable(num_atoms, rules)
    assert set(StableModelEngine(program).stable_models(limit=300)) == expected
