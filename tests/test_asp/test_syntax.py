"""Tests for ASP rule syntax and ground program representation."""

import pytest

from repro.asp.syntax import (
    AtomTable,
    Comparison,
    GroundProgram,
    GroundRule,
    Rule,
)
from repro.relational.instance import Fact
from repro.relational.queries import Atom
from repro.relational.terms import Const, SkolemValue, Variable

X, Y = Variable("x"), Variable("y")


class TestComparison:
    def test_neq(self):
        comparison = Comparison("neq", X, Y)
        assert comparison.holds({X: 1, Y: 2})
        assert not comparison.holds({X: 1, Y: 1})

    def test_neq_with_constant(self):
        comparison = Comparison("neq", X, Const("a"))
        assert comparison.holds({X: "b"})
        assert not comparison.holds({X: "a"})

    def test_const_test(self):
        comparison = Comparison("const", X)
        assert comparison.holds({X: "a"})
        assert not comparison.holds({X: SkolemValue("f", ())})

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            Comparison("lt", X, Y)

    def test_neq_requires_two_terms(self):
        with pytest.raises(ValueError):
            Comparison("neq", X)


class TestRuleSafety:
    def test_safe_rule(self):
        Rule([Atom("T", (X,))], body_pos=[Atom("R", (X, Y))])

    def test_unsafe_head(self):
        with pytest.raises(ValueError, match="unsafe"):
            Rule([Atom("T", (X,))], body_pos=[Atom("R", (Y, Y))])

    def test_unsafe_negative_literal(self):
        with pytest.raises(ValueError, match="unsafe"):
            Rule([], body_pos=[Atom("R", (X, X))], body_neg=[Atom("S", (Y,))])

    def test_unsafe_comparison(self):
        with pytest.raises(ValueError, match="unsafe"):
            Rule([], body_pos=[Atom("R", (X, X))], comparisons=[Comparison("neq", X, Y)])

    def test_constraint_and_fact_classification(self):
        constraint = Rule([], body_pos=[Atom("R", (X, X))])
        assert constraint.is_constraint()
        fact_rule = Rule([Atom("T", (Const("a"),))])
        assert fact_rule.is_fact_rule()


class TestAtomTable:
    def test_intern_is_stable(self):
        table = AtomTable()
        first = table.intern(Fact("R", ("a",)))
        second = table.intern(Fact("R", ("a",)))
        assert first == second == 1
        assert table.fact_of(first) == Fact("R", ("a",))

    def test_ids_are_dense_from_one(self):
        table = AtomTable()
        table.intern(Fact("R", ("a",)))
        table.intern(Fact("R", ("b",)))
        assert list(table.ids()) == [1, 2]
        assert len(table) == 2

    def test_id_of_missing(self):
        table = AtomTable()
        assert table.id_of(Fact("R", ("zz",))) is None
        with pytest.raises(KeyError):
            AtomTable().fact_of(1)


class TestGroundProgram:
    def test_add_fact_creates_unit_rule(self):
        program = GroundProgram()
        atom_id = program.add_fact(Fact("R", ("a",)))
        assert program.rules[0] == GroundRule(head=(atom_id,))
        assert program.rules[0].is_fact()

    def test_statistics(self):
        program = GroundProgram()
        a = program.add_fact(Fact("R", ("a",)))
        b = program.atoms.intern(Fact("S", ("b",)))
        program.add_rule(GroundRule(head=(a, b), body_pos=()))
        program.add_rule(GroundRule(head=(), body_pos=(a,)))
        stats = program.statistics()
        assert stats["facts"] == 1
        assert stats["disjunctive_rules"] == 1
        assert stats["constraints"] == 1

    def test_decode(self):
        program = GroundProgram()
        a = program.add_fact(Fact("R", ("a",)))
        assert program.decode([a]) == {Fact("R", ("a",))}
