"""Tests for stable model computation (normal, disjunctive, HCF shifting)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.asp.stable import (
    StableModelEngine,
    is_head_cycle_free,
    shift_disjunctions,
)
from repro.asp.syntax import AtomTable, GroundProgram, GroundRule
from repro.relational.instance import Fact


def program_over(num_atoms, rules):
    program = GroundProgram(AtomTable())
    for index in range(num_atoms):
        program.atoms.intern(Fact("A", (index + 1,)))
    program.rules = list(rules)
    return program


def brute_stable(num_atoms, rules):
    def satisfies(model, rule):
        if any(b not in model for b in rule.body_pos):
            return True
        if any(g in model for g in rule.body_neg):
            return True
        return any(h in model for h in rule.head)

    def reduct(model):
        return [
            GroundRule(r.head, r.body_pos, ())
            for r in rules
            if not any(g in model for g in r.body_neg)
        ]

    def is_model(model, reduct_rules):
        return all(satisfies(model, r) for r in reduct_rules)

    atoms = list(range(1, num_atoms + 1))
    subsets = [
        frozenset(a for a in atoms if bits[a - 1])
        for bits in itertools.product([0, 1], repeat=num_atoms)
    ]
    return {
        model
        for model in subsets
        if is_model(model, reduct(model))
        and not any(
            other < model and is_model(other, reduct(model)) for other in subsets
        )
    }


class TestNormalPrograms:
    def test_facts_only(self):
        program = program_over(2, [GroundRule((1,)), GroundRule((2,))])
        assert set(StableModelEngine(program).stable_models()) == {
            frozenset({1, 2})
        }

    def test_definite_rules_have_least_model(self):
        rules = [GroundRule((1,)), GroundRule((2,), (1,)), GroundRule((3,), (2,))]
        program = program_over(3, rules)
        assert set(StableModelEngine(program).stable_models()) == {
            frozenset({1, 2, 3})
        }

    def test_positive_cycle_is_unfounded(self):
        rules = [GroundRule((1,), (2,)), GroundRule((2,), (1,))]
        program = program_over(2, rules)
        assert set(StableModelEngine(program).stable_models()) == {frozenset()}

    def test_even_loop_two_models(self):
        # a :- not b.  b :- not a.
        rules = [
            GroundRule((1,), (), (2,)),
            GroundRule((2,), (), (1,)),
        ]
        program = program_over(2, rules)
        assert set(StableModelEngine(program).stable_models()) == {
            frozenset({1}),
            frozenset({2}),
        }

    def test_odd_loop_no_model(self):
        # a :- not a.
        program = program_over(1, [GroundRule((1,), (), (1,))])
        assert list(StableModelEngine(program).stable_models()) == []

    def test_constraint_filters_models(self):
        rules = [
            GroundRule((1,), (), (2,)),
            GroundRule((2,), (), (1,)),
            GroundRule((), (1,)),  # forbid a
        ]
        program = program_over(2, rules)
        assert set(StableModelEngine(program).stable_models()) == {frozenset({2})}


class TestDisjunctivePrograms:
    def test_disjunctive_fact(self):
        program = program_over(2, [GroundRule((1, 2))])
        assert set(StableModelEngine(program).stable_models()) == {
            frozenset({1}),
            frozenset({2}),
        }

    def test_disjunction_with_absorption(self):
        # a | b.  a :- b.  Minimality leaves only {a}.
        rules = [GroundRule((1, 2)), GroundRule((1,), (2,))]
        program = program_over(2, rules)
        assert set(StableModelEngine(program).stable_models()) == {frozenset({1})}

    def test_non_hcf_program(self):
        # a | b.  a :- b.  b :- a.  -> {a, b} is the only stable model.
        rules = [
            GroundRule((1, 2)),
            GroundRule((1,), (2,)),
            GroundRule((2,), (1,)),
        ]
        program = program_over(2, rules)
        assert not is_head_cycle_free(rules)
        assert set(StableModelEngine(program).stable_models()) == {
            frozenset({1, 2})
        }

    def test_limit(self):
        program = program_over(2, [GroundRule((1, 2))])
        assert len(list(StableModelEngine(program).stable_models(limit=1))) == 1


class TestShifting:
    def test_hcf_detection(self):
        disjunctive = [GroundRule((1, 2))]
        assert is_head_cycle_free(disjunctive)
        cyclic = [
            GroundRule((1, 2)),
            GroundRule((1,), (2,)),
            GroundRule((2,), (1,)),
        ]
        assert not is_head_cycle_free(cyclic)

    def test_shift_structure(self):
        shifted = shift_disjunctions([GroundRule((1, 2), (3,))])
        assert GroundRule((1,), (3,), (2,)) in shifted
        assert GroundRule((2,), (3,), (1,)) in shifted

    def test_shift_preserves_models_when_hcf(self):
        rules = [GroundRule((1, 2)), GroundRule((), (1, 2))]
        program = program_over(2, rules)
        shifted_engine = StableModelEngine(program, auto_shift=True)
        direct_engine = StableModelEngine(program, auto_shift=False)
        assert set(shifted_engine.stable_models()) == set(
            direct_engine.stable_models()
        )


class TestIncremental:
    def test_add_atom_clause_steers_enumeration(self):
        program = program_over(2, [GroundRule((1, 2))])
        engine = StableModelEngine(program)
        engine.add_atom_clause([-1])  # forbid atom 1
        models = list(engine.stable_models())
        assert models == [frozenset({2})]

    def test_atom_clause_bounds_checked(self):
        program = program_over(1, [GroundRule((1,))])
        engine = StableModelEngine(program)
        with pytest.raises(ValueError):
            engine.add_atom_clause([99])


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_random_programs_match_brute_force(data):
    num_atoms = data.draw(st.integers(1, 5))
    num_rules = data.draw(st.integers(0, 8))
    rules = []
    atoms = st.integers(1, num_atoms)
    for _ in range(num_rules):
        head = tuple(
            data.draw(st.lists(atoms, max_size=2, unique=True))
        )
        body_pos = tuple(
            data.draw(st.lists(atoms, max_size=2, unique=True))
        )
        body_neg = tuple(
            data.draw(st.lists(atoms, max_size=2, unique=True))
        )
        if set(head) & set(body_pos):
            continue
        rules.append(GroundRule(head, body_pos, body_neg))
    program = program_over(num_atoms, rules)
    expected = brute_stable(num_atoms, rules)
    assert set(StableModelEngine(program).stable_models(limit=200)) == expected
    assert (
        set(StableModelEngine(program, auto_shift=False).stable_models(limit=200))
        == expected
    )
