"""Family solving (`decide_family`) vs. per-question cautious/brave runs.

One engine, assumption-guarded steering, model harvesting, level-0
entailment skips, per-candidate budget degradation — all checked against
the reference iterative-constraining implementations and brute-force
stable-model enumeration.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.asp.reasoning import (
    FamilyVerdicts,
    brave_consequences,
    cautious_consequences,
    decide_family,
)
from repro.asp.syntax import AtomTable, GroundProgram, GroundRule
from repro.relational.instance import Fact
from repro.runtime.budget import SolveBudgetExceeded


def program_over(num_atoms, rules):
    program = GroundProgram(AtomTable())
    for index in range(num_atoms):
        program.atoms.intern(Fact("A", (index + 1,)))
    program.rules = list(rules)
    return program


def brute_stable(num_atoms, rules):
    def satisfies(model, rule):
        if any(b not in model for b in rule.body_pos):
            return True
        if any(g in model for g in rule.body_neg):
            return True
        return any(h in model for h in rule.head)

    def reduct(model):
        return [
            GroundRule(r.head, r.body_pos, ())
            for r in rules
            if not any(g in model for g in r.body_neg)
        ]

    def is_model(model, reduct_rules):
        return all(satisfies(model, r) for r in reduct_rules)

    atoms = list(range(1, num_atoms + 1))
    subsets = [
        frozenset(a for a in atoms if bits[a - 1])
        for bits in itertools.product([0, 1], repeat=num_atoms)
    ]
    return {
        model
        for model in subsets
        if is_model(model, reduct(model))
        and not any(
            other < model and is_model(other, reduct(model)) for other in subsets
        )
    }


class TestCautiousMode:
    def test_matches_reference_on_disjunction(self):
        rules = [
            GroundRule((1, 2)),
            GroundRule((3,), (1,)),
            GroundRule((3,), (2,)),
        ]
        verdicts = decide_family(program_over(3, rules), [1, 2, 3])
        assert verdicts.accepted == frozenset({3})
        assert verdicts.rejected == frozenset({1, 2})
        assert not verdicts.undecided and not verdicts.no_model

    def test_no_stable_models_flagged(self):
        verdicts = decide_family(
            program_over(1, [GroundRule((1,), (), (1,))]), [1]
        )
        assert verdicts.no_model
        assert not verdicts.accepted and not verdicts.rejected
        assert not verdicts.undecided

    def test_every_atom_gets_a_verdict(self):
        rules = [
            GroundRule((1,), body_neg=(2,)),
            GroundRule((2,), body_neg=(1,)),
            GroundRule((3,), (1,)),
            GroundRule((3,), (2,)),
            GroundRule((4,)),
        ]
        verdicts = decide_family(program_over(5, rules), [1, 2, 3, 4, 5])
        assert verdicts.accepted == frozenset({3, 4})
        assert verdicts.rejected == frozenset({1, 2, 5})

    def test_entailment_skips_counted_for_forced_atoms(self):
        # Atom 1 is a fact, atom 3 has no rule: both are decided by the
        # clause database at level 0, no steering round needed.
        rules = [GroundRule((1,))]
        verdicts = decide_family(program_over(3, rules), [1, 3])
        assert verdicts.accepted == frozenset({1})
        assert verdicts.rejected == frozenset({3})
        assert verdicts.stats["core_skips"] == 2


class TestBraveMode:
    def test_matches_reference_on_disjunction(self):
        verdicts = decide_family(
            program_over(2, [GroundRule((1, 2))]), [1, 2], mode="possible"
        )
        assert verdicts.accepted == frozenset({1, 2})
        assert not verdicts.rejected

    def test_underivable_atom_rejected(self):
        verdicts = decide_family(
            program_over(2, [GroundRule((1,))]), [1, 2], mode="brave"
        )
        assert verdicts.accepted == frozenset({1})
        assert verdicts.rejected == frozenset({2})

    def test_no_stable_models_flagged(self):
        verdicts = decide_family(
            program_over(1, [GroundRule((1,), (), (1,))]), [1], mode="possible"
        )
        assert verdicts.no_model

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            decide_family(program_over(1, []), [1], mode="certain")


class TestBudgetDegradation:
    class _FiringDeadline:
        """A deadline that allows ``grace`` checks, then fires forever."""

        def __init__(self, grace):
            self.grace = grace
            self.checks = 0

        def check(self):
            self.checks += 1
            if self.checks > self.grace:
                raise SolveBudgetExceeded("test budget")

    def choice_rules(self, pairs):
        rules = []
        for low in range(1, 2 * pairs, 2):
            rules.append(GroundRule((low,), body_neg=(low + 1,)))
            rules.append(GroundRule((low + 1,), body_neg=(low,)))
        return rules

    def test_partial_verdicts_survive_budget(self):
        # Enough grace to find the first model, not enough to finish all
        # steering rounds: whatever was decided must be exact, the rest
        # undecided — never a wrong verdict.
        atoms = list(range(1, 9))
        rules = self.choice_rules(4)
        reference = brute_stable(8, rules)
        for grace in range(1, 40):
            deadline = self._FiringDeadline(grace)
            verdicts = decide_family(
                program_over(8, rules), atoms, deadline=deadline
            )
            for atom in verdicts.accepted:
                assert all(atom in m for m in reference)
            for atom in verdicts.rejected:
                assert any(atom not in m for m in reference)
            assert (
                set(verdicts.accepted)
                | set(verdicts.rejected)
                | set(verdicts.undecided)
            ) == set(atoms)
            if not verdicts.undecided:
                break
        else:
            pytest.fail("budget never allowed the family to finish")

    def test_interrupted_property(self):
        verdicts = FamilyVerdicts(
            accepted=frozenset(), rejected=frozenset(), undecided=frozenset({3})
        )
        assert verdicts.interrupted
        assert not FamilyVerdicts(frozenset(), frozenset()).interrupted


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_family_matches_reference_implementations(data):
    num_atoms = data.draw(st.integers(1, 5))
    num_rules = data.draw(st.integers(0, 8))
    rules = []
    for _ in range(num_rules):
        head_width = data.draw(st.integers(1, min(2, num_atoms)))
        head = tuple(
            data.draw(
                st.lists(
                    st.integers(1, num_atoms),
                    min_size=head_width,
                    max_size=head_width,
                    unique=True,
                )
            )
        )
        body_pool = [a for a in range(1, num_atoms + 1) if a not in head]
        body_pos = tuple(
            data.draw(
                st.lists(st.sampled_from(body_pool or [1]), max_size=2, unique=True)
            )
            if body_pool
            else []
        )
        body_neg = tuple(
            data.draw(
                st.lists(st.sampled_from(body_pool or [1]), max_size=2, unique=True)
            )
            if body_pool
            else []
        )
        rules.append(GroundRule(head, body_pos, body_neg))
    atoms = list(range(1, num_atoms + 1))

    cautious = cautious_consequences(program_over(num_atoms, rules), atoms)
    brave = brave_consequences(program_over(num_atoms, rules), atoms)
    family_c = decide_family(program_over(num_atoms, rules), atoms)
    family_b = decide_family(program_over(num_atoms, rules), atoms, mode="brave")

    if cautious is None:
        assert family_c.no_model and family_b.no_model
        return
    assert not family_c.no_model and not family_b.no_model
    assert family_c.accepted == cautious
    assert family_c.rejected == frozenset(atoms) - cautious
    assert family_b.accepted == brave
    assert family_b.rejected == frozenset(atoms) - brave
    assert not family_c.undecided and not family_b.undecided
