"""Incremental (family) API of the stable-model engine.

``solve_under`` searches for stable models under assumptions without
excluding what it finds; selector literals guard per-candidate steering
clauses so many candidate questions share one solver and its learned
clauses.  These are the primitives behind
:func:`repro.asp.reasoning.decide_family`.
"""

import itertools

import pytest

from repro.asp.stable import StableModelEngine
from repro.asp.syntax import AtomTable, GroundProgram, GroundRule
from repro.relational.instance import Fact


def program_over(num_atoms, rules):
    program = GroundProgram(AtomTable())
    for index in range(num_atoms):
        program.atoms.intern(Fact("A", (index + 1,)))
    program.rules = list(rules)
    return program


def choice_program():
    """Two independent binary choices: {1,3} x {2,4} -> 4 stable models."""
    return program_over(
        4,
        [
            GroundRule((1,), body_neg=(3,)),
            GroundRule((3,), body_neg=(1,)),
            GroundRule((2,), body_neg=(4,)),
            GroundRule((4,), body_neg=(2,)),
        ],
    )


class TestSolveUnder:
    def test_finds_model_without_excluding_it(self):
        engine = StableModelEngine(choice_program())
        first = engine.solve_under()
        second = engine.solve_under()
        assert first is not None and second is not None
        # Nothing was excluded: the same question may return the same
        # model again (phase saving makes this the expected outcome).
        assert first == second
        assert engine.failed_assumptions is None

    def test_assumptions_steer_the_model(self):
        engine = StableModelEngine(choice_program())
        model = engine.solve_under([3, 4])
        assert model == frozenset({3, 4})
        model = engine.solve_under([1, 2])
        assert model == frozenset({1, 2})

    def test_unsat_under_assumptions_keeps_engine_usable(self):
        engine = StableModelEngine(choice_program())
        assert engine.solve_under([1, 3]) is None  # mutually exclusive
        assert engine.failed_assumptions  # non-empty core
        assert set(engine.failed_assumptions) <= {1, 3}
        # The engine is not exhausted: unrelated questions still work.
        assert engine.solve_under([1]) is not None

    def test_no_stable_models_yields_empty_core(self):
        # p :- not p has no stable model.
        engine = StableModelEngine(
            program_over(1, [GroundRule((1,), body_neg=(1,))])
        )
        assert engine.solve_under([1]) is None
        assert engine.failed_assumptions == []

    def test_unstable_candidates_rejected_under_assumptions(self):
        # Symmetric positive loop {1, 2} with no external support: the
        # generator admits {1,2} but minimality rejects it, with or
        # without assumptions.
        engine = StableModelEngine(
            program_over(
                2, [GroundRule((1,), body_pos=(2,)), GroundRule((2,), body_pos=(1,))]
            )
        )
        assert engine.solve_under([1]) is None
        assert engine.solve_under() == frozenset()

    def test_statistics_track_carried_clauses(self):
        engine = StableModelEngine(choice_program())
        assert engine.statistics["carried_clauses"] == 0
        engine.solve_under([3, 4])
        engine.solve_under([1, 3])  # conflict: learns at least one clause
        assert engine.statistics["carried_clauses"] >= 0  # never negative


class TestSelectors:
    def test_selector_guards_steering_clause(self):
        engine = StableModelEngine(choice_program())
        selector = engine.new_selector()
        engine.add_guarded_clause(selector, [3])  # "require atom 3"
        with_guard = engine.solve_under([selector])
        assert with_guard is not None and 3 in with_guard
        # Without assuming the selector the constraint is inert.
        free = engine.solve_under([1])
        assert free is not None and 1 in free

    def test_selector_ids_outside_atom_universe(self):
        engine = StableModelEngine(choice_program())
        selector = engine.new_selector()
        assert selector > engine.num_atoms

    def test_retire_selector_disables_clause(self):
        engine = StableModelEngine(choice_program())
        selector = engine.new_selector()
        engine.add_guarded_clause(selector, [3])
        engine.retire_selector(selector)
        # Even "assuming" the retired selector cannot reactivate it —
        # the solve simply fails on the selector itself, not the atoms.
        assert engine.solve_under([selector, 1]) is None
        assert engine.failed_assumptions == [selector]
        assert engine.solve_under([1]) is not None

    def test_guarded_clause_rejects_non_atom_literals(self):
        engine = StableModelEngine(choice_program())
        selector = engine.new_selector()
        with pytest.raises(ValueError):
            engine.add_guarded_clause(selector, [selector])

    def test_many_selectors_share_one_engine(self):
        # One selector per "candidate question"; each steers the search
        # independently and retirement keeps the solver clean.
        engine = StableModelEngine(choice_program())
        for atom in (1, 2, 3, 4):
            selector = engine.new_selector()
            engine.add_guarded_clause(selector, [-atom])  # "make atom false"
            model = engine.solve_under([selector])
            assert model is not None and atom not in model
            engine.retire_selector(selector)
        assert engine.solve_under() is not None


class TestEntailedValue:
    def test_forced_atoms_reported(self):
        # Fact 1; a 2/3 choice with a constraint killing the 2 branch.
        # The only stable model is {1, 3}.
        program = program_over(
            3,
            [
                GroundRule((1,)),
                GroundRule((2,), body_neg=(3,)),
                GroundRule((3,), body_neg=(2,)),
                GroundRule((), body_pos=(2,)),  # constraint: not 2
            ],
        )
        engine = StableModelEngine(program)
        assert engine.entailed_value(1) == 1
        assert engine.entailed_value(2) == 0
        assert engine.entailed_value(3) == 1

    def test_undetermined_atom_reports_unknown(self):
        engine = StableModelEngine(choice_program())
        for atom in (1, 2, 3, 4):
            assert engine.entailed_value(atom) == -1

    def test_headless_atom_entailed_false(self):
        program = program_over(2, [GroundRule((1,))])
        engine = StableModelEngine(program)
        assert engine.entailed_value(2) == 0

    def test_entailment_strengthens_after_learned_units(self):
        # Requiring atom 3 via a retired... rather, an *unguarded* sound
        # constraint (¬1) forces the complementary choice at top level.
        engine = StableModelEngine(choice_program())
        engine.add_atom_clause([-1])
        assert engine.entailed_value(3) == 1

    def test_agrees_with_exhaustive_enumeration(self):
        rules = [
            GroundRule((1,), body_neg=(2,)),
            GroundRule((2,), body_neg=(1,)),
            GroundRule((3,), body_pos=(1,)),
            GroundRule((3,), body_pos=(2,)),
        ]
        engine = StableModelEngine(program_over(3, rules))
        # Atom 3 holds in every stable model; entailed_value may or may
        # not see it (propagation is incomplete) but must never report a
        # value contradicting some stable model.
        models = [frozenset({1, 3}), frozenset({2, 3})]
        for atom in (1, 2, 3):
            value = engine.entailed_value(atom)
            if value == 1:
                assert all(atom in m for m in models)
            elif value == 0:
                assert all(atom not in m for m in models)
