"""Tests for the CDCL SAT solver."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.asp.sat import SatSolver


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(any(bits[abs(l) - 1] == (l > 0) for l in c) for c in clauses):
            return True
    return False


def model_satisfies(model, clauses):
    return all(any(model[abs(l)] == (l > 0) for l in c) for c in clauses)


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert SatSolver(3).solve()

    def test_unit_propagation(self):
        solver = SatSolver(2)
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        assert solver.solve()
        assert solver.model()[1] and solver.model()[2]

    def test_trivial_unsat(self):
        solver = SatSolver(1)
        solver.add_clause([1])
        assert not solver.add_clause([-1])
        assert not solver.solve()

    def test_empty_clause_is_unsat(self):
        solver = SatSolver(1)
        assert not solver.add_clause([])

    def test_tautological_clause_ignored(self):
        solver = SatSolver(1)
        assert solver.add_clause([1, -1])
        assert solver.solve()

    def test_duplicate_literals_merged(self):
        solver = SatSolver(1)
        solver.add_clause([1, 1, 1])
        assert solver.solve()
        assert solver.model()[1]

    def test_out_of_range_literal_rejected(self):
        with pytest.raises(ValueError):
            SatSolver(1).add_clause([5])

    def test_new_var(self):
        solver = SatSolver(0)
        v = solver.new_var()
        assert v == 1
        solver.add_clause([-v])
        assert solver.solve()
        assert not solver.model()[v]


class TestSearch:
    def test_pigeonhole_4_3_unsat(self):
        pigeons, holes = 4, 3
        solver = SatSolver(pigeons * holes)
        var = lambda p, h: p * holes + h + 1
        for p in range(pigeons):
            solver.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        assert not solver.solve()

    def test_pigeonhole_3_3_sat(self):
        pigeons = holes = 3
        solver = SatSolver(pigeons * holes)
        var = lambda p, h: p * holes + h + 1
        for p in range(pigeons):
            solver.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        assert solver.solve()

    def test_phase_saving_biases_model(self):
        solver = SatSolver(3)
        solver.add_clause([1, 2, 3])
        for v in (1, 2, 3):
            solver.set_default_phase(v, False)
        assert solver.solve()
        assert sum(solver.model()[1:]) == 1  # minimal-ish: one decision flip


class TestIncremental:
    def test_assumptions(self):
        solver = SatSolver(3)
        solver.add_clause([1, 2])
        solver.add_clause([-1, 3])
        assert solver.solve([-2])
        assert solver.model()[1] and solver.model()[3]
        assert not solver.solve([-2, -3])
        assert solver.solve()  # assumptions do not persist

    def test_add_clause_between_solves(self):
        solver = SatSolver(2)
        solver.add_clause([1, 2])
        assert solver.solve()
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert not solver.solve()

    def test_add_clause_after_model_found(self):
        # Clauses may be installed while the trail is still populated.
        solver = SatSolver(3)
        solver.add_clause([1, 2, 3])
        assert solver.solve()
        model = solver.model()
        exclusion = [-v if model[v] else v for v in (1, 2, 3)]
        solver.add_clause(exclusion)
        count = 1
        while solver.solve():
            model = solver.model()
            solver.add_clause([-v if model[v] else v for v in (1, 2, 3)])
            count += 1
        assert count == 7  # all assignments except all-false

    def test_statistics(self):
        solver = SatSolver(2)
        solver.add_clause([1, 2])
        solver.solve()
        stats = solver.statistics
        assert stats["vars"] == 2
        assert stats["propagations"] >= 0


@settings(max_examples=150, deadline=None)
@given(st.data())
def test_random_formulas_match_brute_force(data):
    num_vars = data.draw(st.integers(1, 7))
    num_clauses = data.draw(st.integers(1, 22))
    clauses = []
    for _ in range(num_clauses):
        width = data.draw(st.integers(1, min(3, num_vars)))
        variables = data.draw(
            st.lists(
                st.integers(1, num_vars),
                min_size=width,
                max_size=width,
                unique=True,
            )
        )
        clauses.append(
            [v if data.draw(st.booleans()) else -v for v in variables]
        )
    solver = SatSolver(num_vars)
    ok = all(solver.add_clause(c) for c in clauses)
    result = ok and solver.solve()
    assert result == brute_force_sat(num_vars, clauses)
    if result:
        assert model_satisfies(solver.model(), clauses)
