"""Tests for the CDCL SAT solver."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.asp.sat import SatSolver


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(any(bits[abs(l) - 1] == (l > 0) for l in c) for c in clauses):
            return True
    return False


def model_satisfies(model, clauses):
    return all(any(model[abs(l)] == (l > 0) for l in c) for c in clauses)


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert SatSolver(3).solve()

    def test_unit_propagation(self):
        solver = SatSolver(2)
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        assert solver.solve()
        assert solver.model()[1] and solver.model()[2]

    def test_trivial_unsat(self):
        solver = SatSolver(1)
        solver.add_clause([1])
        assert not solver.add_clause([-1])
        assert not solver.solve()

    def test_empty_clause_is_unsat(self):
        solver = SatSolver(1)
        assert not solver.add_clause([])

    def test_tautological_clause_ignored(self):
        solver = SatSolver(1)
        assert solver.add_clause([1, -1])
        assert solver.solve()

    def test_duplicate_literals_merged(self):
        solver = SatSolver(1)
        solver.add_clause([1, 1, 1])
        assert solver.solve()
        assert solver.model()[1]

    def test_out_of_range_literal_rejected(self):
        with pytest.raises(ValueError):
            SatSolver(1).add_clause([5])

    def test_new_var(self):
        solver = SatSolver(0)
        v = solver.new_var()
        assert v == 1
        solver.add_clause([-v])
        assert solver.solve()
        assert not solver.model()[v]


class TestSearch:
    def test_pigeonhole_4_3_unsat(self):
        pigeons, holes = 4, 3
        solver = SatSolver(pigeons * holes)
        var = lambda p, h: p * holes + h + 1
        for p in range(pigeons):
            solver.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        assert not solver.solve()

    def test_pigeonhole_3_3_sat(self):
        pigeons = holes = 3
        solver = SatSolver(pigeons * holes)
        var = lambda p, h: p * holes + h + 1
        for p in range(pigeons):
            solver.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        assert solver.solve()

    def test_phase_saving_biases_model(self):
        solver = SatSolver(3)
        solver.add_clause([1, 2, 3])
        for v in (1, 2, 3):
            solver.set_default_phase(v, False)
        assert solver.solve()
        assert sum(solver.model()[1:]) == 1  # minimal-ish: one decision flip


class TestIncremental:
    def test_assumptions(self):
        solver = SatSolver(3)
        solver.add_clause([1, 2])
        solver.add_clause([-1, 3])
        assert solver.solve([-2])
        assert solver.model()[1] and solver.model()[3]
        assert not solver.solve([-2, -3])
        assert solver.solve()  # assumptions do not persist

    def test_add_clause_between_solves(self):
        solver = SatSolver(2)
        solver.add_clause([1, 2])
        assert solver.solve()
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert not solver.solve()

    def test_add_clause_after_model_found(self):
        # Clauses may be installed while the trail is still populated.
        solver = SatSolver(3)
        solver.add_clause([1, 2, 3])
        assert solver.solve()
        model = solver.model()
        exclusion = [-v if model[v] else v for v in (1, 2, 3)]
        solver.add_clause(exclusion)
        count = 1
        while solver.solve():
            model = solver.model()
            solver.add_clause([-v if model[v] else v for v in (1, 2, 3)])
            count += 1
        assert count == 7  # all assignments except all-false

    def test_statistics(self):
        solver = SatSolver(2)
        solver.add_clause([1, 2])
        solver.solve()
        stats = solver.statistics
        assert stats["vars"] == 2
        assert stats["propagations"] >= 0


@settings(max_examples=150, deadline=None)
@given(st.data())
def test_random_formulas_match_brute_force(data):
    num_vars = data.draw(st.integers(1, 7))
    num_clauses = data.draw(st.integers(1, 22))
    clauses = []
    for _ in range(num_clauses):
        width = data.draw(st.integers(1, min(3, num_vars)))
        variables = data.draw(
            st.lists(
                st.integers(1, num_vars),
                min_size=width,
                max_size=width,
                unique=True,
            )
        )
        clauses.append(
            [v if data.draw(st.booleans()) else -v for v in variables]
        )
    solver = SatSolver(num_vars)
    ok = all(solver.add_clause(c) for c in clauses)
    result = ok and solver.solve()
    assert result == brute_force_sat(num_vars, clauses)
    if result:
        assert model_satisfies(solver.model(), clauses)


def pigeonhole(pigeons, holes):
    """PHP(p, h) clauses over vars v(i, j) = (i-1)*holes + j; UNSAT if p > h."""
    def v(i, j):
        return (i - 1) * holes + j

    clauses = [[v(i, j) for j in range(1, holes + 1)] for i in range(1, pigeons + 1)]
    for j in range(1, holes + 1):
        for i in range(1, pigeons + 1):
            for k in range(i + 1, pigeons + 1):
                clauses.append([-v(i, j), -v(k, j)])
    return pigeons * holes, clauses


class TestDecisionHeap:
    """The lazy VSIDS heap must repopulate itself when staleness exhausts it,
    not fall back to a per-decision linear scan."""

    def test_exhausted_heap_is_rebuilt(self):
        solver = SatSolver(8)
        solver.activity[5] = 3.0
        solver.activity[2] = 1.0
        solver._order.clear()  # every heap entry gone stale
        assert abs(solver._decide()) == 5  # still picks max activity
        # The rebuild reinstated the other unassigned variables, so the
        # next decision is an ordinary heap pop.
        assert len(solver._order) == 7
        assert abs(solver._decide()) == 2

    def test_all_stale_entries_trigger_rebuild(self):
        solver = SatSolver(4)
        solver.activity[3] = 2.0
        solver._order = [(0.0, 3)]  # outdated activity: discarded on pop
        assert abs(solver._decide()) == 3
        assert solver._order  # repopulated, not left empty

    def test_rebuild_with_everything_assigned_returns_zero(self):
        solver = SatSolver(2)
        solver.add_clause([1])
        solver.add_clause([2])
        assert solver.solve()
        solver._order.clear()
        assert solver._decide() == 0

    def test_restart_heavy_unsat_instance(self):
        num_vars, clauses = pigeonhole(6, 5)
        solver = SatSolver(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        assert not solver.solve()
        # PHP(6,5) needs enough conflicts to cross the first Luby restart
        # budget, so the restart path (mass backtracking, heap churn) ran.
        assert solver._conflicts_total > 64

    def test_solve_correct_after_manual_heap_exhaustion(self):
        rng = random.Random(7)
        num_vars = 12
        clauses = [
            [rng.choice([-1, 1]) * v for v in rng.sample(range(1, num_vars + 1), 3)]
            for _ in range(40)
        ]
        expected = brute_force_sat(num_vars, clauses)
        solver = SatSolver(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        solver._order.clear()  # start from a fully stale heap
        result = solver.solve()
        assert result == expected
        if result:
            assert model_satisfies(solver.model(), clauses)
