"""Tests for cautious and brave reasoning."""

from repro.asp.reasoning import brave_consequences, cautious_consequences
from repro.asp.syntax import AtomTable, GroundProgram, GroundRule
from repro.relational.instance import Fact


def program_over(num_atoms, rules):
    program = GroundProgram(AtomTable())
    for index in range(num_atoms):
        program.atoms.intern(Fact("A", (index + 1,)))
    program.rules = list(rules)
    return program


class TestCautious:
    def test_single_model(self):
        program = program_over(2, [GroundRule((1,)), GroundRule((2,), (1,))])
        assert cautious_consequences(program, [1, 2]) == frozenset({1, 2})

    def test_disjunction_nothing_cautious(self):
        program = program_over(2, [GroundRule((1, 2))])
        assert cautious_consequences(program, [1, 2]) == frozenset()

    def test_shared_atom_is_cautious(self):
        # a | b.  c :- a.  c :- b.  -> c in every stable model.
        rules = [
            GroundRule((1, 2)),
            GroundRule((3,), (1,)),
            GroundRule((3,), (2,)),
        ]
        program = program_over(3, rules)
        assert cautious_consequences(program, [1, 2, 3]) == frozenset({3})

    def test_no_stable_models_returns_none(self):
        program = program_over(1, [GroundRule((1,), (), (1,))])
        assert cautious_consequences(program, [1]) is None

    def test_query_atoms_scoped(self):
        program = program_over(3, [GroundRule((1,)), GroundRule((2,))])
        assert cautious_consequences(program, [2]) == frozenset({2})


class TestBrave:
    def test_disjunction_both_brave(self):
        program = program_over(2, [GroundRule((1, 2))])
        assert brave_consequences(program, [1, 2]) == frozenset({1, 2})

    def test_underivable_atom_not_brave(self):
        program = program_over(2, [GroundRule((1,))])
        assert brave_consequences(program, [1, 2]) == frozenset({1})

    def test_no_stable_models_returns_none(self):
        program = program_over(1, [GroundRule((1,), (), (1,))])
        assert brave_consequences(program, [1]) is None

    def test_brave_superset_of_cautious(self):
        rules = [
            GroundRule((1, 2)),
            GroundRule((3,), (1,)),
            GroundRule((3,), (2,)),
        ]
        program = program_over(3, rules)
        cautious = cautious_consequences(program, [1, 2, 3])
        brave = brave_consequences(program_over(3, rules), [1, 2, 3])
        assert cautious <= brave
