"""The in-repo Tarjan SCC vs networkx, on fixed shapes and random digraphs."""

import random
import sys

import networkx as nx
import pytest

from repro.asp.graphs import nontrivial_sccs, tarjan_scc


def as_partition(components):
    return {frozenset(c) for c in components}


def nx_partition(adjacency):
    graph = nx.DiGraph()
    graph.add_nodes_from(adjacency)
    for node, successors in adjacency.items():
        for succ in successors:
            graph.add_edge(node, succ)
    return {frozenset(c) for c in nx.strongly_connected_components(graph)}


class TestFixedShapes:
    def test_empty(self):
        assert tarjan_scc({}) == []

    def test_singletons_no_edges(self):
        assert as_partition(tarjan_scc({1: [], 2: []})) == {
            frozenset({1}),
            frozenset({2}),
        }

    def test_chain_is_all_singletons(self):
        adjacency = {1: [2], 2: [3], 3: []}
        assert as_partition(tarjan_scc(adjacency)) == {
            frozenset({1}), frozenset({2}), frozenset({3}),
        }

    def test_cycle_is_one_component(self):
        adjacency = {1: [2], 2: [3], 3: [1]}
        assert as_partition(tarjan_scc(adjacency)) == {frozenset({1, 2, 3})}

    def test_two_cycles_bridged(self):
        adjacency = {1: [2], 2: [1, 3], 3: [4], 4: [3]}
        assert as_partition(tarjan_scc(adjacency)) == {
            frozenset({1, 2}),
            frozenset({3, 4}),
        }

    def test_neighbor_only_nodes_are_included(self):
        # 2 appears only as a successor: treated as edgeless.
        assert as_partition(tarjan_scc({1: [2]})) == {
            frozenset({1}),
            frozenset({2}),
        }

    def test_self_loop_is_singleton_component(self):
        assert as_partition(tarjan_scc({1: [1]})) == {frozenset({1})}

    def test_reverse_topological_order(self):
        # Successors come before predecessors in the output.
        adjacency = {1: [2], 2: [3], 3: [2], 4: [1]}
        components = tarjan_scc(adjacency)
        position = {}
        for index, component in enumerate(components):
            for node in component:
                position[node] = index
        assert position[3] < position[1] < position[4]
        assert position[2] == position[3]

    def test_deep_chain_does_not_recurse(self):
        depth = sys.getrecursionlimit() + 500
        adjacency = {i: [i + 1] for i in range(depth)}
        components = tarjan_scc(adjacency)
        assert len(components) == depth + 1

    def test_deep_cycle_is_one_component(self):
        depth = sys.getrecursionlimit() + 500
        adjacency = {i: [(i + 1) % depth] for i in range(depth)}
        components = tarjan_scc(adjacency)
        assert len(components) == 1 and len(components[0]) == depth

    def test_nontrivial_sccs_filters_singletons(self):
        adjacency = {1: [2], 2: [1], 3: [1]}
        assert as_partition(nontrivial_sccs(adjacency)) == {frozenset({1, 2})}


@pytest.mark.parametrize("seed", range(30))
def test_random_digraphs_match_networkx(seed):
    rng = random.Random(seed)
    num_nodes = rng.randint(1, 40)
    num_edges = rng.randint(0, 3 * num_nodes)
    adjacency = {node: [] for node in range(num_nodes)}
    for _ in range(num_edges):
        adjacency[rng.randrange(num_nodes)].append(rng.randrange(num_nodes))
    assert as_partition(tarjan_scc(adjacency)) == nx_partition(adjacency)


@pytest.mark.parametrize("seed", range(10))
def test_random_sparse_key_digraphs_match_networkx(seed):
    """Adjacency with successor-only nodes (not every node is a key)."""
    rng = random.Random(1000 + seed)
    num_nodes = rng.randint(2, 30)
    adjacency = {}
    for node in range(0, num_nodes, 2):  # only even nodes are keys
        adjacency[node] = [
            rng.randrange(num_nodes) for _ in range(rng.randint(0, 4))
        ]
    reachable = set(adjacency)
    for successors in adjacency.values():
        reachable.update(successors)
    partition = as_partition(tarjan_scc(adjacency))
    assert {n for c in partition for n in c} == reachable
    assert partition == {
        c
        for c in nx_partition(
            {n: adjacency.get(n, []) for n in reachable}
        )
    }
