"""Assumption handling in the CDCL solver: failed-core analysis.

``SatSolver.solve(assumptions)`` returning False must leave
``failed_assumptions`` holding the subset of the assumptions whose
conjunction the clause database refutes (MiniSat's ``analyzeFinal``),
``[]`` when the database is unsatisfiable on its own.  The family-solve
path (``repro.asp.reasoning.decide_family``) uses these cores to skip
candidates entailed unsatisfiable by an already-learned core.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.asp.sat import SatSolver


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(any(bits[abs(l) - 1] == (l > 0) for l in c) for c in clauses):
            return True
    return False


class TestFailedCoreBasics:
    def test_sat_solve_leaves_no_core(self):
        solver = SatSolver(2)
        solver.add_clause([1, 2])
        assert solver.solve([1])
        assert solver.failed_assumptions is None

    def test_single_assumption_against_unit(self):
        solver = SatSolver(1)
        solver.add_clause([1])
        assert not solver.solve([-1])
        assert solver.failed_assumptions == [-1]
        # The clause database itself stays satisfiable and reusable.
        assert solver.ok
        assert solver.solve()

    def test_contradictory_assumption_pair(self):
        solver = SatSolver(2)
        assert not solver.solve([1, -1])
        core = solver.failed_assumptions
        assert core is not None and set(core) <= {1, -1}
        # Both sides of the contradiction must be reported: neither alone
        # is refuted by the (empty) clause database.
        assert set(core) == {1, -1}
        assert solver.ok

    def test_core_via_propagation_chain(self):
        # 1 ∧ 2 → chain forces 5; assuming [1, 2, -5] fails and every link
        # must be traced back through the reason clauses to {1, 2, -5}.
        solver = SatSolver(5)
        solver.add_clause([-1, 3])
        solver.add_clause([-2, 4])
        solver.add_clause([-3, -4, 5])
        assert not solver.solve([1, 2, -5])
        assert solver.failed_assumptions == [1, 2, -5]
        assert solver.ok

    def test_core_is_subset_when_assumptions_irrelevant(self):
        # Variable 4 is disconnected: it must not appear in the core.
        solver = SatSolver(4)
        solver.add_clause([-1, 2])
        assert not solver.solve([4, 1, -2])
        core = solver.failed_assumptions
        assert core is not None
        assert 4 not in core
        assert set(core) == {1, -2}

    def test_core_preserves_assumption_order(self):
        solver = SatSolver(3)
        solver.add_clause([-1, 2])
        assert not solver.solve([3, 1, -2])
        # Reported in assumption order for deterministic consumers.
        assert solver.failed_assumptions == [1, -2]

    def test_duplicate_assumptions_not_duplicated_in_core(self):
        solver = SatSolver(1)
        solver.add_clause([1])
        assert not solver.solve([-1, -1])
        assert solver.failed_assumptions == [-1]

    def test_formula_unsat_yields_empty_core(self):
        solver = SatSolver(1)
        solver.add_clause([1])
        solver.add_clause([-1])
        assert not solver.solve([1])
        assert solver.failed_assumptions == []
        assert not solver.ok

    def test_core_cleared_after_subsequent_sat_solve(self):
        solver = SatSolver(2)
        solver.add_clause([1, 2])
        assert not solver.solve([-1, -2])
        assert solver.failed_assumptions == [-1, -2]
        assert solver.solve([-1])
        assert solver.failed_assumptions is None


class TestAssumptionConflictBackjump:
    """Conflicts discovered only after search below the assumptions."""

    def test_core_after_learned_clause_conflict(self):
        # PHP(4,3) with a selector literal guarding every clause: the
        # database alone is satisfiable (selector free), but assuming the
        # selector re-creates the UNSAT pigeonhole instance.  The conflict
        # is found deep in search, through learned clauses, and the final
        # analysis must pin it on the selector.
        pigeons, holes = 4, 3
        selector = pigeons * holes + 1
        solver = SatSolver(selector)
        var = lambda p, h: p * holes + h + 1
        for p in range(pigeons):
            solver.add_clause([-selector] + [var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-selector, -var(p1, h), -var(p2, h)])
        assert not solver.solve([selector])
        assert solver.failed_assumptions == [selector]
        assert solver.ok
        # Without the selector the instance is satisfiable (all guards off).
        assert solver.solve([-selector])
        assert solver.failed_assumptions is None

    def test_unrelated_selector_stays_out_of_core(self):
        # Two guarded sub-formulas; only one is inconsistent.  Assuming
        # both selectors, the core must name just the inconsistent one.
        solver = SatSolver(4)
        good, bad = 3, 4
        solver.add_clause([-good, 1])
        solver.add_clause([-bad, 2])
        solver.add_clause([-bad, -2])
        assert not solver.solve([good, bad])
        assert solver.failed_assumptions == [bad]
        assert solver.solve([good])

    def test_learned_cores_enable_skips_across_calls(self):
        # After one failed solve, the learned clauses make the repeat
        # failure cheap — and the core stays correct on the second call.
        pigeons, holes = 5, 4
        selector = pigeons * holes + 1
        solver = SatSolver(selector)
        var = lambda p, h: p * holes + h + 1
        for p in range(pigeons):
            solver.add_clause([-selector] + [var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-selector, -var(p1, h), -var(p2, h)])
        assert not solver.solve([selector])
        first_conflicts = solver._conflicts_total
        assert not solver.solve([selector])
        assert solver.failed_assumptions == [selector]
        # The second refutation reuses learned clauses instead of redoing
        # the full search.
        assert solver._conflicts_total - first_conflicts <= first_conflicts

    def test_solver_reusable_after_assumption_unsat_mid_sequence(self):
        solver = SatSolver(3)
        solver.add_clause([1, 2, 3])
        solver.add_clause([-1, 2])
        assert not solver.solve([1, -2])
        assert solver.failed_assumptions == [1, -2]
        assert solver.solve([1])
        assert solver.model()[2]
        solver.add_clause([-2, 3])
        assert solver.solve([1])
        assert solver.model()[3]


@settings(max_examples=120, deadline=None)
@given(st.data())
def test_failed_core_is_itself_unsat(data):
    """Random formulas: whenever solve(assumptions) fails with the clause
    database still satisfiable, the reported core — on its own, as unit
    clauses — must be refuted by the same clause database."""
    num_vars = data.draw(st.integers(2, 6))
    num_clauses = data.draw(st.integers(1, 15))
    clauses = []
    for _ in range(num_clauses):
        width = data.draw(st.integers(1, min(3, num_vars)))
        variables = data.draw(
            st.lists(
                st.integers(1, num_vars),
                min_size=width,
                max_size=width,
                unique=True,
            )
        )
        clauses.append([v if data.draw(st.booleans()) else -v for v in variables])
    assumptions = data.draw(
        st.lists(
            st.integers(1, num_vars).map(
                lambda v: v  # sign drawn below to keep shrinking simple
            ),
            min_size=1,
            max_size=num_vars,
            unique=True,
        )
    )
    assumptions = [
        v if data.draw(st.booleans()) else -v for v in assumptions
    ]

    solver = SatSolver(num_vars)
    ok = all(solver.add_clause(c) for c in clauses)
    if not ok:
        return
    result = solver.solve(assumptions)
    expected = brute_force_sat(
        num_vars, clauses + [[lit] for lit in assumptions]
    )
    assert result == expected
    if result:
        assert solver.failed_assumptions is None
        return
    core = solver.failed_assumptions
    assert core is not None
    if not solver.ok:
        assert core == []
        assert not brute_force_sat(num_vars, clauses)
        return
    # Core literals all come from the assumptions...
    assert set(core) <= set(assumptions)
    # ...and the core alone already clashes with the clause database.
    assert not brute_force_sat(num_vars, clauses + [[lit] for lit in core])
