"""Compact vs plain generator encoding: model-for-model equivalence.

Family engines (DESIGN.md §12) build with ``compact=True``: duplicate
rules dropped, single-literal bodies reusing the literal as the body
variable, hash-consed shared bodies, raw bulk clause loading, and a
scaffolded reduct check.  None of that may change the stable models —
these tests cross-check the two encodings on the edge cases the compact
builder special-cases, then sweep random programs.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.asp.stable import StableModelEngine
from repro.asp.syntax import AtomTable, GroundProgram, GroundRule
from repro.relational.instance import Fact


def program_over(num_atoms, rules):
    program = GroundProgram(AtomTable())
    for index in range(num_atoms):
        program.atoms.intern(Fact("A", (index + 1,)))
    program.rules = list(rules)
    return program


def models_both_ways(num_atoms, rules):
    plain = set(
        StableModelEngine(program_over(num_atoms, rules)).stable_models()
    )
    compact = set(
        StableModelEngine(
            program_over(num_atoms, rules), compact=True
        ).stable_models()
    )
    assert compact == plain
    return plain


class TestCompactSpecialCases:
    def test_duplicate_rules_collapse(self):
        rules = [
            GroundRule((1,), (), (2,)),
            GroundRule((1,), (), (2,)),
            GroundRule((2,), (), (1,)),
        ]
        assert models_both_ways(2, rules) == {
            frozenset({1}),
            frozenset({2}),
        }

    def test_shared_bodies_hash_cons(self):
        # Three rules with the identical two-literal body: one beta.
        rules = [
            GroundRule((1,)),
            GroundRule((2,)),
            GroundRule((3,), (1, 2)),
            GroundRule((4,), (1, 2)),
            GroundRule((5,), (1, 2)),
        ]
        assert models_both_ways(5, rules) == {frozenset({1, 2, 3, 4, 5})}

    def test_single_literal_positive_body_is_inlined(self):
        rules = [GroundRule((1,)), GroundRule((2,), (1,)), GroundRule((3,), (2,))]
        assert models_both_ways(3, rules) == {frozenset({1, 2, 3})}

    def test_single_literal_negative_body_is_inlined(self):
        # a :- not b.  b :- not a.  (each body is the single literal ¬x)
        rules = [GroundRule((1,), (), (2,)), GroundRule((2,), (), (1,))]
        assert models_both_ways(2, rules) == {frozenset({1}), frozenset({2})}

    def test_self_supporting_rule_is_tautological(self):
        # a :- a alone cannot found a.
        rules = [GroundRule((1,), (1,))]
        assert models_both_ways(1, rules) == {frozenset()}

    def test_negative_self_dependency_forces_atom(self):
        # a :- not a has no stable model alone...
        assert models_both_ways(1, [GroundRule((1,), (), (1,))]) == set()
        # ...but a :- not a with b :- a, a :- b still has none (a would
        # need itself false), exercising the unit-clause branch.
        rules = [
            GroundRule((1,), (), (1,)),
            GroundRule((2,), (1,)),
        ]
        assert models_both_ways(2, rules) == set()

    def test_contradictory_body_never_fires(self):
        # c :- a, not a is inert; a :- not b picks a.
        rules = [
            GroundRule((3,), (1,), (1,)),
            GroundRule((1,), (), (2,)),
        ]
        assert models_both_ways(3, rules) == {frozenset({1})}

    def test_disjunctive_empty_body(self):
        # a | b. with minimality: two models.  The empty body maps to the
        # permanently-true variable; exclusive-support sigmas guard it.
        rules = [GroundRule((1, 2))]
        assert models_both_ways(2, rules) == {frozenset({1}), frozenset({2})}

    def test_disjunctive_duplicate_head_atoms(self):
        rules = [GroundRule((1, 1, 2))]
        assert models_both_ways(2, rules) == {frozenset({1}), frozenset({2})}

    def test_head_containing_body_literal(self):
        # a | b :- a is tautological under the single-literal body inline.
        rules = [GroundRule((1, 2), (1,)), GroundRule((1,), (), (2,))]
        assert models_both_ways(2, rules) == {frozenset({1})}

    def test_positive_loop_needs_loop_formula(self):
        # a :- b. b :- a. a :- not c. c :- not a.  The {a, b} loop must
        # not self-support under the compact encoding either.
        rules = [
            GroundRule((1,), (2,)),
            GroundRule((2,), (1,)),
            GroundRule((1,), (), (3,)),
            GroundRule((3,), (), (1,)),
        ]
        assert models_both_ways(3, rules) == {
            frozenset({1, 2}),
            frozenset({3}),
        }

    def test_constraints_prune_models(self):
        # Even loop plus a constraint killing one branch.
        rules = [
            GroundRule((1,), (), (2,)),
            GroundRule((2,), (), (1,)),
            GroundRule((), (1,)),
        ]
        assert models_both_ways(2, rules) == {frozenset({2})}


@st.composite
def small_programs(draw):
    num_atoms = draw(st.integers(min_value=1, max_value=4))
    atoms = st.integers(min_value=1, max_value=num_atoms)
    rules = draw(
        st.lists(
            st.builds(
                GroundRule,
                st.lists(atoms, max_size=2).map(tuple),
                st.lists(atoms, max_size=2).map(tuple),
                st.lists(atoms, max_size=2).map(tuple),
            ),
            min_size=1,
            max_size=6,
        )
    )
    return num_atoms, rules


class TestCompactEquivalenceSweep:
    @settings(max_examples=150, deadline=None)
    @given(small_programs())
    def test_random_programs_agree(self, case):
        num_atoms, rules = case
        models_both_ways(num_atoms, rules)

    def test_exhaustive_two_atom_normal_programs(self):
        # Every subset of the 9 single-head rules over {a, b} with at
        # most one body literal: exact sweep of the inlining paths.
        pool = [
            GroundRule((h,), pos, neg)
            for h in (1, 2)
            for pos, neg in [((), ()), ((1,), ()), ((2,), ()),
                             ((), (1,)), ((), (2,))]
        ]
        for mask in range(1, 2 ** len(pool), 7):  # stride keeps it fast
            rules = [r for i, r in enumerate(pool) if mask >> i & 1]
            models_both_ways(2, rules)
