"""Tests for the relevance-driven grounder."""

from repro.asp.grounder import compute_possible_atoms, ground
from repro.asp.syntax import Comparison, GroundRule, Rule
from repro.relational.instance import Fact, Instance
from repro.relational.queries import Atom
from repro.relational.terms import Const, Variable

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def f(rel, *args):
    return Fact(rel, args)


class TestPossibleAtoms:
    def test_fixpoint(self):
        rules = [
            Rule([Atom("P", (X, Y))], body_pos=[Atom("E", (X, Y))]),
            Rule([Atom("P", (X, Z))], body_pos=[Atom("P", (X, Y)), Atom("P", (Y, Z))]),
        ]
        possible = compute_possible_atoms(rules, Instance([f("E", 1, 2), f("E", 2, 3)]))
        assert f("P", 1, 3) in possible

    def test_disjunctive_heads_all_possible(self):
        rules = [
            Rule([Atom("A", (X,)), Atom("B", (X,))], body_pos=[Atom("E", (X,))]),
        ]
        possible = compute_possible_atoms(rules, Instance([f("E", 1)]))
        assert f("A", 1) in possible and f("B", 1) in possible


class TestGround:
    def test_facts_become_units(self):
        program = ground([], [f("E", 1)])
        assert any(r.is_fact() for r in program.rules)

    def test_rule_instantiation(self):
        rules = [Rule([Atom("P", (X,))], body_pos=[Atom("E", (X,))])]
        program = ground(rules, [f("E", 1), f("E", 2)])
        non_facts = [r for r in program.rules if not r.is_fact()]
        assert len(non_facts) == 2

    def test_comparison_filters_groundings(self):
        rules = [
            Rule(
                [Atom("P", (X, Y))],
                body_pos=[Atom("E", (X,)), Atom("E", (Y,))],
                comparisons=[Comparison("neq", X, Y)],
            )
        ]
        program = ground(rules, [f("E", 1), f("E", 2)])
        heads = {
            program.atoms.fact_of(r.head[0])
            for r in program.rules
            if not r.is_fact() and r.head
        }
        assert heads == {f("P", 1, 2), f("P", 2, 1)}

    def test_impossible_negative_literal_dropped(self):
        rules = [
            Rule(
                [Atom("P", (X,))],
                body_pos=[Atom("E", (X,))],
                body_neg=[Atom("NeverDerived", (X,))],
            )
        ]
        program = ground(rules, [f("E", 1)])
        rule = next(r for r in program.rules if not r.is_fact())
        assert rule.body_neg == ()

    def test_possible_negative_literal_kept(self):
        rules = [
            Rule([Atom("Q", (X,))], body_pos=[Atom("E", (X,))]),
            Rule(
                [Atom("P", (X,))],
                body_pos=[Atom("E", (X,))],
                body_neg=[Atom("Q", (X,))],
            ),
        ]
        program = ground(rules, [f("E", 1)])
        rule = next(
            r
            for r in program.rules
            if r.head and program.atoms.fact_of(r.head[0]).relation == "P"
        )
        assert len(rule.body_neg) == 1

    def test_tautologies_dropped(self):
        rules = [Rule([Atom("P", (X, X))], body_pos=[Atom("P", (X, X))])]
        program = ground(rules, [f("P", 1, 1)])
        assert all(r.is_fact() for r in program.rules)

    def test_constraint_grounding(self):
        rules = [Rule([], body_pos=[Atom("E", (X, X))])]
        program = ground(rules, [f("E", 1, 1), f("E", 1, 2)])
        constraints = [r for r in program.rules if r.is_constraint()]
        assert len(constraints) == 1

    def test_constant_in_rule(self):
        rules = [
            Rule([Atom("P", (X,))], body_pos=[Atom("E", (Const(1), X))]),
        ]
        program = ground(rules, [f("E", 1, "a"), f("E", 2, "b")])
        heads = {
            program.atoms.fact_of(r.head[0])
            for r in program.rules
            if not r.is_fact() and r.head
        }
        assert heads == {f("P", "a")}


class TestGroundWithStableModels:
    def test_three_coloring(self):
        """Ground + solve a classic guess-and-check program."""
        from repro.asp.reasoning import brave_consequences
        from repro.asp.stable import StableModelEngine

        X1, Y1 = Variable("u"), Variable("v")
        color_rules = [
            Rule(
                [Atom("col", (X1, Const(c)))],
                body_pos=[Atom("node", (X1,))],
                body_neg=[
                    Atom("col", (X1, Const(other)))
                    for other in ("r", "g", "b")
                    if other != c
                ],
            )
            for c in ("r", "g", "b")
        ]
        conflict = Rule(
            [],
            body_pos=[
                Atom("edge", (X1, Y1)),
                Atom("col", (X1, Z)),
                Atom("col", (Y1, Z)),
            ],
        )
        facts = [f("node", n) for n in "abc"] + [
            f("edge", "a", "b"),
            f("edge", "b", "c"),
            f("edge", "a", "c"),
        ]
        program = ground(color_rules + [conflict], facts)
        engine = StableModelEngine(program)
        models = list(engine.stable_models())
        assert len(models) == 6  # 3! proper colorings of a triangle

    def test_unsatisfiable_coloring(self):
        """K4 is not 2-colorable."""
        from repro.asp.stable import StableModelEngine

        U, V, C = Variable("u"), Variable("v"), Variable("c")
        rules = [
            Rule(
                [Atom("col", (U, Const("r"))), Atom("col", (U, Const("g")))],
                body_pos=[Atom("node", (U,))],
            ),
            Rule(
                [],
                body_pos=[Atom("edge", (U, V)), Atom("col", (U, C)), Atom("col", (V, C))],
            ),
        ]
        nodes = "abcd"
        facts = [f("node", n) for n in nodes] + [
            f("edge", a, b) for a in nodes for b in nodes if a < b
        ]
        program = ground(rules, facts)
        assert list(StableModelEngine(program).stable_models()) == []
