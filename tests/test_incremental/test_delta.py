"""Tests for source deltas and the textual update-stream format."""

import pytest

from repro.incremental import (
    Delta,
    apply_delta,
    parse_update_stream,
    render_update_stream,
)
from repro.relational import Fact, Instance


def f(rel, *args):
    return Fact(rel, args)


class TestDelta:
    def test_apply_semantics(self):
        instance = Instance([f("R", "a"), f("R", "b")])
        delta = Delta(
            inserts=frozenset({f("R", "c")}),
            retracts=frozenset({f("R", "b")}),
        )
        assert set(apply_delta(instance, delta)) == {f("R", "a"), f("R", "c")}
        # The original is untouched (reference semantics copies).
        assert set(instance) == {f("R", "a"), f("R", "b")}

    def test_normalized_drops_redundant_operations(self):
        source = Instance([f("R", "a")])
        delta = Delta(
            inserts=frozenset({f("R", "a"), f("R", "b")}),
            retracts=frozenset({f("R", "c")}),
        )
        effective = delta.normalized(source)
        assert effective.inserts == frozenset({f("R", "b")})
        assert effective.retracts == frozenset()

    def test_normalized_insert_wins_over_retract(self):
        source = Instance([f("R", "a")])
        delta = Delta(
            inserts=frozenset({f("R", "a")}),
            retracts=frozenset({f("R", "a")}),
        )
        assert apply_delta(source, delta).__contains__(f("R", "a"))
        assert delta.normalized(source).is_noop()

    def test_inverted_restores_once_normalized(self):
        source = Instance([f("R", "a"), f("R", "b")])
        delta = Delta(
            inserts=frozenset({f("R", "c")}),
            retracts=frozenset({f("R", "b")}),
        ).normalized(source)
        updated = apply_delta(source, delta)
        restored = apply_delta(updated, delta.inverted())
        assert set(restored) == set(source)

    def test_support_facts(self):
        delta = Delta(
            inserts=frozenset({f("R", "a")}),
            retracts=frozenset({f("R", "b")}),
        )
        assert delta.support_facts() == frozenset({f("R", "a"), f("R", "b")})


class TestStreamFormat:
    def test_parse_steps_comments_and_blanks(self):
        deltas = parse_update_stream(
            """
            % a comment
            +R('a', 'b').
            -S('c').   % trailing comment

            +R('d', 'e').
            """
        )
        assert len(deltas) == 2
        assert deltas[0].inserts == frozenset({f("R", "a", "b")})
        assert deltas[0].retracts == frozenset({f("S", "c")})
        assert deltas[1] == Delta(inserts=frozenset({f("R", "d", "e")}))

    def test_parse_rejects_unmarked_lines(self):
        with pytest.raises(ValueError, match="must start with"):
            parse_update_stream("R('a').")

    def test_round_trip(self):
        deltas = [
            Delta(
                inserts=frozenset({f("R", "a", "b"), f("R", "c", "d")}),
                retracts=frozenset({f("S", "e")}),
            ),
            Delta(retracts=frozenset({f("R", "a", "b")})),
        ]
        assert parse_update_stream(render_update_stream(deltas)) == deltas

    def test_render_skips_empty_steps(self):
        deltas = [Delta(), Delta(inserts=frozenset({f("R", "a")}))]
        rendered = render_update_stream(deltas)
        assert parse_update_stream(rendered) == [deltas[1]]
