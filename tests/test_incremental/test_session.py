"""Update-session behavior plus the delta-chase algebra properties.

The property tests are the satellite contract of PR 7: applying a delta
and then its inverse restores the exchange state exactly;
``chase(I ∪ Δ) == delta_chase(chase(I), Δ)`` across fuzz seeds; and
clusters disjoint from a delta's support survive **object-identical**
(the locality guarantee the signature cache's survival rests on).
"""

import pytest

from repro.fuzz.generator import DEFAULT_CONFIG, random_scenario
from repro.fuzz.updates import (
    check_update_seed,
    random_update_stream,
)
from repro.incremental import Delta, apply_delta
from repro.parser import parse_mapping, parse_query
from repro.relational import Fact, Instance
from repro.xr.exchange import violation_key
from repro.xr.segmentary import SegmentaryEngine


def f(rel, *args):
    return Fact(rel, args)


def key_mapping():
    return parse_mapping(
        """
        SOURCE R/2. TARGET P/2.
        R(x, y) -> P(x, y).
        P(x, y), P(x, z) -> y = z.
        """
    )


TWO_CLUSTERS = [
    f("R", "a", "b"),
    f("R", "a", "c"),  # cluster on key 'a'
    f("R", "d", "e"),
    f("R", "d", "g"),  # cluster on key 'd'
    f("R", "s", "t"),  # safe
]


def fresh_engine(instance_facts):
    return SegmentaryEngine(key_mapping(), Instance(instance_facts))


class TestUpdateSession:
    def test_insert_creates_conflict(self):
        engine = fresh_engine([f("R", "a", "b"), f("R", "s", "t")])
        session = engine.update_session()
        assert len(engine.analysis.clusters) == 0
        report = session.apply(Delta(inserts=frozenset({f("R", "a", "c")})))
        assert report.violations_added == 1
        assert report.clusters_created == 1
        assert len(engine.analysis.clusters) == 1
        assert engine.answer(parse_query("q(x) :- P(x, y).")) == {
            ("a",),
            ("s",),
        }

    def test_retract_dissolves_conflict(self):
        engine = fresh_engine(TWO_CLUSTERS)
        session = engine.update_session()
        assert len(engine.analysis.clusters) == 2
        report = session.apply(Delta(retracts=frozenset({f("R", "a", "c")})))
        assert report.violations_removed == 1
        assert len(engine.analysis.clusters) == 1
        # The surviving conflict is the one on key 'd'.
        (cluster,) = engine.analysis.clusters
        assert f("R", "d", "e") in cluster.source_envelope
        answers = engine.answer(parse_query("q(x, y) :- P(x, y)."))
        assert ("a", "b") in answers

    def test_rejects_non_source_relations(self):
        engine = fresh_engine(TWO_CLUSTERS)
        session = engine.update_session()
        with pytest.raises(ValueError, match="non-source relation"):
            session.apply(Delta(inserts=frozenset({f("P", "x", "y")})))

    def test_noop_delta_changes_nothing(self):
        engine = fresh_engine(TWO_CLUSTERS)
        session = engine.update_session()
        before = list(engine.analysis.clusters)
        report = session.apply(
            Delta(
                inserts=frozenset({f("R", "a", "b")}),  # already present
                retracts=frozenset({f("R", "z", "z")}),  # already absent
            )
        )
        assert report.noop
        assert report.cache_invalidated == 0
        assert engine.analysis.clusters == before
        assert session.stats.noop_deltas == 1

    def test_engine_stats_track_updates(self):
        engine = fresh_engine(TWO_CLUSTERS)
        session = engine.update_session()
        assert engine.exchange_stats.source_facts == 5
        session.apply(Delta(inserts=frozenset({f("R", "n", "m")})))
        assert engine.exchange_stats.source_facts == 6
        assert engine.exchange_stats.chased_facts == len(engine.data.chased)

    def test_cluster_locality_object_identity(self):
        engine = fresh_engine(TWO_CLUSTERS)
        session = engine.update_session()
        by_key = {
            min(c.source_envelope, key=repr).args[0]: c
            for c in engine.analysis.clusters
        }
        untouched_before = by_key["a"]
        session.apply(Delta(retracts=frozenset({f("R", "d", "g")})))
        (survivor,) = engine.analysis.clusters
        assert survivor is untouched_before
        assert survivor.index == untouched_before.index


def _state_snapshot(engine):
    return (
        frozenset(engine.data.chased),
        frozenset(
            (rule.label, body, head) for rule, body, head in engine.data.groundings
        ),
        frozenset(violation_key(v) for v in engine.data.violations),
        frozenset(
            frozenset(violation_key(v) for v in cluster.violations)
            for cluster in engine.analysis.clusters
        ),
        frozenset(engine.analysis.safe_source),
        frozenset(engine.analysis.safe_chased),
    )


PROPERTY_SEEDS = range(6)


class TestDeltaChaseAlgebra:
    @pytest.mark.parametrize("seed", PROPERTY_SEEDS)
    def test_apply_then_invert_restores_state(self, seed):
        scenario = random_scenario(seed, DEFAULT_CONFIG)
        deltas = random_update_stream(seed, scenario, 5, DEFAULT_CONFIG)
        engine = SegmentaryEngine(scenario.mapping, scenario.instance.copy())
        session = engine.update_session()
        baseline = _state_snapshot(engine)
        for delta in deltas:
            effective = delta.normalized(engine.data.source_instance)
            session.apply(effective)
            session.apply(effective.inverted())
            assert _state_snapshot(engine) == baseline
        engine.close()

    @pytest.mark.parametrize("seed", PROPERTY_SEEDS)
    def test_delta_chase_commutes_with_chase(self, seed):
        # check_update_seed compares the warm incremental engine against a
        # from-scratch exchange of the updated instance at every step —
        # chased facts, groundings, violations, clusters, envelopes, safe
        # split, and both answer modes.
        assert check_update_seed(seed, DEFAULT_CONFIG, steps=6) == []

    @pytest.mark.parametrize("seed", PROPERTY_SEEDS)
    def test_surviving_cluster_ids_are_object_identical(self, seed):
        scenario = random_scenario(seed, DEFAULT_CONFIG)
        deltas = random_update_stream(seed, scenario, 6, DEFAULT_CONFIG)
        engine = SegmentaryEngine(scenario.mapping, scenario.instance.copy())
        session = engine.update_session()
        for delta in deltas:
            before = {c.index: c for c in engine.analysis.clusters}
            session.apply(delta)
            for cluster in engine.analysis.clusters:
                if cluster.index in before:
                    assert cluster is before[cluster.index]
        engine.close()
