"""Cache-invalidation edge cases under incremental updates.

The signature-program cache keys entries by cluster-id sets; the update
session retires the ids of clusters an update touched.  These tests pin
the boundary cases: clusters merging under an insertion, a merged cluster
splitting under retraction, retraction emptying a cluster, and the no-op
delta — which must invalidate *nothing* and keep a warm engine's hit rate
at 100%.
"""

from repro.incremental import Delta
from repro.parser import parse_mapping, parse_query
from repro.relational import Fact, Instance
from repro.xr.segmentary import SegmentaryEngine


def f(rel, *args):
    return Fact(rel, args)


def bridge_mapping():
    # B(x, y) derives into both keys at once, so one inserted B-fact can
    # entangle two previously independent conflict clusters.
    return parse_mapping(
        """
        SOURCE R/2, B/2.
        TARGET P/2.
        R(x, y) -> P(x, y).
        B(x, y) -> P(x, y), P(y, x).
        P(x, y), P(x, z) -> y = z.
        """
    )


TWO_CONFLICTS = [
    f("R", "a", "b"),
    f("R", "a", "c"),
    f("R", "d", "e"),
    f("R", "d", "g"),
]

QUERY = parse_query("q(x, y) :- P(x, y).")


def warm_engine(instance_facts):
    """An engine with the exchange done and the cache warmed by a query."""
    engine = SegmentaryEngine(bridge_mapping(), Instance(instance_facts))
    engine.answer(QUERY)
    assert len(engine.cache) > 0
    return engine


def reference_answers(instance_facts, mode="certain"):
    with SegmentaryEngine(
        bridge_mapping(), Instance(instance_facts)
    ) as engine:
        if mode == "possible":
            return engine.possible_answers(QUERY)
        return engine.answer(QUERY)


class TestClusterMerge:
    def test_insertion_merges_clusters_and_retires_both_ids(self):
        engine = warm_engine(TWO_CONFLICTS)
        session = engine.update_session()
        old_ids = {c.index for c in engine.analysis.clusters}
        assert len(old_ids) == 2
        report = session.apply(Delta(inserts=frozenset({f("B", "a", "d")})))
        assert len(engine.analysis.clusters) == 1
        (merged,) = engine.analysis.clusters
        assert merged.index not in old_ids
        assert set(report.retired_cluster_ids) == old_ids
        assert report.cache_invalidated > 0
        updated = TWO_CONFLICTS + [f("B", "a", "d")]
        assert engine.answer(QUERY) == reference_answers(updated)


class TestClusterSplit:
    def test_retraction_splits_merged_cluster(self):
        merged_facts = TWO_CONFLICTS + [f("B", "a", "d")]
        engine = warm_engine(merged_facts)
        session = engine.update_session()
        (merged,) = engine.analysis.clusters
        report = session.apply(Delta(retracts=frozenset({f("B", "a", "d")})))
        assert len(engine.analysis.clusters) == 2
        assert merged.index in report.retired_cluster_ids
        assert all(
            c.index != merged.index for c in engine.analysis.clusters
        )
        assert engine.answer(QUERY) == reference_answers(TWO_CONFLICTS)


class TestClusterEmptied:
    def test_retraction_emptying_a_cluster_invalidates_its_entries(self):
        engine = warm_engine(TWO_CONFLICTS)
        session = engine.update_session()
        before = len(engine.analysis.clusters)
        report = session.apply(Delta(retracts=frozenset({f("R", "a", "c")})))
        assert len(engine.analysis.clusters) == before - 1
        assert report.clusters_retired >= 1
        assert report.cache_invalidated > 0
        remaining = [fact for fact in TWO_CONFLICTS if fact != f("R", "a", "c")]
        assert engine.answer(QUERY) == reference_answers(remaining)

    def test_unaffected_cluster_entries_survive(self):
        engine = warm_engine(TWO_CONFLICTS)
        session = engine.update_session()
        # Kill the 'd' conflict; everything the query needs about the 'a'
        # cluster is still cached, and the now-safe facts need no solving.
        session.apply(Delta(retracts=frozenset({f("R", "d", "g")})))
        answers = engine.answer(QUERY)
        stats = engine.last_query_stats
        assert stats.programs_solved == 0
        remaining = [fact for fact in TWO_CONFLICTS if fact != f("R", "d", "g")]
        assert answers == reference_answers(remaining)


class TestNoopDelta:
    def test_noop_invalidates_nothing_and_hit_rate_stays_full(self):
        engine = warm_engine(TWO_CONFLICTS)
        session = engine.update_session()
        entries_before = len(engine.cache)
        report = session.apply(
            Delta(
                inserts=frozenset({f("R", "a", "b")}),
                retracts=frozenset({f("R", "z", "z")}),
            )
        )
        assert report.noop
        assert report.cache_invalidated == 0
        assert len(engine.cache) == entries_before
        warm = engine.answer(QUERY)
        stats = engine.last_query_stats
        assert stats.programs_solved == 0
        assert stats.cache_hits > 0
        assert warm == reference_answers(TWO_CONFLICTS)

    def test_possible_answers_also_correct_after_updates(self):
        engine = warm_engine(TWO_CONFLICTS)
        session = engine.update_session()
        session.apply(Delta(inserts=frozenset({f("B", "a", "d")})))
        session.apply(Delta(retracts=frozenset({f("R", "a", "c")})))
        updated = [
            fact for fact in TWO_CONFLICTS if fact != f("R", "a", "c")
        ] + [f("B", "a", "d")]
        assert engine.possible_answers(QUERY) == reference_answers(
            updated, mode="possible"
        )
