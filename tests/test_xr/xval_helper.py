"""Compatibility shim — the cross-validation helper moved into the library.

The generator and checker now live in :mod:`repro.fuzz.xval` (seed-stable,
frozen); richer fuzzing profiles are in :mod:`repro.fuzz.generator`.  This
module re-exports the historical names so existing imports and the ad-hoc
``python tests/test_xr/xval_helper.py [start] [count]`` invocation keep
working.
"""

from repro.fuzz.xval import (  # noqa: F401
    CONSTS,
    SOURCE_RELATIONS,
    TARGET_RELATIONS,
    VARS,
    check_scenario,
    random_atom,
    random_scenario,
    xval_scenario,
)

if __name__ == "__main__":
    import runpy

    runpy.run_module("repro.fuzz.xval", run_name="__main__")
