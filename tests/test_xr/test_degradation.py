"""Graceful degradation under budgets and injected faults (engine level).

The contract under test (DESIGN §9): with ``allow_partial=True`` a budget
can only move candidates into the *unknown* set, never flip a verdict —
degraded-certain ⊆ exact-certain ⊆ degraded-certain ∪ unknown, and
exact-possible ⊆ degraded-possible ⊆ exact-possible ∪ unknown.  Without a
budget, behavior is bit-identical to the pre-budget engine.
"""

import time

import pytest

from repro.fuzz.faults import FaultInjectingExecutor, FaultPlan
from repro.parser import parse_mapping, parse_query
from repro.relational import Fact, Instance
from repro.runtime import (
    SequentialExecutor,
    SignatureProgramCache,
    SolveBudget,
    SolveBudgetExceeded,
)
from repro.xr.monolithic import MonolithicEngine
from repro.xr.segmentary import SegmentaryEngine


def key_mapping():
    return parse_mapping(
        """
        SOURCE R/2. TARGET P/2.
        R(x, y) -> P(x, y).
        P(x, y), P(x, z) -> y = z.
        """
    )


def two_cluster_instance() -> Instance:
    """Two structurally-distinct key-violation clusters (so the query
    phase builds two signature programs) plus one safe fact."""
    return Instance(
        [
            Fact("R", ("k0", "v0")), Fact("R", ("k0", "v1")),
            Fact("R", ("k1", "v0")), Fact("R", ("k1", "v1")),
            Fact("R", ("k1", "v2")),
            Fact("R", ("safe", "v")),
        ]
    )


QUERY = "q(x) :- P(x, y)."
EXACT = {("k0",), ("k1",), ("safe",)}  # certain == possible here

HANG_PLAN = FaultPlan(hang_on=frozenset({0}), hang_seconds=30.0)
TIGHT = SolveBudget(deadline=1.0, task_timeout=0.4, max_retries=1,
                    retry_backoff=0.01)


def degraded_engine(plan: FaultPlan, budget: SolveBudget, **kwargs):
    executor = FaultInjectingExecutor(plan, jobs=2, deadline_grace=0.25)
    return executor, SegmentaryEngine(
        key_mapping(), two_cluster_instance(),
        executor=executor, budget=budget, **kwargs
    )


class TestSegmentaryDegradation:
    def test_hang_degrades_to_sound_partial_certain_answers(self):
        query = parse_query(QUERY)
        executor, engine = degraded_engine(HANG_PLAN, TIGHT, cache=False)
        with executor, engine:
            started = time.perf_counter()
            answers, stats = engine.answer_with_stats(
                query, mode="certain", allow_partial=True
            )
            elapsed = time.perf_counter() - started
        assert stats.degraded
        assert stats.timeouts >= 1
        assert stats.unknown_candidates  # the hung group, reported not dropped
        assert answers < EXACT  # sound under-approximation, strictly partial
        assert ("safe",) in answers  # trivially-certain floor survives
        assert answers | stats.unknown_candidates >= EXACT  # nothing vanished
        assert elapsed < 10.0  # bounded by the deadline, not the 30s hang

    def test_hang_degrades_to_sound_partial_possible_answers(self):
        query = parse_query(QUERY)
        executor, engine = degraded_engine(HANG_PLAN, TIGHT, cache=False)
        with executor, engine:
            answers, stats = engine.answer_with_stats(
                query, mode="possible", allow_partial=True
            )
        assert stats.degraded
        # Possible mode conservatively *includes* the unknowns.
        assert answers >= EXACT
        assert answers <= EXACT | stats.unknown_candidates

    def test_allow_partial_false_raises(self):
        query = parse_query(QUERY)
        executor, engine = degraded_engine(HANG_PLAN, TIGHT, cache=False)
        with executor, engine:
            with pytest.raises(SolveBudgetExceeded):
                engine.answer(query)

    def test_unknowns_are_never_cached(self):
        query = parse_query(QUERY)
        cache = SignatureProgramCache()
        executor, engine = degraded_engine(HANG_PLAN, TIGHT, cache=cache)
        with executor, engine:
            degraded, stats = engine.answer_with_stats(
                query, mode="certain", allow_partial=True
            )
        assert stats.degraded
        # A clean engine sharing the same cache must still solve the
        # skipped group itself and reach the exact answers: a timeout must
        # not have been recorded as a verdict.
        with SegmentaryEngine(
            key_mapping(), two_cluster_instance(), cache=cache
        ) as clean:
            exact = clean.answer(query)
            assert clean.last_query_stats.programs_solved >= 1
        assert exact == EXACT

    def test_crash_with_retries_is_invisible(self):
        query = parse_query(QUERY)
        plan = FaultPlan(crash_on=frozenset({0, 1}), crash_attempts=1)
        budget = SolveBudget(max_retries=2, retry_backoff=0.01)
        executor, engine = degraded_engine(plan, budget, cache=True)
        with executor, engine:
            answers, stats = engine.answer_with_stats(
                query, mode="certain", allow_partial=True
            )
            assert answers == EXACT
            assert not stats.degraded
            assert stats.retries >= 1
            # The post-recovery cache is as good as a clean one: a repeat
            # query is answered entirely from it.
            again, warm_stats = engine.answer_with_stats(
                query, mode="certain", allow_partial=True
            )
        assert again == EXACT
        assert warm_stats.programs_solved == 0

    def test_no_budget_is_bit_identical(self):
        query = parse_query(QUERY)
        with SegmentaryEngine(key_mapping(), two_cluster_instance()) as engine:
            answers, stats = engine.answer_with_stats(query, mode="certain")
        assert answers == EXACT
        assert not stats.degraded
        assert stats.timeouts == stats.retries == 0
        assert stats.unknown_candidates == set()


class TestExecutorOwnership:
    def test_engine_closes_the_executor_it_created(self):
        engine = SegmentaryEngine(
            key_mapping(), two_cluster_instance(), jobs=2
        )
        assert engine._owns_executor
        with engine:
            pass  # exchange not even run; close must still be safe

    def test_engine_leaves_a_shared_executor_open(self):
        class Spy(SequentialExecutor):
            closed = False

            def close(self):
                self.closed = True

        spy = Spy()
        with SegmentaryEngine(
            key_mapping(), two_cluster_instance(), executor=spy
        ) as engine:
            assert not engine._owns_executor
        assert not spy.closed  # the owner (this test) closes it, not the engine
        spy.close()


class TestMonolithicDegradation:
    def test_budget_cutoff_reports_unknowns(self):
        query = parse_query(QUERY)
        budget = SolveBudget(task_timeout=1e-9)
        engine = MonolithicEngine(key_mapping(), two_cluster_instance(),
                                  budget=budget)
        certain = engine.answer(query, allow_partial=True)
        assert engine.last_stats.degraded
        unknown = engine.last_stats.unknown_candidates
        assert certain <= EXACT
        assert certain | unknown >= EXACT
        possible = engine.possible_answers(query, allow_partial=True)
        assert possible >= EXACT
        assert possible <= EXACT | engine.last_stats.unknown_candidates

    def test_allow_partial_false_raises(self):
        query = parse_query(QUERY)
        engine = MonolithicEngine(key_mapping(), two_cluster_instance(),
                                  budget=SolveBudget(task_timeout=1e-9))
        with pytest.raises(SolveBudgetExceeded):
            engine.answer(query)

    def test_no_budget_is_exact(self):
        query = parse_query(QUERY)
        engine = MonolithicEngine(key_mapping(), two_cluster_instance())
        assert engine.answer(query) == EXACT
        assert not engine.last_stats.degraded
