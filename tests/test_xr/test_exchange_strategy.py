"""The batch-vs-tuple differential battery (PR 10 satellite 1).

``build_exchange_data(strategy="batch")`` must be **bit-identical** to
``strategy="tuple"`` — same chased instance, same canonical grounding and
violation lists, same interned id universe and adjacency arrays, same
cluster partition — across the fuzz corpus, freeform/iBench fuzz seeds,
and the TPC-H grid.  The full-engine cross-check (answers under either
strategy, including the ``segmentary-*-exchange`` axis inside
``run_differential``) rides on top.
"""

from dataclasses import replace
from pathlib import Path

import pytest

from repro.fuzz.corpus import load_corpus
from repro.fuzz.differential import run_differential
from repro.fuzz.generator import DEFAULT_CONFIG, random_scenario
from repro.reduction.reduce import reduce_mapping
from repro.scenarios.tpch import tpch_scenario
from repro.xr.envelope import analyze_envelopes
from repro.xr.exchange import EXCHANGE_STRATEGIES, build_exchange_data

CORPUS_DIR = Path(__file__).resolve().parents[1] / "corpus"

#: Every strategy-sensitive artifact of the exchange computation.
COMPARED_FIELDS = (
    "groundings",
    "violations",
    "supports_of",
    "occurs_in_body_of",
    "fact_ids",
    "facts_by_id",
    "grounding_bodies",
    "grounding_heads",
)


def assert_identical_exchange(mapping, instance, label):
    gav = mapping if mapping.is_gav_gav_egd() else reduce_mapping(mapping).gav
    results = {
        strategy: build_exchange_data(gav, instance, strategy=strategy)
        for strategy in EXCHANGE_STRATEGIES
    }
    batch, reference = results["batch"], results["tuple"]
    # The Instance's iteration order is incidental (chase insertion
    # order); the canonical order lives in the interned universe
    # (``facts_by_id``), compared below.
    assert set(batch.chased) == set(reference.chased), f"{label}: chased"
    for name in COMPARED_FIELDS:
        assert getattr(batch, name) == getattr(reference, name), f"{label}: {name}"
    batch_clusters = {
        frozenset(map(repr, c.violations))
        for c in analyze_envelopes(batch).clusters
    }
    reference_clusters = {
        frozenset(map(repr, c.violations))
        for c in analyze_envelopes(reference).clusters
    }
    assert batch_clusters == reference_clusters, f"{label}: clusters"


class TestFuzzSeeds:
    @pytest.mark.parametrize("seed", range(25))
    def test_freeform_and_mixed_seeds(self, seed):
        scenario = random_scenario(seed, DEFAULT_CONFIG)
        assert_identical_exchange(
            scenario.mapping, scenario.instance, f"seed {seed}"
        )

    @pytest.mark.parametrize("seed", (0, 3, 11, 17, 29))
    def test_ibench_seeds(self, seed):
        config = replace(DEFAULT_CONFIG, profile="ibench")
        scenario = random_scenario(seed, config)
        assert_identical_exchange(
            scenario.mapping, scenario.instance, f"ibench seed {seed}"
        )


class TestCorpusAndTpch:
    def test_checked_in_corpus(self):
        entries = load_corpus(CORPUS_DIR)
        assert entries
        for path, scenario in entries:
            assert_identical_exchange(
                scenario.mapping, scenario.instance, path.name
            )

    @pytest.mark.parametrize(
        "scale,ratio,seed",
        [(0.002, 0.0, 0), (0.005, 0.2, 1), (0.005, 0.5, 2), (0.01, 0.2, 0)],
    )
    def test_tpch_grid(self, scale, ratio, seed):
        scenario = tpch_scenario(scale, ratio, seed)
        assert_identical_exchange(
            scenario.mapping, scenario.instance,
            f"tpch sf={scale} r={ratio} seed={seed}",
        )


class TestEngineCross:
    def test_run_differential_covers_both_strategies(self):
        """The differential harness itself runs a cross-strategy engine
        axis; a clean report therefore certifies answer-level agreement."""
        config = replace(
            DEFAULT_CONFIG, use_oracle=False, check_parallel=False
        )
        scenario = random_scenario(12, config)
        report = run_differential(scenario, config)
        assert any(
            name.startswith("segmentary-tuple-exchange")
            for name in report.engines
        )
        assert report.ok, "; ".join(str(d) for d in report.discrepancies)

    def test_tuple_strategy_config_flips_cross_axis(self):
        config = replace(
            DEFAULT_CONFIG, use_oracle=False, check_parallel=False,
            exchange_strategy="tuple",
        )
        scenario = random_scenario(12, config)
        report = run_differential(scenario, config)
        assert any(
            name.startswith("segmentary-batch-exchange")
            for name in report.engines
        )
        assert report.ok, "; ".join(str(d) for d in report.discrepancies)
