"""Scrape-overlap regression tests for engine stats publication.

The serving tier scrapes ``/metrics`` and ``/healthz`` from their own
threads while queries and updates are in flight, which turns the
engine's stats attributes into concurrently-read shared state:

- ``last_query_stats`` is copy-on-publish (one assignment of a fresh
  deep copy) — a scraper must only ever see a complete snapshot, and
  the copy it gets must share **no mutable containers** with the
  engine's own (aliasing would let a later query mutate what the
  scraper holds);
- ``exchange_stats`` is rebuilt by ``refresh_exchange_stats`` after
  every applied delta — also copy-on-publish, so a scraper reading
  multiple fields mid-update sees either the old snapshot or the new
  one, never a torn mix;
- the one-time ``exchange()`` may be triggered by several first
  queries at once and must materialize exactly once.
"""

from __future__ import annotations

import sys
import threading

import pytest

from repro.parser import parse_mapping, parse_query
from repro.relational import Fact, Instance
from repro.xr.segmentary import QueryPhaseStats, SegmentaryEngine


def f(rel, *args):
    return Fact(rel, args)


@pytest.fixture(autouse=True)
def _tight_switch_interval():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


@pytest.fixture
def mapping():
    return parse_mapping(
        """
        SOURCE R/2. TARGET P/2.
        R(x, y) -> P(x, y).
        P(x, y), P(x, z) -> y = z.
        """
    )


def conflicted_instance() -> Instance:
    facts = [f("R", "a", "b"), f("R", "a", "c"), f("R", "d", "e")]
    facts += [f("R", f"k{i}", f"v{i}") for i in range(6)]
    return Instance(facts)


def test_stats_copy_shares_no_mutable_state(mapping):
    """The accessor's deep copy must be aliasing-free: mutating what a
    scraper got back can never leak into the engine's snapshot."""
    engine = SegmentaryEngine(mapping, conflicted_instance())
    query = parse_query("q(x) :- P(x, y).")
    engine.answer(query)
    scraped = engine.last_query_stats
    scraped.program_seconds.append(999.0)
    scraped.solver_stats["corrupted"] = 1
    scraped.unknown_candidates.add(("corrupted",))
    fresh = engine.last_query_stats
    assert 999.0 not in fresh.program_seconds
    assert "corrupted" not in fresh.solver_stats
    assert ("corrupted",) not in fresh.unknown_candidates


def test_scrape_thread_never_sees_torn_query_stats(mapping):
    """A scraper hammering ``last_query_stats`` during live queries must
    always get an internally consistent snapshot."""
    engine = SegmentaryEngine(mapping, conflicted_instance())
    queries = [
        parse_query("q(x) :- P(x, y)."),
        parse_query("q(x, y) :- P(x, y)."),
        parse_query("q() :- P(x, y)."),
    ]
    expected = {
        text: engine.answer(query)
        for text, query in zip("abc", queries)
    }
    stop = threading.Event()
    errors: list[BaseException] = []

    def scraper() -> None:
        try:
            while not stop.is_set():
                stats = engine.last_query_stats
                assert isinstance(stats, QueryPhaseStats)
                # Internal consistency: a published snapshot always has
                # its phase totals covering its parts.
                assert stats.candidates >= stats.safe_candidates
                assert stats.seconds >= 0
                assert len(stats.program_seconds) <= max(
                    stats.programs_solved, len(stats.program_seconds)
                )
                # Mutating the copy must be harmless (it is a copy).
                stats.solver_stats["scraper"] = 1
                exchange = engine.exchange_stats
                assert exchange.chased_facts >= exchange.source_facts >= 0
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=scraper) for _ in range(3)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(30):
            for text, query in zip("abc", queries):
                assert engine.answer(query) == expected[text]
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    if errors:
        raise errors[0]
    assert "scraper" not in engine.last_query_stats.solver_stats


def test_scrape_overlapping_updates_sees_no_torn_exchange_stats(mapping):
    """``refresh_exchange_stats`` swaps in a fresh object; a scraper
    overlapping applied deltas reads either the old or the new snapshot
    (source-fact count consistent with either state, never a mix)."""
    engine = SegmentaryEngine(mapping, conflicted_instance())
    session = engine.update_session()
    from repro.incremental import Delta

    extra = f("R", "zz", "zz")
    baseline = engine.exchange_stats.source_facts
    stop = threading.Event()
    errors: list[BaseException] = []

    def scraper() -> None:
        try:
            while not stop.is_set():
                stats = engine.exchange_stats
                # Either pre- or post-delta, never a half-applied count.
                assert stats.source_facts in (baseline, baseline + 1)
                assert stats.chased_facts >= stats.source_facts
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=scraper) for _ in range(3)]
    for thread in threads:
        thread.start()
    try:
        for _ in range(25):
            session.apply(Delta(inserts=frozenset({extra})))
            session.apply(Delta(retracts=frozenset({extra})))
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    if errors:
        raise errors[0]


def test_concurrent_first_queries_materialize_exchange_once(mapping):
    """Racing first queries must trigger exactly one exchange phase."""
    engine = SegmentaryEngine(mapping, conflicted_instance())
    from repro.xr import segmentary as segmentary_module

    calls = []
    original = segmentary_module.build_exchange_data

    def counting(*args, **kwargs):
        calls.append(1)
        return original(*args, **kwargs)

    segmentary_module.build_exchange_data = counting
    try:
        query = parse_query("q(x) :- P(x, y).")
        results: list[set] = [None] * 6  # type: ignore[list-item]
        barrier = threading.Barrier(6)

        def work(index: int) -> None:
            barrier.wait()
            results[index] = engine.answer(query)

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        segmentary_module.build_exchange_data = original
    assert len(calls) == 1
    assert len({frozenset(result) for result in results}) == 1
