"""Tests for the brute-force XR-Certain oracle (Definition 1)."""

import pytest

from repro.parser import parse_mapping, parse_query
from repro.relational import Fact, Instance
from repro.xr.oracle import source_repairs, xr_certain_oracle


def f(rel, *args):
    return Fact(rel, args)


@pytest.fixture
def key_mapping():
    return parse_mapping(
        """
        SOURCE R/2. TARGET P/2.
        R(x, y) -> P(x, y).
        P(x, y), P(x, z) -> y = z.
        """
    )


class TestSourceRepairs:
    def test_consistent_instance_is_its_own_repair(self, key_mapping):
        instance = Instance([f("R", "a", "b")])
        assert source_repairs(instance, key_mapping) == [frozenset(instance)]

    def test_key_conflict_two_repairs(self, key_mapping):
        instance = Instance([f("R", "a", "b"), f("R", "a", "c")])
        repairs = source_repairs(instance, key_mapping)
        assert {frozenset({f("R", "a", "b")}), frozenset({f("R", "a", "c")})} == set(
            repairs
        )

    def test_unaffected_facts_in_every_repair(self, key_mapping):
        instance = Instance(
            [f("R", "a", "b"), f("R", "a", "c"), f("R", "z", "w")]
        )
        for repair in source_repairs(instance, key_mapping):
            assert f("R", "z", "w") in repair

    def test_repairs_are_maximal(self, key_mapping):
        instance = Instance([f("R", "a", "b"), f("R", "a", "c")])
        repairs = source_repairs(instance, key_mapping)
        for repair in repairs:
            assert not any(repair < other for other in repairs)
            assert len(repair) == 1

    def test_empty_instance(self, key_mapping):
        assert source_repairs(Instance(), key_mapping) == [frozenset()]

    def test_size_limit(self, key_mapping):
        instance = Instance(f("R", i, i) for i in range(25))
        with pytest.raises(ValueError, match="limited"):
            source_repairs(instance, key_mapping)


class TestXRCertainOracle:
    def test_consistent_instance_gives_certain_answers(self, key_mapping):
        instance = Instance([f("R", "a", "b")])
        query = parse_query("q(x, y) :- P(x, y).")
        assert xr_certain_oracle(query, instance, key_mapping) == {("a", "b")}

    def test_conflicting_values_drop_out(self, key_mapping):
        instance = Instance([f("R", "a", "b"), f("R", "a", "c")])
        query = parse_query("q(x, y) :- P(x, y).")
        assert xr_certain_oracle(query, instance, key_mapping) == set()

    def test_projection_survives_conflict(self, key_mapping):
        # Both repairs keep some P(a, _): the projection to x is certain.
        instance = Instance([f("R", "a", "b"), f("R", "a", "c")])
        query = parse_query("q(x) :- P(x, y).")
        assert xr_certain_oracle(query, instance, key_mapping) == {("a",)}

    def test_boolean_query(self, key_mapping):
        instance = Instance([f("R", "a", "b"), f("R", "a", "c")])
        query = parse_query("q() :- P(x, y).")
        assert xr_certain_oracle(query, instance, key_mapping) == {()}

    def test_nulls_never_answers(self):
        mapping = parse_mapping(
            """
            SOURCE R/1. TARGET T/2.
            R(x) -> T(x, y).
            """
        )
        query = parse_query("q(x, y) :- T(x, y).")
        assert xr_certain_oracle(query, Instance([f("R", "a")]), mapping) == set()

    def test_example_1_from_paper(self):
        """Example 1: the ideal envelope is smaller than Isuspect, but the
        XR-Certain answers still keep Q(b, c)."""
        mapping = parse_mapping(
            """
            SOURCE P/2, Q/2. TARGET Pp/2, Qp/2.
            P(x, y) -> Pp(x, y).
            Q(x, y) -> Qp(x, y).
            Pp(x, y), Pp(x, y2) -> y = y2.
            Pp(x, y), Pp(x, y2), Qp(y, y2) -> y = y2.
            """
        )
        instance = Instance(
            [f("P", "a", "b"), f("P", "a", "c"), f("Q", "b", "c")]
        )
        query = parse_query("q(x, y) :- Qp(x, y).")
        assert xr_certain_oracle(query, instance, mapping) == {("b", "c")}
