"""Tests for exchange data: quasi-solution, groundings, violations."""

import pytest

from repro.parser import parse_mapping
from repro.reduction import reduce_mapping
from repro.relational import Fact, Instance
from repro.xr.exchange import build_exchange_data, find_violations


def f(rel, *args):
    return Fact(rel, args)


@pytest.fixture
def key_setup():
    mapping = parse_mapping(
        """
        SOURCE R/2. TARGET P/2.
        R(x, y) -> P(x, y).
        P(x, y), P(x, z) -> y = z.
        """
    )
    instance = Instance([f("R", "a", "b"), f("R", "a", "c"), f("R", "d", "e")])
    reduced = reduce_mapping(mapping)
    return build_exchange_data(reduced.gav, instance)


class TestBuildExchangeData:
    def test_quasi_solution_ignores_egds(self, key_setup):
        # Both conflicting P facts coexist in the quasi-solution.
        quasi = key_setup.quasi_solution()
        assert f("P", "a", "b") in quasi and f("P", "a", "c") in quasi

    def test_groundings_indexed(self, key_setup):
        supports = key_setup.supports_of[f("P", "a", "b")]
        assert len(supports) == 1
        _rule, body, head = key_setup.groundings[supports[0]]
        assert body == (f("R", "a", "b"),)
        assert head == f("P", "a", "b")

    def test_occurs_in_body_index(self, key_setup):
        indexes = key_setup.occurs_in_body_of[f("R", "a", "b")]
        heads = {key_setup.groundings[i][2] for i in indexes}
        assert f("P", "a", "b") in heads

    def test_violations_found(self, key_setup):
        assert len(key_setup.violations) == 1
        violation = key_setup.violations[0]
        assert {violation.lhs_value, violation.rhs_value} == {"b", "c"}

    def test_non_gav_mapping_rejected(self):
        mapping = parse_mapping(
            """
            SOURCE R/1. TARGET T/2.
            R(x) -> T(x, y).
            """
        )
        with pytest.raises(ValueError, match="gav"):
            build_exchange_data(mapping, Instance())

    def test_source_and_target_fact_partition(self, key_setup):
        targets = key_setup.target_facts()
        assert all(fact.relation != "R" for fact in targets)
        assert key_setup.source_facts == {
            f("R", "a", "b"), f("R", "a", "c"), f("R", "d", "e"),
        }


class TestFindViolations:
    def test_satisfied_egd_no_violation(self):
        mapping = parse_mapping(
            """
            SOURCE R/2. TARGET P/2.
            R(x, y) -> P(x, y).
            P(x, y), P(x, z) -> y = z.
            """
        )
        reduced = reduce_mapping(mapping)
        data = build_exchange_data(reduced.gav, Instance([f("R", "a", "b")]))
        assert data.violations == []

    def test_constants_only_egd_ignores_skolems(self):
        # One skolem merging with one constant is not a violation.
        mapping = parse_mapping(
            """
            SOURCE R/2, S/2. TARGET T/2.
            R(x, y) -> T(x, z).
            S(x, y) -> T(x, y).
            T(x, y), T(x, z) -> y = z.
            """
        )
        reduced = reduce_mapping(mapping)
        data = build_exchange_data(
            reduced.gav, Instance([f("R", "a", "b"), f("S", "a", "c")])
        )
        assert data.violations == []

    def test_violation_through_skolem_chain(self):
        # Two constants forced together through the null: violation.
        mapping = parse_mapping(
            """
            SOURCE R/2, S/2. TARGET T/2.
            R(x, y) -> T(x, z).
            S(x, y) -> T(x, y).
            T(x, y), T(x, z) -> y = z.
            """
        )
        reduced = reduce_mapping(mapping)
        data = build_exchange_data(
            reduced.gav,
            Instance([f("R", "a", "x"), f("S", "a", "b"), f("S", "a", "c")]),
        )
        values = {
            frozenset((v.lhs_value, v.rhs_value)) for v in data.violations
        }
        assert frozenset(("b", "c")) in values
