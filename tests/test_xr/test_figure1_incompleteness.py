"""The reproduction finding: the literal Figure 1 program misses repairs.

Deleting ``R(c,c)`` repairs the violation below by removing *both* facts of
the violated egd body incidentally (they lose their only supports); no
target fact needs the "deleted" label.  But then no rule supports
``Rd(c,c)`` in the Figure 1 program, so that XR-solution corresponds to no
stable model — the ``¬Ri`` guards withdraw the support of the deletion that
caused the cascade.  The default repair-guess encoding handles it.

This is documented in DESIGN.md §6 and in xr/program.py.
"""

import pytest

from repro.parser import parse_mapping, parse_query
from repro.relational import Fact, Instance
from repro.xr.monolithic import MonolithicEngine
from repro.xr.oracle import source_repairs, xr_certain_oracle


def f(rel, *args):
    return Fact(rel, args)


@pytest.fixture
def scenario():
    mapping = parse_mapping(
        """
        SOURCE R/2, S/2. TARGET U/2, T/2.
        R(x, y), R(z, x) -> U(y, z).
        R(x, x) -> T(x, x).
        R(x, z), S(x, z) -> U(z, z).
        U(y, x) -> U(x, x).
        U(x, u), T(x, z) -> z = u.
        """
    )
    instance = Instance(
        [f("R", "b", "c"), f("R", "c", "c"), f("S", "b", "a"), f("S", "c", "c")]
    )
    query = parse_query("q() :- U(y, z), U(x, x).")
    return mapping, instance, query


class TestFigure1Incompleteness:
    def test_two_repairs_exist(self, scenario):
        mapping, instance, _ = scenario
        repairs = source_repairs(instance, mapping)
        assert len(repairs) == 2  # drop R(b,c) or drop R(c,c)

    def test_oracle_answer_is_empty(self, scenario):
        mapping, instance, query = scenario
        assert xr_certain_oracle(query, instance, mapping) == set()

    def test_repair_encoding_matches_oracle(self, scenario):
        mapping, instance, query = scenario
        engine = MonolithicEngine(mapping, instance, encoding="repair")
        assert engine.answer(query) == set()

    def test_figure1_encoding_overapproximates(self, scenario):
        """The literal Figure 1 program misses the repair that deletes
        R(c,c), so it wrongly reports the Boolean query as certain."""
        mapping, instance, query = scenario
        engine = MonolithicEngine(mapping, instance, encoding="figure1")
        assert engine.answer(query) == {()}

    def test_encodings_agree_on_single_level_mappings(self):
        """On key constraints directly over exchanged facts — the shape of
        the genomics benchmark conflicts — both encodings agree."""
        mapping = parse_mapping(
            """
            SOURCE R/2. TARGET P/2.
            R(x, y) -> P(x, y).
            P(x, y), P(x, z) -> y = z.
            """
        )
        instance = Instance(
            [f("R", "a", "b"), f("R", "a", "c"), f("R", "d", "e")]
        )
        for text in ("q(x) :- P(x, y).", "q(x, y) :- P(x, y).", "q() :- P(x, y)."):
            query = parse_query(text)
            oracle = xr_certain_oracle(query, instance, mapping)
            repair = MonolithicEngine(mapping, instance, encoding="repair")
            figure1 = MonolithicEngine(mapping, instance, encoding="figure1")
            assert repair.answer(query) == figure1.answer(query) == oracle

    def test_unknown_encoding_rejected(self, scenario):
        mapping, instance, query = scenario
        engine = MonolithicEngine(mapping, instance, encoding="bogus")
        with pytest.raises(ValueError, match="unknown encoding"):
            engine.answer(query)
