"""Tests for the ground XR program builders."""

import pytest

from repro.asp.stable import StableModelEngine
from repro.parser import parse_mapping
from repro.reduction import reduce_mapping
from repro.relational import Fact, Instance
from repro.xr.exchange import build_exchange_data
from repro.xr.program import (
    build_figure1_program,
    build_repair_program,
    build_xr_program,
)
from repro.xr.subscripts import deleted, remains


def f(rel, *args):
    return Fact(rel, args)


def key_data(facts):
    mapping = parse_mapping(
        """
        SOURCE R/2. TARGET P/2.
        R(x, y) -> P(x, y).
        P(x, y), P(x, z) -> y = z.
        """
    )
    reduced = reduce_mapping(mapping)
    return build_exchange_data(reduced.gav, Instance(facts))


class TestRepairProgram:
    def test_stable_models_are_repairs(self):
        data = key_data([f("R", "a", "b"), f("R", "a", "c"), f("R", "d", "e")])
        xr = build_repair_program(data)
        models = list(StableModelEngine(xr.program).stable_models())
        assert len(models) == 2
        deletions = {
            frozenset(
                fact
                for fact in (f("R", "a", "b"), f("R", "a", "c"))
                if xr.program.atoms.id_of(deleted(fact)) in model
            )
            for model in models
        }
        assert deletions == {
            frozenset({f("R", "a", "b")}),
            frozenset({f("R", "a", "c")}),
        }

    def test_non_suspect_sources_not_guessed(self):
        data = key_data([f("R", "a", "b"), f("R", "a", "c"), f("R", "d", "e")])
        xr = build_repair_program(data)
        assert xr.program.atoms.id_of(deleted(f("R", "d", "e"))) is None
        assert xr.program.atoms.id_of(remains(f("R", "d", "e"))) is not None

    def test_consistent_instance_single_model(self):
        data = key_data([f("R", "a", "b")])
        xr = build_repair_program(data)
        models = list(StableModelEngine(xr.program).stable_models())
        assert len(models) == 1
        (model,) = models
        assert xr.program.atoms.id_of(remains(f("P", "a", "b"))) in model

    def test_query_groundings_become_rules(self):
        data = key_data([f("R", "a", "b"), f("R", "a", "c")])
        candidate = f("__q_q", ("a",))
        xr = build_repair_program(
            data,
            query_groundings=[
                (candidate, (f("P", "a", "b"),)),
                (candidate, (f("P", "a", "c"),)),
            ],
        )
        from repro.asp.reasoning import cautious_consequences

        cautious = cautious_consequences(xr.program, xr.query_atoms.values())
        assert xr.query_atoms[candidate] in cautious  # one support per repair

    def test_safe_support_trivially_certain(self):
        data = key_data([f("R", "a", "b")])
        candidate = f("__q_q", ("a",))
        xr = build_repair_program(
            data,
            query_groundings=[(candidate, (f("P", "a", "b"),))],
            focus=set(),
            safe=set(data.chased),
        )
        assert candidate in xr.trivially_certain

    def test_all_safe_violation_rejected(self):
        data = key_data([f("R", "a", "b"), f("R", "a", "c")])
        with pytest.raises(ValueError, match="unrepairable"):
            build_repair_program(data, focus=set(), safe=set(data.chased))


class TestFigure1Program:
    def test_one_of_three_constraints_present(self):
        data = key_data([f("R", "a", "b"), f("R", "a", "c")])
        xr = build_figure1_program(data)
        constraints = [r for r in xr.program.rules if r.is_constraint()]
        # 3 per target fact (2 P facts + EQ machinery facts).
        assert len(constraints) >= 6

    def test_stable_models_match_repairs_on_single_level(self):
        data = key_data([f("R", "a", "b"), f("R", "a", "c")])
        figure1 = build_figure1_program(data)
        repair = build_repair_program(data)
        count_fig1 = len(list(StableModelEngine(figure1.program).stable_models()))
        count_repair = len(list(StableModelEngine(repair.program).stable_models()))
        assert count_fig1 == count_repair == 2

    def test_disjunctive_deletion_rules_emitted(self):
        data = key_data([f("R", "a", "b"), f("R", "a", "c")])
        xr = build_figure1_program(data)
        assert any(r.is_disjunctive() for r in xr.program.rules)


class TestDispatch:
    def test_dispatch(self):
        data = key_data([f("R", "a", "b")])
        assert build_xr_program(data, encoding="repair").program is not None
        assert build_xr_program(data, encoding="figure1").program is not None
        with pytest.raises(ValueError):
            build_xr_program(data, encoding="nope")


class TestQueryAtomInvariants:
    """Pins the contract the segmentary engine's hoisted trivially-certain
    acceptance relies on: every trivially-certain candidate also appears in
    ``query_atoms`` (it is registered first, then classified)."""

    def groundings(self):
        candidate = f("__q_q", ("a",))
        return candidate, [
            (candidate, (f("P", "a", "b"),)),
            (candidate, (f("P", "a", "c"),)),
        ]

    @pytest.mark.parametrize("encoding", ["repair", "figure1"])
    def test_trivially_certain_subset_of_query_atoms(self, encoding):
        data = key_data([f("R", "a", "b"), f("R", "a", "c")])
        _, groundings = self.groundings()
        xr = build_xr_program(data, query_groundings=groundings, encoding=encoding)
        assert xr.trivially_certain <= set(xr.query_atoms)

    def test_safe_support_registered_and_trivially_certain(self):
        data = key_data([f("R", "a", "b")])
        candidate = f("__q_q", ("a",))
        xr = build_repair_program(
            data,
            query_groundings=[(candidate, (f("P", "a", "b"),))],
            focus=set(),
            safe=set(data.chased),
        )
        # Both registrations happen: the atom exists AND is classified.
        assert candidate in xr.query_atoms
        assert candidate in xr.trivially_certain
        assert xr.trivially_certain <= set(xr.query_atoms)
