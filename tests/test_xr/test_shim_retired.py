"""The PR 2 ``xval_helper`` compatibility shim is gone for good.

The cross-validation generator's one true home is :mod:`repro.fuzz.xval`;
this test keeps the retired test-tree shim from creeping back in and
scans the whole tree for stale import paths.
"""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]

#: Any way of importing the retired shim module.
STALE_IMPORT = re.compile(
    r"(from\s+\S*xval_helper\s+import|import\s+\S*xval_helper)"
)


def python_files():
    for root in ("src", "tests", "benchmarks"):
        directory = REPO / root
        if directory.is_dir():
            yield from directory.rglob("*.py")


def test_shim_file_is_deleted():
    assert not (REPO / "tests" / "test_xr" / "xval_helper.py").exists()


def test_no_stale_import_paths_anywhere():
    offenders = [
        str(path.relative_to(REPO))
        for path in python_files()
        if STALE_IMPORT.search(path.read_text())
    ]
    assert offenders == [], f"stale xval_helper imports: {offenders}"


def test_library_home_exports_the_historical_names():
    from repro.fuzz.xval import (  # noqa: F401
        check_scenario,
        random_scenario,
        xval_scenario,
    )
