"""End-to-end tests for the monolithic and segmentary engines."""

import pytest

from repro.parser import parse_mapping, parse_program, parse_query
from repro.relational import Fact, Instance
from repro.xr.monolithic import MonolithicEngine
from repro.xr.oracle import xr_certain_oracle
from repro.xr.segmentary import SegmentaryEngine


def f(rel, *args):
    return Fact(rel, args)


def engines(mapping, instance):
    return [
        MonolithicEngine(mapping, instance),
        SegmentaryEngine(mapping, instance),
    ]


@pytest.fixture
def key_mapping():
    return parse_mapping(
        """
        SOURCE R/2. TARGET P/2.
        R(x, y) -> P(x, y).
        P(x, y), P(x, z) -> y = z.
        """
    )


class TestBothEngines:
    def test_consistent_instance(self, key_mapping):
        instance = Instance([f("R", "a", "b")])
        query = parse_query("q(x, y) :- P(x, y).")
        for engine in engines(key_mapping, instance):
            assert engine.answer(query) == {("a", "b")}

    def test_key_conflict(self, key_mapping):
        instance = Instance([f("R", "a", "b"), f("R", "a", "c"), f("R", "d", "e")])
        cases = {
            "q(x) :- P(x, y).": {("a",), ("d",)},
            "q(x, y) :- P(x, y).": {("d", "e")},
            "q() :- P(x, y).": {()},
        }
        for text, expected in cases.items():
            query = parse_query(text)
            for engine in engines(key_mapping, instance):
                assert engine.answer(query) == expected, (text, type(engine))

    def test_empty_instance(self, key_mapping):
        query = parse_query("q(x) :- P(x, y).")
        for engine in engines(key_mapping, Instance()):
            assert engine.answer(query) == set()

    def test_ucq_answering(self, key_mapping):
        instance = Instance([f("R", "a", "b"), f("R", "a", "c")])
        ucq = parse_program("q(x) :- P(x, y). q(y) :- P(x, y).")
        for engine in engines(key_mapping, instance):
            # x projection certain; neither y value certain.
            assert engine.answer(ucq) == {("a",)}

    def test_null_clustering_certainty(self):
        """Co-clustering through egd-equated nulls (the knownIsoforms shape)."""
        mapping = parse_mapping(
            """
            SOURCE P/1, L/2. TARGET K/2, LL/2.
            P(t) -> K(c, t).
            L(t1, t2) -> LL(t1, t2).
            LL(t1, t2), K(c1, t1), K(c2, t2) -> c1 = c2.
            K(c1, t), K(c2, t) -> c1 = c2.
            """
        )
        instance = Instance(
            [f("P", "t1"), f("P", "t2"), f("P", "t3"), f("L", "t1", "t2")]
        )
        query = parse_query("q(a, b) :- K(c, a), K(c, b).")
        expected = {
            ("t1", "t1"), ("t1", "t2"), ("t2", "t1"), ("t2", "t2"), ("t3", "t3"),
        }
        for engine in engines(mapping, instance):
            assert engine.answer(query) == expected

    def test_matches_oracle_on_example_3(self):
        mapping = parse_mapping(
            """
            SOURCE P/2, Q/2. TARGET R/2, S/2, T/3.
            P(x, y) -> R(x, y).
            Q(x, y) -> S(x, y).
            R(x, y), S(x, z) -> T(x, y, z).
            R(x, y), R(x, y2) -> y = y2.
            S(x, y), S(x, y2) -> y = y2.
            """
        )
        instance = Instance(
            [
                f("P", "a1", "a2"), f("P", "a1", "a3"),
                f("Q", "a1", "a2"), f("Q", "a1", "a3"),
            ]
        )
        for text in ("q(x) :- T(x, y, z).", "q(x, y, z) :- T(x, y, z)."):
            query = parse_query(text)
            expected = xr_certain_oracle(query, instance, mapping)
            for engine in engines(mapping, instance):
                assert engine.answer(query) == expected


class TestSegmentarySpecifics:
    def test_exchange_is_idempotent(self, key_mapping):
        engine = SegmentaryEngine(
            key_mapping, Instance([f("R", "a", "b"), f("R", "a", "c")])
        )
        first = engine.exchange()
        second = engine.exchange()
        assert first is second

    def test_exchange_stats_populated(self, key_mapping):
        engine = SegmentaryEngine(
            key_mapping, Instance([f("R", "a", "b"), f("R", "a", "c")])
        )
        stats = engine.exchange()
        assert stats.source_facts == 2
        assert stats.violations == 1
        assert stats.clusters == 1
        assert stats.suspect_source_facts == 2

    def test_safe_candidates_skip_solving(self, key_mapping):
        engine = SegmentaryEngine(key_mapping, Instance([f("R", "a", "b")]))
        engine.answer(parse_query("q(x) :- P(x, y)."))
        stats = engine.last_query_stats
        assert stats.candidates == 1
        assert stats.safe_candidates == 1
        assert stats.programs_solved == 0

    def test_suspect_candidates_solved_in_small_programs(self, key_mapping):
        instance = Instance(
            [f("R", "a", "b"), f("R", "a", "c")]
            + [f("R", f"k{i}", f"v{i}") for i in range(20)]
        )
        engine = SegmentaryEngine(key_mapping, instance)
        answers = engine.answer(parse_query("q(x) :- P(x, y)."))
        assert len(answers) == 21
        stats = engine.last_query_stats
        assert stats.programs_solved == 1
        # The signature program covers the conflict only, not the 20 safe keys.
        assert stats.largest_program_atoms < 40

    def test_multiple_queries_reuse_exchange(self, key_mapping):
        engine = SegmentaryEngine(
            key_mapping, Instance([f("R", "a", "b"), f("R", "a", "c")])
        )
        engine.answer(parse_query("q(x) :- P(x, y)."))
        seconds = engine.exchange_stats.seconds
        engine.answer(parse_query("q(y) :- P(x, y)."))
        assert engine.exchange_stats.seconds == seconds  # not re-run


class TestMonolithicSpecifics:
    def test_stats_recorded(self, key_mapping):
        engine = MonolithicEngine(
            key_mapping, Instance([f("R", "a", "b"), f("R", "a", "c")])
        )
        engine.answer(parse_query("q(x) :- P(x, y)."))
        assert engine.last_stats.atoms > 0
        assert engine.last_stats.candidates == 1

    def test_accepts_pre_reduced_mapping(self, key_mapping):
        from repro.reduction import reduce_mapping

        reduced = reduce_mapping(key_mapping)
        engine = MonolithicEngine(reduced, Instance([f("R", "a", "b")]))
        assert engine.answer(parse_query("q(x) :- P(x, y).")) == {("a",)}
