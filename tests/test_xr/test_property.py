"""Property-based cross-validation: oracle vs monolithic vs segmentary.

Random small ``glav+(wa-glav, egd)`` scenarios; all three implementations
must agree on the XR-Certain answers.  The seed-driven generator lives in
:mod:`repro.fuzz.xval` (frozen for seed stability) and is also runnable
standalone for long fuzzing sessions; richer generation plus the full
engine-configuration matrix is ``python -m repro fuzz``.
"""

from hypothesis import given, settings, strategies as st

from repro.fuzz.xval import check_scenario, random_scenario


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_engines_agree_with_oracle(seed):
    oracle, monolithic, segmentary = check_scenario(seed)
    assert oracle == monolithic, f"seed={seed}"
    assert oracle == segmentary, f"seed={seed}"


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_scenarios_are_well_formed(seed):
    mapping, instance, query = random_scenario(seed)
    assert mapping.is_weakly_acyclic()
    assert len(instance) <= 7
    assert query.body


def test_known_regression_seeds():
    """Seeds that exposed bugs during development stay fixed.

    The same seeds are serialized into ``tests/corpus/`` (see
    ``repro.fuzz.corpus.XVAL_REGRESSION_SEEDS``) and replayed through the
    full differential matrix by ``tests/test_fuzz/test_corpus.py``.
    """
    from repro.fuzz.corpus import XVAL_REGRESSION_SEEDS

    assert XVAL_REGRESSION_SEEDS == (0, 7, 19, 42, 123, 271)
    for seed in XVAL_REGRESSION_SEEDS:
        oracle, monolithic, segmentary = check_scenario(seed)
        assert oracle == monolithic == segmentary, f"seed={seed}"
