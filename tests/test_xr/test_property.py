"""Property-based cross-validation: oracle vs monolithic vs segmentary.

Random small ``glav+(wa-glav, egd)`` scenarios; all three implementations
must agree on the XR-Certain answers.  The seed-driven generator lives in
``xval_helper`` and is also runnable standalone for long fuzzing sessions.
"""

from hypothesis import given, settings, strategies as st

from tests.test_xr.xval_helper import check_scenario, random_scenario


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_engines_agree_with_oracle(seed):
    oracle, monolithic, segmentary = check_scenario(seed)
    assert oracle == monolithic, f"seed={seed}"
    assert oracle == segmentary, f"seed={seed}"


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_scenarios_are_well_formed(seed):
    mapping, instance, query = random_scenario(seed)
    assert mapping.is_weakly_acyclic()
    assert len(instance) <= 7
    assert query.body


def test_known_regression_seeds():
    """Seeds that exposed bugs during development stay fixed."""
    for seed in (0, 7, 19, 42, 123, 271):
        oracle, monolithic, segmentary = check_scenario(seed)
        assert oracle == monolithic == segmentary, f"seed={seed}"
