"""Property tests for the paper's propositions (§6), on random scenarios.

Each test states one proposition and checks it against brute force on the
small random ``glav+(wa-glav, egd)`` scenarios from ``repro.fuzz.xval``.
"""

from hypothesis import given, settings, strategies as st

from repro.reduction import reduce_mapping
from repro.relational import Instance
from repro.relational.queries import evaluate_constants_only
from repro.xr.envelope import analyze_envelopes
from repro.xr.exchange import build_exchange_data
from repro.xr.monolithic import MonolithicEngine
from repro.xr.oracle import source_repairs, xr_certain_oracle
from repro.fuzz.xval import random_scenario

SEEDS = st.integers(0, 50_000)


@settings(max_examples=20, deadline=None)
@given(SEEDS)
def test_proposition_1_certain_subset_of_candidates(seed):
    """Prop. 1: XR-Certain(q) ⊆ q(J) for the canonical quasi-solution J."""
    mapping, instance, query = random_scenario(seed)
    certain = xr_certain_oracle(query, instance, mapping)
    # Candidate answers: evaluate the rewritten query over the reduced
    # quasi-solution (constants only).
    reduced = reduce_mapping(mapping)
    data = build_exchange_data(reduced.gav, instance)
    rewritten = reduced.rewrite(query)
    candidates = evaluate_constants_only(rewritten, data.chased)
    assert certain <= candidates


@settings(max_examples=20, deadline=None)
@given(SEEDS)
def test_proposition_3_suspect_is_a_repair_envelope(seed):
    """Prop. 3: every fact deleted by any repair is suspect."""
    mapping, instance, _query = random_scenario(seed)
    reduced = reduce_mapping(mapping)
    analysis = analyze_envelopes(build_exchange_data(reduced.gav, instance))
    all_facts = set(instance)
    for repair in source_repairs(instance, mapping):
        assert (all_facts - repair) <= analysis.suspect_source


@settings(max_examples=20, deadline=None)
@given(SEEDS)
def test_proposition_2_repairs_localize_to_envelope(seed):
    """Prop. 2: repairs = {E' ∪ (I \\ E)} for envelope repairs E' of E."""
    mapping, instance, _query = random_scenario(seed)
    reduced = reduce_mapping(mapping)
    analysis = analyze_envelopes(build_exchange_data(reduced.gav, instance))
    envelope = analysis.suspect_source
    rest = set(instance) - envelope

    whole = {frozenset(r) for r in source_repairs(instance, mapping)}
    # Repairs of the envelope, with the safe part glued back on.  A repair
    # of E alone may be too permissive (context facts missing), so compute
    # repairs of E *in context*: restrict each full repair to E.
    glued = {frozenset((r & envelope) | rest) for r in whole}
    assert whole == glued  # safe facts appear in every repair untouched


@settings(max_examples=20, deadline=None)
@given(SEEDS)
def test_proposition_4_influence_is_exchange_envelope(seed):
    """Prop. 4: facts of J missing from an XR-solution lie in the influence
    of the suspect set (the target side of the exchange repair envelope)."""
    from repro.chase.gav import gav_chase
    from repro.xr.envelope import influence

    mapping, instance, _query = random_scenario(seed)
    reduced = reduce_mapping(mapping)
    data = build_exchange_data(reduced.gav, instance)
    analysis = analyze_envelopes(data)
    target_envelope = influence(analysis.suspect_source, data)

    tgds = list(reduced.gav.all_tgds())
    for repair in source_repairs(instance, mapping):
        repaired_chase = gav_chase(Instance(repair), tgds)
        missing = set(data.chased) - set(repaired_chase)
        assert missing <= target_envelope


@settings(max_examples=20, deadline=None)
@given(SEEDS)
def test_clusters_factorize_repair_count(seed):
    """Prop. 5/6: distinct clusters are independent, so the number of
    repairs is the product of the per-cluster repair counts."""
    mapping, instance, _query = random_scenario(seed)
    reduced = reduce_mapping(mapping)
    data = build_exchange_data(reduced.gav, instance)
    analysis = analyze_envelopes(data)
    total = len(source_repairs(instance, mapping))
    product = 1
    safe = analysis.safe_source
    for cluster in analysis.clusters:
        context = Instance(safe | cluster.source_envelope)
        product *= len(source_repairs(context, mapping))
    assert total == product


@settings(max_examples=10, deadline=None)
@given(SEEDS)
def test_figure1_is_sound_upper_bound(seed):
    """The literal Figure 1 encoding never *loses* certain answers — it can
    only over-approximate them (it misses some stable models)."""
    mapping, instance, query = random_scenario(seed)
    certain = xr_certain_oracle(query, instance, mapping)
    try:
        figure1 = MonolithicEngine(mapping, instance, encoding="figure1").answer(query)
    except RuntimeError as error:
        if "no stable model" not in str(error):
            raise
        # The erratum in its total form (DESIGN §7, found by fuzzing): the
        # literal encoding misses *every* repair.  Cautious consequence
        # over zero stable models is vacuously everything, so the upper
        # bound holds trivially.
        return
    assert certain <= figure1
