"""The interned adjacency of :class:`ExchangeData` vs naive scans.

The grounding and violation indexes (``groundings_by_head``,
``occurs_in_body``, ``violations_by_fact``) exist purely for speed: every
entry must agree with a linear scan of the fact-level ``groundings`` /
``violations`` lists, and the id-based closures must agree with their
definitional fixpoints.  Checked on randomly generated fuzz scenarios and
on the genomics mapping.
"""

from hypothesis import given, settings, strategies as st

from repro.chase.gav import gav_chase
from repro.fuzz.generator import random_scenario
from repro.genomics.instances import InstanceProfile, build_instance
from repro.genomics.schema import genome_mapping
from repro.reduction.reduce import reduce_mapping
from repro.relational.instance import Instance
from repro.xr.envelope import derivable_ids
from repro.xr.exchange import ExchangeData, build_exchange_data


def exchange_for_seed(seed: int) -> ExchangeData:
    scenario = random_scenario(seed)
    reduced = reduce_mapping(scenario.mapping)
    return build_exchange_data(reduced.gav, scenario.instance)


def check_universe(data: ExchangeData) -> None:
    assert len(data.facts_by_id) == len(data.fact_ids)
    for fact_id, fact in enumerate(data.facts_by_id):
        assert data.fact_ids[fact] == fact_id
    assert set(data.facts_by_id) >= set(data.chased)
    source_names = data.mapping.source.names()
    for fact_id, fact in enumerate(data.facts_by_id):
        assert data.source_id_mask[fact_id] == (fact.relation in source_names)


def check_grounding_indexes(data: ExchangeData) -> None:
    assert len(data.grounding_bodies) == len(data.groundings)
    assert len(data.grounding_heads) == len(data.groundings)
    for index, (_rule, body_facts, head_fact) in enumerate(data.groundings):
        assert data.facts_by_id[data.grounding_heads[index]] == head_fact
        body = [data.facts_by_id[i] for i in data.grounding_bodies[index]]
        # Deduplicated, first-occurrence order.
        assert body == list(dict.fromkeys(body_facts))
    for fact_id in range(len(data.facts_by_id)):
        naive_heads = [
            index
            for index, (_r, _b, head) in enumerate(data.groundings)
            if head == data.facts_by_id[fact_id]
        ]
        assert data.groundings_by_head[fact_id] == naive_heads
        naive_bodies = [
            index
            for index, (_r, body, _h) in enumerate(data.groundings)
            if data.facts_by_id[fact_id] in body
        ]
        assert data.occurs_in_body[fact_id] == naive_bodies


def check_violation_indexes(data: ExchangeData) -> None:
    assert len(data.violation_bodies) == len(data.violations)
    for index, violation in enumerate(data.violations):
        body = [data.facts_by_id[i] for i in data.violation_bodies[index]]
        assert body == list(dict.fromkeys(violation.body_facts))
    for fact_id in range(len(data.facts_by_id)):
        naive = [
            index
            for index, violation in enumerate(data.violations)
            if data.facts_by_id[fact_id] in violation.body_facts
        ]
        assert data.violations_by_fact[fact_id] == naive


def check_legacy_views_agree(data: ExchangeData) -> None:
    for fact, indexes in data.supports_of.items():
        assert data.groundings_by_head[data.fact_ids[fact]] == indexes
    for fact, indexes in data.occurs_in_body_of.items():
        assert data.occurs_in_body[data.fact_ids[fact]] == indexes


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_indexes_agree_with_naive_scans_on_fuzz_scenarios(seed):
    data = exchange_for_seed(seed)
    check_universe(data)
    check_grounding_indexes(data)
    check_violation_indexes(data)
    check_legacy_views_agree(data)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_derivable_ids_is_the_chase_fixpoint(seed):
    """Grounding propagation from any suspect-free seed equals re-chasing."""
    data = exchange_for_seed(seed)
    source_ids = sorted(data.id_set(data.source_facts))
    seed_ids = set(source_ids[:: 2])  # an arbitrary sub-instance
    derived = derivable_ids(seed_ids, data)
    rechased = gav_chase(
        Instance(data.facts_by_id[i] for i in seed_ids),
        list(data.mapping.all_tgds()),
    )
    assert {data.facts_by_id[i] for i in derived} == set(rechased)


def test_indexes_on_genomics_instance():
    reduced = reduce_mapping(genome_mapping())
    instance = build_instance(InstanceProfile("T", 6, 0.2)).instance
    data = build_exchange_data(reduced.gav, instance)
    check_universe(data)
    check_grounding_indexes(data)
    check_violation_indexes(data)
    check_legacy_views_agree(data)


def test_influence_cache_matches_uncached_walk():
    data = exchange_for_seed(4321)
    for fact_id in range(len(data.facts_by_id)):
        cached = data.influence_ids_of(fact_id)
        # Definitional forward closure.
        expected = {fact_id}
        frontier = [fact_id]
        while frontier:
            current = frontier.pop()
            for index in data.occurs_in_body[current]:
                head = data.grounding_heads[index]
                if head not in expected:
                    expected.add(head)
                    frontier.append(head)
        assert cached == expected
        assert data.influence_ids_of(fact_id) is cached  # memoized
