"""Tests for repair envelopes, influences, and violation clusters (§6.2–6.3)."""

import pytest

from repro.parser import parse_mapping
from repro.reduction import reduce_mapping
from repro.relational import Fact, Instance
from repro.xr.envelope import analyze_envelopes, influence, support_closure
from repro.xr.exchange import build_exchange_data
from repro.xr.oracle import source_repairs


def f(rel, *args):
    return Fact(rel, args)


def key_mapping():
    return parse_mapping(
        """
        SOURCE R/2. TARGET P/2.
        R(x, y) -> P(x, y).
        P(x, y), P(x, z) -> y = z.
        """
    )


def analyzed(mapping, facts):
    reduced = reduce_mapping(mapping)
    data = build_exchange_data(reduced.gav, Instance(facts))
    return data, analyze_envelopes(data)


class TestSupportClosureAndInfluence:
    def test_closure_reaches_sources(self):
        data, _ = analyzed(
            key_mapping(), [f("R", "a", "b"), f("R", "a", "c")]
        )
        closure = support_closure({f("P", "a", "b")}, data)
        assert f("R", "a", "b") in closure

    def test_influence_reaches_targets(self):
        data, _ = analyzed(
            key_mapping(), [f("R", "a", "b"), f("R", "a", "c")]
        )
        influenced = influence({f("R", "a", "b")}, data)
        assert f("P", "a", "b") in influenced

    def test_influence_of_source_restriction_contains_closure(self):
        """Fact 1 of the paper."""
        data, _ = analyzed(
            key_mapping(), [f("R", "a", "b"), f("R", "a", "c")]
        )
        target = {f("P", "a", "b")}
        closure = support_closure(target, data)
        sources = {x for x in closure if x.relation == "R"}
        assert closure <= influence(sources, data)


class TestSuspectSafeSplit:
    def test_conflicting_facts_suspect(self):
        _, analysis = analyzed(
            key_mapping(),
            [f("R", "a", "b"), f("R", "a", "c"), f("R", "z", "w")],
        )
        assert analysis.suspect_source == {f("R", "a", "b"), f("R", "a", "c")}
        assert analysis.safe_source == {f("R", "z", "w")}

    def test_suspect_is_a_source_repair_envelope(self):
        """Proposition 3: every deleted fact of every repair is suspect."""
        mapping = key_mapping()
        facts = [f("R", "a", "b"), f("R", "a", "c"), f("R", "z", "w")]
        _, analysis = analyzed(mapping, facts)
        instance = Instance(facts)
        for repair in source_repairs(instance, mapping):
            deleted = set(instance) - set(repair)
            assert deleted <= analysis.suspect_source

    def test_safe_chased_contains_safe_derivations(self):
        _, analysis = analyzed(
            key_mapping(),
            [f("R", "a", "b"), f("R", "a", "c"), f("R", "z", "w")],
        )
        assert f("P", "z", "w") in analysis.safe_chased
        assert f("P", "a", "b") not in analysis.safe_chased

    def test_no_violations_everything_safe(self):
        _, analysis = analyzed(key_mapping(), [f("R", "a", "b")])
        assert not analysis.suspect_source
        assert not analysis.clusters


class TestViolationClusters:
    def test_independent_conflicts_separate_clusters(self):
        """Example 2 of the paper: unrelated violations do not merge."""
        _, analysis = analyzed(
            key_mapping(),
            [
                f("R", "a", "b"), f("R", "a", "c"),
                f("R", "x", "u"), f("R", "x", "v"),
            ],
        )
        assert len(analysis.clusters) == 2
        envelopes = [c.source_envelope for c in analysis.clusters]
        assert envelopes[0].isdisjoint(envelopes[1])

    def test_overlapping_closures_merge(self):
        # Three facts with one shared key: one cluster with both violations.
        _, analysis = analyzed(
            key_mapping(),
            [f("R", "a", "b"), f("R", "a", "c"), f("R", "a", "d")],
        )
        assert len(analysis.clusters) == 1
        assert len(analysis.clusters[0].violations) >= 3  # all pairs clash

    def test_example_3_shared_influence(self):
        """Example 3: two clusters whose influences overlap on T-facts."""
        mapping = parse_mapping(
            """
            SOURCE P/2, Q/2. TARGET R/2, S/2, T/3.
            P(x, y) -> R(x, y).
            Q(x, y) -> S(x, y).
            R(x, y), S(x, z) -> T(x, y, z).
            R(x, y), R(x, y2) -> y = y2.
            S(x, y), S(x, y2) -> y = y2.
            """
        )
        _, analysis = analyzed(
            mapping,
            [
                f("P", "a1", "a2"), f("P", "a1", "a3"),
                f("Q", "a1", "a2"), f("Q", "a1", "a3"),
            ],
        )
        assert len(analysis.clusters) == 2
        shared = analysis.clusters[0].influence & analysis.clusters[1].influence
        assert any(fact.relation == "T" for fact in shared)
        # Source envelopes remain disjoint (Prop. 5 justification).
        assert analysis.clusters[0].source_envelope.isdisjoint(
            analysis.clusters[1].source_envelope
        )
        # T-facts carry both clusters in their signature.
        t_fact = next(fact for fact in shared if fact.relation == "T")
        assert analysis.signature({t_fact}) == frozenset({0, 1})
