"""Runtime integration: parallel == sequential, warm caching, stats contract.

The acceptance bar for the runtime subsystem: ``jobs=N`` with ``N > 1``
returns byte-identical answer sets to sequential mode — on the genome
profiles, on the quickstart mapping, and on the three-colorability gadget —
and a warm engine answering a repeated query hits the cache and spends
strictly less query-phase time than the cold run.
"""

import importlib.util
import pathlib

import pytest

from repro.genomics.instances import INSTANCE_PROFILES, build_instance
from repro.genomics.queries import QUERY_SUITE, query_by_name
from repro.genomics.schema import genome_mapping
from repro.parser import parse_mapping, parse_query
from repro.reduction.reduce import reduce_mapping
from repro.relational import Fact, Instance
from repro.relational.queries import Atom, ConjunctiveQuery
from repro.relational.terms import Const
from repro.xr.segmentary import SegmentaryEngine

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def load_example(name):
    path = REPO_ROOT / "examples" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def f(rel, *args):
    return Fact(rel, args)


@pytest.fixture(scope="module")
def genome_setup():
    reduced = reduce_mapping(genome_mapping())
    instance = build_instance(INSTANCE_PROFILES["S3"]).instance
    return reduced, instance


class TestParallelMatchesSequential:
    @pytest.mark.slow
    def test_genome_profile_s3(self, genome_setup):
        reduced, instance = genome_setup
        sequential = SegmentaryEngine(reduced, instance)
        parallel = SegmentaryEngine(
            reduced, instance, jobs=2, parallel_threshold=1
        )
        try:
            for name in QUERY_SUITE:
                query = query_by_name(name)
                assert sequential.answer(query) == parallel.answer(query), name
                assert sequential.possible_answers(query) == (
                    parallel.possible_answers(query)
                ), name
        finally:
            parallel.close()

    def test_quickstart_mapping(self):
        # The examples/quickstart.py setting: a key conflict on ada's office.
        mapping = parse_mapping(
            """
            SOURCE Employee/2, Badge/2.
            TARGET Office/2, Access/2.
            Employee(name, office) -> Office(name, office).
            Badge(name, room)      -> Access(name, room).
            Office(name, o1), Office(name, o2) -> o1 = o2.
            """
        )
        instance = Instance(
            [
                f("Employee", "ada", "E14"),
                f("Employee", "ada", "W02"),
                f("Employee", "bob", "E15"),
                f("Badge", "ada", "server-room"),
            ]
        )
        queries = [
            "q(name) :- Office(name, office).",
            "q(n, o) :- Office(n, o).",
            "q(n) :- Access(n, 'server-room').",
            "q() :- Office(n, o).",
        ]
        sequential = SegmentaryEngine(mapping, instance)
        parallel = SegmentaryEngine(
            mapping, instance, jobs=2, parallel_threshold=1
        )
        try:
            for text in queries:
                query = parse_query(text)
                assert sequential.answer(query) == parallel.answer(query), text
            # Ground truth from the example: only bob's row is certain.
            row_query = parse_query("q(n, o) :- Office(n, o).")
            assert parallel.answer(row_query) == {("bob", "E15")}
        finally:
            parallel.close()

    @pytest.mark.slow
    def test_three_colorability_gadget(self):
        example = load_example("three_colorability")
        mapping = example.theorem3_mapping()
        instance, closing = example.encode_graph(
            "abc", [("a", "b"), ("b", "c"), ("a", "c")]
        )
        query = ConjunctiveQuery(
            [], [Atom("Fp", (Const(closing), Const(1)))], name="keeps_f"
        )
        sequential = SegmentaryEngine(mapping, instance)
        parallel = SegmentaryEngine(
            mapping, instance, jobs=2, parallel_threshold=1
        )
        try:
            answers = sequential.answer(query)
            assert answers == parallel.answer(query)
            # K3 is 3-colorable, so the closing fact is not certain.
            assert answers == set()
        finally:
            parallel.close()


class TestWarmCache:
    def test_repeat_query_hits_cache_and_is_faster(self, genome_setup):
        reduced, instance = genome_setup
        engine = SegmentaryEngine(reduced, instance)
        query = query_by_name("xr2")
        cold_answers, cold = engine.answer_with_stats(query)
        assert cold.programs_solved > 0
        warm_answers, warm = engine.answer_with_stats(query)
        assert warm_answers == cold_answers
        assert warm.cache_hits > 0
        assert warm.programs_solved == 0
        # Cache hits skip program construction and solving entirely; the
        # warm pass is pure grouping + dictionary lookups.
        assert warm.seconds < cold.seconds


class TestTriviallyCertainHoist:
    def test_accepted_even_with_loosened_invariant(self, monkeypatch):
        """Regression for the ordering bug: trivially-certain candidates
        must be folded into the answer *before* any empty-``query_atoms``
        guard, so they survive even if ``_emit_query_rules`` ever loosens
        the invariant ``trivially_certain ⊆ query_atoms``."""
        import repro.xr.segmentary as seg

        real_build = seg.build_xr_program

        def loosened(*args, **kwargs):
            result = real_build(*args, **kwargs)
            if result.query_atoms:
                # Pretend every candidate was recognized as trivially
                # certain and stripped from the solvable query atoms.
                result.trivially_certain.update(result.query_atoms)
                result.query_atoms.clear()
            return result

        monkeypatch.setattr(seg, "build_xr_program", loosened)
        mapping = parse_mapping(
            """
            SOURCE R/2. TARGET P/2.
            R(x, y) -> P(x, y).
            P(x, y), P(x, z) -> y = z.
            """
        )
        instance = Instance([f("R", "a", "b"), f("R", "a", "c")])
        engine = SegmentaryEngine(mapping, instance, cache=False)
        answers = engine.answer(parse_query("q(x) :- P(x, y)."))
        assert ("a",) in answers
        assert engine.last_query_stats.programs_solved == 0


class TestStatsContract:
    def test_stats_published_once_and_fresh_per_call(self):
        mapping = parse_mapping(
            """
            SOURCE R/2. TARGET P/2.
            R(x, y) -> P(x, y).
            P(x, y), P(x, z) -> y = z.
            """
        )
        instance = Instance([f("R", "a", "b"), f("R", "a", "c")])
        engine = SegmentaryEngine(mapping, instance, cache=False)
        _, first = engine.answer_with_stats(parse_query("q(x) :- P(x, y)."))
        # The accessor agrees with the returned stats by value, but hands
        # out an independent copy: mutating it cannot corrupt the engine.
        published = engine.last_query_stats
        assert published == first
        assert published is not first
        published.programs_solved = -1
        published.solver_stats["conflicts"] = -1
        published.unknown_candidates.add(("poisoned",))
        assert engine.last_query_stats == first
        snapshot = first.programs_solved
        _, second = engine.answer_with_stats(parse_query("q(y) :- P(x, y)."))
        assert engine.last_query_stats == second
        assert second is not first
        # The earlier stats object is immutable history, not a live view.
        assert first.programs_solved == snapshot

    def test_stats_carry_runtime_observability(self):
        mapping = parse_mapping(
            """
            SOURCE R/2. TARGET P/2.
            R(x, y) -> P(x, y).
            P(x, y), P(x, z) -> y = z.
            """
        )
        instance = Instance([f("R", "a", "b"), f("R", "a", "c")])
        engine = SegmentaryEngine(mapping, instance)
        _, stats = engine.answer_with_stats(parse_query("q(x) :- P(x, y)."))
        assert stats.executor == "sequential"
        assert stats.programs_solved == len(stats.program_seconds)
        assert stats.solve_seconds == pytest.approx(sum(stats.program_seconds))
        assert stats.seconds >= stats.solve_seconds
        if stats.programs_solved:
            assert "conflicts" in stats.solver_stats
