"""Boolean (0-ary) query coverage: ``set()`` vs ``{()}`` end to end.

A boolean query has exactly two XR-Certain answer sets — ``{()}`` (true in
every XR-solution) and ``set()`` (false in some) — and both must survive
every execution path: monolithic, segmentary sequential, segmentary
parallel, and the brute-force repair-enumeration oracle.
"""

import pytest

from repro.parser import parse_mapping, parse_query
from repro.relational import Fact, Instance
from repro.xr.monolithic import MonolithicEngine
from repro.xr.oracle import xr_certain_oracle
from repro.xr.segmentary import SegmentaryEngine


def f(rel, *args):
    return Fact(rel, args)


@pytest.fixture(scope="module")
def mapping():
    return parse_mapping(
        """
        SOURCE R/2, S/2. TARGET P/2, Q/2.
        R(x, y) -> P(x, y).
        S(x, y) -> Q(x, y).
        P(x, y), P(x, z) -> y = z.
        """
    )


@pytest.fixture(scope="module")
def instance():
    # R(a, b) and R(a, c) violate the key on P; S(a, b) is safe.
    return Instance([f("R", "a", "b"), f("R", "a", "c"), f("S", "a", "b")])


def all_engines(mapping, instance):
    return [
        MonolithicEngine(mapping, instance),
        SegmentaryEngine(mapping, instance),
        SegmentaryEngine(mapping, instance, jobs=2, parallel_threshold=1),
    ]


# (query text, certain answers, possible answers)
CASES = [
    # Some P-fact survives in every repair: certainly true.
    ("q() :- P(x, y).", {()}, {()}),
    # Only the repair keeping R(a, b) joins P with Q: possible, not certain.
    ("q() :- P(x, y), Q(x, y).", set(), {()}),
    # Needs the reversed pair Q(b, a), which never exists: false everywhere.
    ("q() :- Q(y, x), Q(x, y).", set(), set()),
    # The safe fact alone: certainly true, independent of the conflict.
    ("q() :- Q(x, y).", {()}, {()}),
]


class TestBooleanQueries:
    @pytest.mark.parametrize("text,certain,possible", CASES)
    def test_certain_all_engines(self, mapping, instance, text, certain, possible):
        query = parse_query(text)
        for engine in all_engines(mapping, instance):
            assert engine.answer(query) == certain, (text, type(engine))
            if isinstance(engine, SegmentaryEngine):
                assert engine.possible_answers(query) == possible, text
                engine.close()

    @pytest.mark.parametrize("text,certain,_possible", CASES)
    def test_certain_matches_oracle(self, mapping, instance, text, certain, _possible):
        query = parse_query(text)
        assert xr_certain_oracle(query, instance, mapping) == certain, text

    def test_empty_and_nonempty_are_distinct(self, mapping, instance):
        """The footgun this file exists for: {()} and set() are both falsy
        in no sense — an engine that conflates them fails loudly here."""
        true_query = parse_query("q() :- P(x, y).")
        false_query = parse_query("q() :- Q(y, x), Q(x, y).")
        engine = SegmentaryEngine(mapping, instance)
        assert engine.answer(true_query) == {()}
        assert engine.answer(false_query) == set()
        assert engine.answer(true_query) != engine.answer(false_query)
