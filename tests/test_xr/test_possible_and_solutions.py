"""Tests for XR-Possible answers and XR-solution enumeration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.parser import parse_mapping, parse_query
from repro.relational import Fact, Instance
from repro.xr import (
    MonolithicEngine,
    SegmentaryEngine,
    count_source_repairs,
    xr_possible_oracle,
    xr_solutions,
)
from repro.fuzz.xval import random_scenario


def f(rel, *args):
    return Fact(rel, args)


@pytest.fixture
def key_setup():
    mapping = parse_mapping(
        """
        SOURCE R/2. TARGET P/2.
        R(x, y) -> P(x, y).
        P(x, y), P(x, z) -> y = z.
        """
    )
    instance = Instance([f("R", "a", "b"), f("R", "a", "c"), f("R", "d", "e")])
    return mapping, instance


class TestPossibleAnswers:
    def test_possible_superset_of_certain(self, key_setup):
        mapping, instance = key_setup
        query = parse_query("q(x, y) :- P(x, y).")
        engine = SegmentaryEngine(mapping, instance)
        assert engine.answer(query) <= engine.possible_answers(query)

    def test_possible_matches_oracle(self, key_setup):
        mapping, instance = key_setup
        query = parse_query("q(x, y) :- P(x, y).")
        expected = xr_possible_oracle(query, instance, mapping)
        assert expected == {("a", "b"), ("a", "c"), ("d", "e")}
        assert MonolithicEngine(mapping, instance).possible_answers(query) == expected
        assert SegmentaryEngine(mapping, instance).possible_answers(query) == expected

    def test_consistent_instance_possible_equals_certain(self):
        mapping = parse_mapping(
            """
            SOURCE R/2. TARGET P/2.
            R(x, y) -> P(x, y).
            """
        )
        instance = Instance([f("R", "a", "b")])
        query = parse_query("q(x, y) :- P(x, y).")
        engine = SegmentaryEngine(mapping, instance)
        assert engine.answer(query) == engine.possible_answers(query)


class TestXRSolutions:
    def test_enumeration(self, key_setup):
        mapping, instance = key_setup
        solutions = list(xr_solutions(mapping, instance))
        assert len(solutions) == 2
        repairs = {frozenset(s.source_repair) for s in solutions}
        assert repairs == {
            frozenset({f("R", "a", "b"), f("R", "d", "e")}),
            frozenset({f("R", "a", "c"), f("R", "d", "e")}),
        }
        for solution in solutions:
            assert solution.deleted == 1
            # The target solution chases the repair with the original mapping.
            assert len(solution.target_solution) == 2

    def test_limit(self, key_setup):
        mapping, instance = key_setup
        assert len(list(xr_solutions(mapping, instance, limit=1))) == 1

    def test_count(self, key_setup):
        mapping, instance = key_setup
        assert count_source_repairs(mapping, instance) == 2

    def test_solutions_carry_nulls(self):
        mapping = parse_mapping(
            """
            SOURCE R/1. TARGET T/2.
            R(x) -> T(x, y).
            """
        )
        instance = Instance([f("R", "a")])
        (solution,) = xr_solutions(mapping, instance)
        (fact,) = solution.target_solution
        from repro.relational.terms import is_null_value

        assert is_null_value(fact.args[1])

    def test_independent_conflicts_multiply(self):
        mapping = parse_mapping(
            """
            SOURCE R/2. TARGET P/2.
            R(x, y) -> P(x, y).
            P(x, y), P(x, z) -> y = z.
            """
        )
        instance = Instance(
            [f("R", k, v) for k in ("a", "b", "c") for v in ("1", "2")]
        )
        assert count_source_repairs(mapping, instance) == 8  # 2^3


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000))
def test_possible_answers_match_oracle_on_random_scenarios(seed):
    mapping, instance, query = random_scenario(seed)
    expected = xr_possible_oracle(query, instance, mapping)
    assert MonolithicEngine(mapping, instance).possible_answers(query) == expected
    assert SegmentaryEngine(mapping, instance).possible_answers(query) == expected


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000))
def test_solution_enumeration_matches_oracle_repairs(seed):
    from repro.xr import source_repairs

    mapping, instance, _query = random_scenario(seed)
    expected = {frozenset(r) for r in source_repairs(instance, mapping)}
    enumerated = {
        frozenset(s.source_repair) for s in xr_solutions(mapping, instance)
    }
    assert enumerated == expected
