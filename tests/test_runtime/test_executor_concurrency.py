"""Concurrent-submit tests for the solve executors.

The serving tier funnels many query threads onto **one** shared
executor.  The pre-fix :class:`ParallelExecutor` interleaved batch
dispatch and retry/pool-rebuild bookkeeping (``last_dispatch``, crash
retry counters, the pool recreation latch) across those threads; the fix
serializes pooled batches on an internal lock and makes
``last_dispatch`` thread-local, so:

- concurrent ``run()`` calls return correct, un-mixed outcome lists;
- each thread's ``last_dispatch`` read reflects *its own* batch (the
  engine reads it right after ``run()`` to stamp
  ``QueryPhaseStats.executor``);
- small batches still bypass the lock (they touch no shared state), so
  in-process solving keeps running concurrently.
"""

from __future__ import annotations

import sys
import threading

import pytest

from tests.test_runtime.test_executor import EXPECTED, a_batch, chain_program

from repro.runtime import (
    PackedProgram,
    ParallelExecutor,
    SequentialExecutor,
    SolveTask,
)

THREADS = 6
ROUNDS = 15


@pytest.fixture(autouse=True)
def _tight_switch_interval():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


def _run_threads(work, count=THREADS):
    errors: list[BaseException] = []
    barrier = threading.Barrier(count)

    def runner(index: int) -> None:
        try:
            barrier.wait()
            work(index)
        except BaseException as exc:  # noqa: BLE001 — the assertion channel
            errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(i,)) for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


def _check_batch(executor) -> None:
    outcomes = executor.run(a_batch())
    assert [outcome.decided for outcome in outcomes] == EXPECTED
    assert all(outcome.ok for outcome in outcomes)


class TestSequentialConcurrentSubmit:
    def test_concurrent_runs_return_correct_outcomes(self):
        executor = SequentialExecutor()

        def work(_index: int) -> None:
            for _ in range(ROUNDS):
                _check_batch(executor)
                assert executor.last_dispatch == "sequential"

        _run_threads(work)

    def test_last_dispatch_is_per_thread(self):
        """A thread that ran an empty batch keeps reading "none" even
        while other threads run real batches."""
        executor = SequentialExecutor()
        ran_real = threading.Event()

        def work(index: int) -> None:
            if index == 0:
                executor.run([])
                assert executor.last_dispatch == "none"
                ran_real.wait(10.0)
                # Other threads' batches must not leak into this
                # thread's view.
                assert executor.last_dispatch == "none"
            else:
                for _ in range(ROUNDS):
                    _check_batch(executor)
                ran_real.set()

        _run_threads(work, count=3)


class TestParallelConcurrentSubmit:
    def test_small_batches_bypass_the_lock_and_stay_correct(self):
        """jobs > 1 but batches below min_batch: in-process path, fully
        concurrent, correct outcomes and per-thread dispatch labels."""
        executor = ParallelExecutor(jobs=2, min_batch=100)
        try:

            def work(_index: int) -> None:
                for _ in range(ROUNDS):
                    _check_batch(executor)
                    assert executor.last_dispatch == "sequential"

            _run_threads(work)
        finally:
            executor.close()

    def test_pooled_batches_serialize_without_corruption(self):
        """Real pool dispatch from many threads: outcomes stay correct
        and each thread sees a pool-side dispatch label for its batch."""
        executor = ParallelExecutor(jobs=2, min_batch=2, chunk_size=2)
        try:

            def work(_index: int) -> None:
                for _ in range(3):
                    outcomes = executor.run(a_batch())
                    assert [o.decided for o in outcomes] == EXPECTED
                    assert executor.last_dispatch in (
                        "parallel", "mixed", "sequential"
                    )

            _run_threads(work, count=4)
        finally:
            executor.close()

    def test_mixed_small_and_pooled_batches(self):
        """Half the threads run pool-sized batches, half run tiny ones;
        the tiny ones must not block behind the pool lock nor corrupt
        the pooled threads' dispatch labels."""
        executor = ParallelExecutor(jobs=2, min_batch=3, chunk_size=2)
        small = [
            SolveTask(PackedProgram.pack(chain_program(2)), (1, 2))
        ]
        try:

            def work(index: int) -> None:
                if index % 2 == 0:
                    for _ in range(3):
                        outcomes = executor.run(a_batch())
                        assert [o.decided for o in outcomes] == EXPECTED
                else:
                    for _ in range(ROUNDS):
                        [outcome] = executor.run(list(small))
                        assert outcome.decided == frozenset({1, 2})
                        assert executor.last_dispatch == "sequential"

            _run_threads(work, count=4)
        finally:
            executor.close()

    def test_empty_batch_dispatch_label(self):
        executor = ParallelExecutor(jobs=2, min_batch=2)
        try:
            assert executor.run([]) == []
            assert executor.last_dispatch == "none"
        finally:
            executor.close()
