"""Units for the resource-governance layer (repro.runtime.budget)."""

import pickle
import time

import pytest

from repro.asp.sat import SatSolver
from repro.asp.stable import StableModelEngine
from repro.asp.syntax import AtomTable, GroundProgram, GroundRule
from repro.cli import build_parser
from repro.relational import Fact
from repro.runtime.budget import (
    NO_BUDGET,
    Deadline,
    SolveBudget,
    SolveBudgetExceeded,
    backoff_delay,
)
from repro.runtime.executor import PackedProgram, SolveTask, solve_task


def tiny_program() -> GroundProgram:
    program = GroundProgram(AtomTable())
    program.atoms.intern(Fact("a", (1,)))
    program.atoms.intern(Fact("a", (2,)))
    program.add_rule(GroundRule(head=(1,)))
    program.add_rule(GroundRule(head=(2,), body_pos=(1,)))
    return program


class TestBackoffDelay:
    def test_doubles_per_attempt(self):
        assert backoff_delay(0, 0.05, 1.0) == pytest.approx(0.05)
        assert backoff_delay(1, 0.05, 1.0) == pytest.approx(0.10)
        assert backoff_delay(2, 0.05, 1.0) == pytest.approx(0.20)

    def test_capped(self):
        assert backoff_delay(30, 0.05, 1.0) == 1.0

    def test_zero_base_means_no_delay(self):
        assert backoff_delay(5, 0.0, 1.0) == 0.0

    def test_negative_attempt_clamped(self):
        assert backoff_delay(-3, 0.05, 1.0) == pytest.approx(0.05)


class TestDeadline:
    def test_unbounded_is_a_no_op(self):
        deadline = Deadline.after(None)
        assert deadline.deadline_at is None
        assert deadline.remaining() is None
        assert not deadline.expired()
        deadline.check()  # must not raise

    def test_expiry_and_check(self):
        deadline = Deadline.after(1e-9)
        time.sleep(0.001)
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        with pytest.raises(SolveBudgetExceeded):
            deadline.check()

    def test_future_deadline_not_expired(self):
        deadline = Deadline.after(60.0)
        assert not deadline.expired()
        assert deadline.remaining() > 59.0
        deadline.check()

    def test_tightest_picks_the_earlier_cutoff(self):
        now = time.monotonic()
        assert Deadline.tightest() is None
        only_timeout = Deadline.tightest(timeout=60.0)
        assert only_timeout.deadline_at == pytest.approx(now + 60.0, abs=1.0)
        only_at = Deadline.tightest(at=now + 5.0)
        assert only_at.deadline_at == now + 5.0
        both = Deadline.tightest(timeout=60.0, at=now + 5.0)
        assert both.deadline_at == now + 5.0


class TestSolveBudget:
    def test_null_budget(self):
        assert NO_BUDGET.is_null
        assert NO_BUDGET.started() is None
        assert NO_BUDGET.single_solve_deadline() is None

    def test_any_knob_disarms_is_null(self):
        assert not SolveBudget(deadline=1.0).is_null
        assert not SolveBudget(task_timeout=1.0).is_null
        assert not SolveBudget(max_retries=1).is_null

    def test_validation(self):
        with pytest.raises(ValueError):
            SolveBudget(deadline=0.0)
        with pytest.raises(ValueError):
            SolveBudget(task_timeout=-1.0)
        with pytest.raises(ValueError):
            SolveBudget(max_retries=-1)

    def test_started_counts_down_the_query_deadline(self):
        clock = SolveBudget(deadline=60.0).started()
        assert clock is not None
        assert 59.0 < clock.remaining() <= 60.0

    def test_single_solve_deadline_takes_the_tighter_bound(self):
        budget = SolveBudget(deadline=60.0, task_timeout=1.0)
        deadline = budget.single_solve_deadline()
        assert deadline.remaining() <= 1.0

    def test_retry_delay_uses_the_budget_backoff(self):
        budget = SolveBudget(max_retries=3, retry_backoff=0.02, backoff_cap=0.05)
        assert budget.retry_delay(0) == pytest.approx(0.02)
        assert budget.retry_delay(10) == 0.05

    def test_pickles_roundtrip(self):
        budget = SolveBudget(deadline=2.0, task_timeout=0.5, max_retries=1)
        assert pickle.loads(pickle.dumps(budget)) == budget
        assert pickle.loads(pickle.dumps(NO_BUDGET)) == NO_BUDGET


class TestCooperativeInterrupt:
    def test_sat_solver_interrupt_fires_during_search(self):
        # 300 free variables force > 64 decision-loop iterations, so an
        # already-expired deadline must abort the search mid-solve.
        solver = SatSolver(300)
        solver.interrupt_check = Deadline(time.monotonic() - 1.0).check
        with pytest.raises(SolveBudgetExceeded):
            solver.solve()

    def test_sat_solver_without_hook_solves(self):
        solver = SatSolver(300)
        assert solver.solve()

    def test_stable_engine_checks_deadline_between_models(self):
        engine = StableModelEngine(
            tiny_program(), deadline=Deadline(time.monotonic() - 1.0)
        )
        with pytest.raises(SolveBudgetExceeded):
            engine.next_stable_model()


class TestSolveTaskBudget:
    def test_expired_batch_deadline_times_out(self):
        task = SolveTask(PackedProgram.pack(tiny_program()), (1, 2))
        outcome = solve_task(task, deadline_at=time.monotonic() - 1.0)
        assert outcome.status == "timeout"
        assert not outcome.ok
        assert outcome.decided is None

    def test_generous_task_timeout_solves_normally(self):
        task = SolveTask(
            PackedProgram.pack(tiny_program()),
            (1, 2),
            budget=SolveBudget(task_timeout=60.0),
        )
        outcome = solve_task(task)
        assert outcome.ok
        assert outcome.decided == frozenset({1, 2})


class TestCliBudgetFlags:
    def test_answer_accepts_budget_flags(self):
        arguments = build_parser().parse_args(
            [
                "answer", "-m", "m.txt", "-d", "d.txt", "-q", "q() :- T(x).",
                "--deadline", "5", "--task-timeout", "0.5", "--retries", "2",
            ]
        )
        assert arguments.deadline == 5.0
        assert arguments.task_timeout == 0.5
        assert arguments.retries == 2

    def test_budget_flags_default_to_no_budget(self):
        arguments = build_parser().parse_args(
            ["answer", "-m", "m.txt", "-d", "d.txt", "-q", "q() :- T(x)."]
        )
        assert arguments.deadline is None
        assert arguments.task_timeout is None
        assert arguments.retries == 0

    def test_fuzz_accepts_faults_flag(self):
        arguments = build_parser().parse_args(["fuzz", "--seeds", "5", "--faults"])
        assert arguments.faults is True
