"""Concurrent hammer tests for :class:`SignatureProgramCache`.

The serving tier shares one cache across concurrent query threads, and
the pre-lock cache mutated its dicts with no synchronization:

- LRU recency maintenance mutates on **lookup** (delete + re-insert),
  so even the read path writes;
- ``invalidate_clusters`` *iterates* both dicts scanning for retired
  signatures.

On CPython ≥ 3.12 thread switches happen at loop back-edges, so the
reliably observable old-code failure is the second one: an invalidation
scan overlapping a concurrent ``store_program`` dies with
``RuntimeError: dictionary changed size during iteration``
(:func:`test_invalidate_concurrent_with_stores` reproduces it within a
few thousand rounds when the internal lock is stubbed out — exactly the
pre-fix code).  The del/re-insert lookup race is a ``KeyError`` on
free-threaded builds and any interleaving with a call boundary between
the delete and the re-insert; the same-key hammers cover it.

``sys.setswitchinterval`` is tightened during the hammers so the
interpreter actually interleaves the threads, and restored afterwards.
"""

from __future__ import annotations

import sys
import threading

import pytest

from repro.relational.instance import Fact
from repro.runtime.cache import SignatureProgramCache, program_key

THREADS = 8
ROUNDS = 400


@pytest.fixture(autouse=True)
def _tight_switch_interval():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


def _keys(count: int):
    return [
        program_key(
            frozenset({index}),
            "repair",
            "certain",
            [(Fact("q", (index,)), (Fact("r", (index,)),))],
        )
        for index in range(count)
    ]


def _run_threads(work, count=THREADS):
    """Run ``work(thread_index)`` on ``count`` threads; re-raise errors."""
    errors: list[BaseException] = []
    barrier = threading.Barrier(count)

    def runner(index: int) -> None:
        try:
            barrier.wait()
            work(index)
        except BaseException as exc:  # noqa: BLE001 — the assertion channel
            errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(i,)) for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


def test_invalidate_concurrent_with_stores():
    """The old-code killer: invalidation scans while stores grow the dict.

    ``invalidate_clusters`` iterates ``self._programs`` in a
    comprehension (loop back-edges = switch points); a concurrent
    ``store_program`` inserting a *new* key mid-scan made the unlocked
    code raise ``RuntimeError: dictionary changed size during
    iteration``.  Stubbing the cache's ``_lock`` out reproduces that
    failure reliably at these iteration counts.
    """
    cache = SignatureProgramCache()
    keys = _keys(96)
    for index in range(64):
        cache.store_program(keys[index], [Fact("q", (index,))])
    stop = threading.Event()

    def work(index: int) -> None:
        if index == 0:
            try:
                for round_number in range(3000):
                    cache.invalidate_clusters(
                        frozenset({round_number % 64})
                    )
            finally:
                stop.set()
        else:
            round_number = 0
            while not stop.is_set():
                key = keys[(index * 12 + round_number) % len(keys)]
                cache.store_program(key, [Fact("q", (round_number,))])
                round_number += 1

    _run_threads(work)


def test_concurrent_same_key_lookups_survive():
    """Bounded LRU + all threads hammering ONE key: every hit refreshes
    recency (``del`` then re-insert), the historically racy read path."""
    cache = SignatureProgramCache(max_programs=4, max_decisions=4)
    [key] = _keys(1)
    value = frozenset({Fact("q", (0,))})
    cache.store_program(key, value)

    def work(_index: int) -> None:
        for _ in range(ROUNDS):
            found = cache.lookup_program(key)
            assert found in (None, value)

    _run_threads(work)
    assert cache.lookup_program(key) == value


def test_concurrent_lookup_store_invalidate_mix():
    """Full-API hammer: lookups, stores, eviction and invalidation from
    every thread at once; the cache must neither crash nor lose
    consistency (a surviving entry always round-trips its stored value)."""
    cache = SignatureProgramCache(max_programs=8, max_decisions=8)
    keys = _keys(16)
    values = {
        key: frozenset({Fact("q", (index,))})
        for index, key in enumerate(keys)
    }

    def work(index: int) -> None:
        for round_number in range(ROUNDS):
            key = keys[(index + round_number) % len(keys)]
            if round_number % 5 == index % 5:
                cache.store_program(key, values[key])
                cache.store_decision(
                    key[0], "repair", "certain", frozenset(), True
                )
            elif round_number % 17 == 0:
                cache.invalidate_clusters(key[0])
            else:
                found = cache.lookup_program(key)
                assert found in (None, values[key])
                verdict = cache.lookup_decision(
                    key[0], "repair", "certain", frozenset()
                )
                assert verdict in (None, True)

    _run_threads(work)
    # Bounds hold after the storm.
    assert len(cache) <= 16
    stats = cache.stats
    assert stats.program_hits + stats.program_misses >= ROUNDS


def test_concurrent_decision_layer_same_key():
    """The decision layer has the same del/re-insert recency pattern."""
    cache = SignatureProgramCache(max_programs=4, max_decisions=4)
    signature = frozenset({7})
    cache.store_decision(signature, "repair", "certain", frozenset(), True)

    def work(_index: int) -> None:
        for _ in range(ROUNDS):
            verdict = cache.lookup_decision(
                signature, "repair", "certain", frozenset()
            )
            assert verdict in (None, True)

    _run_threads(work)


def test_single_threaded_behavior_unchanged():
    """The lock must not change single-threaded semantics: hits, misses,
    LRU eviction order and invalidation counts stay exactly as before."""
    cache = SignatureProgramCache(max_programs=2)
    k1, k2, k3 = _keys(3)
    cache.store_program(k1, [Fact("a", (1,))])
    cache.store_program(k2, [Fact("a", (2,))])
    assert cache.lookup_program(k1) == frozenset({Fact("a", (1,))})
    cache.store_program(k3, [Fact("a", (3,))])  # evicts k2 (LRU)
    assert cache.lookup_program(k2) is None
    assert cache.lookup_program(k1) is not None
    assert cache.stats.program_evictions == 1
