"""Tests for the solve executors (sequential, process-parallel, fallbacks)."""

import pickle

from repro.asp.syntax import AtomTable, GroundProgram, GroundRule
from repro.relational import Fact, SkolemValue
from repro.runtime import (
    PackedProgram,
    ParallelExecutor,
    SequentialExecutor,
    SolveTask,
    make_executor,
    solve_task,
)


def chain_program(length: int) -> GroundProgram:
    """a1. a2 :- a1. ... — every atom cautiously true."""
    program = GroundProgram(AtomTable())
    for index in range(length):
        program.atoms.intern(Fact("a", (index,)))
    program.add_rule(GroundRule(head=(1,)))
    for atom in range(2, length + 1):
        program.add_rule(GroundRule(head=(atom,), body_pos=(atom - 1,)))
    return program


def guess_program() -> GroundProgram:
    """a1 ∨ a2. — neither cautious, both brave."""
    program = GroundProgram(AtomTable())
    program.atoms.intern(Fact("a", (1,)))
    program.atoms.intern(Fact("a", (2,)))
    program.add_rule(GroundRule(head=(1, 2)))
    return program


def a_batch() -> list[SolveTask]:
    tasks = [
        SolveTask(PackedProgram.pack(chain_program(n)), tuple(range(1, n + 1)))
        for n in (2, 3, 4)
    ]
    tasks.append(SolveTask(PackedProgram.pack(guess_program()), (1, 2), "certain"))
    tasks.append(SolveTask(PackedProgram.pack(guess_program()), (1, 2), "possible"))
    return tasks


EXPECTED = [
    frozenset({1, 2}),
    frozenset({1, 2, 3}),
    frozenset({1, 2, 3, 4}),
    frozenset(),          # disjunctive guess: nothing cautious
    frozenset({1, 2}),    # ... but everything brave
]


class TestSolveTask:
    def test_outcome_fields(self):
        outcome = solve_task(a_batch()[0])
        assert outcome.decided == EXPECTED[0]
        assert outcome.seconds >= 0
        assert "conflicts" in outcome.solver_stats
        assert outcome.solver_stats["vars"] >= 2

    def test_packed_program_is_idempotent(self):
        packed = PackedProgram.pack(chain_program(2))
        assert PackedProgram.pack(packed) is packed

    def test_packed_program_pickles_without_atom_table(self):
        packed = PackedProgram.pack(chain_program(3))
        clone = pickle.loads(pickle.dumps(packed))
        assert clone.num_atoms == 3
        assert clone.rules == packed.rules


class TestSequentialExecutor:
    def test_order_preserving(self):
        outcomes = SequentialExecutor().run(a_batch())
        assert [o.decided for o in outcomes] == EXPECTED


class TestParallelExecutor:
    def test_matches_sequential(self):
        with ParallelExecutor(jobs=2, min_batch=1) as executor:
            outcomes = executor.run(a_batch())
            assert executor.last_dispatch == "parallel"
        assert [o.decided for o in outcomes] == EXPECTED

    def test_small_batch_runs_in_process(self):
        with ParallelExecutor(jobs=2, min_batch=10) as executor:
            outcomes = executor.run(a_batch()[:3])
            assert executor.last_dispatch == "sequential"
            assert [o.decided for o in outcomes] == EXPECTED[:3]
            assert executor._pool is None  # never even forked

    def test_jobs_of_one_runs_in_process(self):
        with ParallelExecutor(jobs=1, min_batch=1) as executor:
            executor.run(a_batch())
            assert executor.last_dispatch == "sequential"

    def test_falls_back_when_pool_cannot_spawn(self, monkeypatch):
        executor = ParallelExecutor(jobs=2, min_batch=1)
        monkeypatch.setattr(executor, "_ensure_pool", lambda: None)
        outcomes = executor.run(a_batch())
        assert executor.last_dispatch == "sequential"
        assert [o.decided for o in outcomes] == EXPECTED

    def test_falls_back_on_unpicklable_task(self):
        class LocalProgram:  # local classes cannot be pickled
            num_atoms = 1
            rules = (GroundRule(head=(1,)),)

        tasks = [SolveTask(LocalProgram(), (1,), "certain") for _ in range(4)]
        with ParallelExecutor(jobs=2, min_batch=1) as executor:
            outcomes = executor.run(tasks)
            assert executor.last_dispatch == "sequential"
        assert all(o.decided == frozenset({1}) for o in outcomes)

    def test_reusable_across_batches(self):
        with ParallelExecutor(jobs=2, min_batch=1) as executor:
            first = executor.run(a_batch())
            second = executor.run(a_batch())
        assert [o.decided for o in first] == [o.decided for o in second]


class TestMakeExecutor:
    def test_dispatch_on_jobs(self):
        assert isinstance(make_executor(1), SequentialExecutor)
        parallel = make_executor(3)
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.jobs == 3
        parallel.close()


class TestSpawnSafePickling:
    """Values embed their hash; unpickling must recompute it, because str
    hashes are salted per interpreter (spawn-started workers differ)."""

    def test_fact_roundtrip(self):
        fact = Fact("R", ("a", 1, SkolemValue("f", ("x",))))
        clone = pickle.loads(pickle.dumps(fact))
        assert clone == fact
        assert hash(clone) == hash(fact)
        assert clone in {fact}

    def test_skolem_roundtrip(self):
        value = SkolemValue("f", ("a", SkolemValue("g", (1,))))
        clone = pickle.loads(pickle.dumps(value))
        assert clone == value
        assert clone in {value}

    def test_fact_hash_recomputed_not_copied(self):
        fact = Fact("R", ("a",))
        payload = fact.__reduce__()
        assert payload == (Fact, ("R", ("a",)))  # no baked-in _hash
