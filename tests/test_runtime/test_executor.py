"""Tests for the solve executors (sequential, process-parallel, fallbacks)."""

import pickle
import time

from repro.asp.syntax import AtomTable, GroundProgram, GroundRule
from repro.fuzz.faults import FaultInjectingExecutor, FaultPlan
from repro.relational import Fact, SkolemValue
from repro.runtime import (
    NO_BUDGET,
    Deadline,
    PackedProgram,
    ParallelExecutor,
    SequentialExecutor,
    SolveBudget,
    SolveTask,
    make_executor,
    solve_task,
)
from repro.runtime import executor as executor_module


def chain_program(length: int) -> GroundProgram:
    """a1. a2 :- a1. ... — every atom cautiously true."""
    program = GroundProgram(AtomTable())
    for index in range(length):
        program.atoms.intern(Fact("a", (index,)))
    program.add_rule(GroundRule(head=(1,)))
    for atom in range(2, length + 1):
        program.add_rule(GroundRule(head=(atom,), body_pos=(atom - 1,)))
    return program


def guess_program() -> GroundProgram:
    """a1 ∨ a2. — neither cautious, both brave."""
    program = GroundProgram(AtomTable())
    program.atoms.intern(Fact("a", (1,)))
    program.atoms.intern(Fact("a", (2,)))
    program.add_rule(GroundRule(head=(1, 2)))
    return program


def a_batch(budget: SolveBudget = NO_BUDGET) -> list[SolveTask]:
    tasks = [
        SolveTask(
            PackedProgram.pack(chain_program(n)), tuple(range(1, n + 1)),
            budget=budget,
        )
        for n in (2, 3, 4)
    ]
    tasks.append(
        SolveTask(PackedProgram.pack(guess_program()), (1, 2), "certain", budget)
    )
    tasks.append(
        SolveTask(PackedProgram.pack(guess_program()), (1, 2), "possible", budget)
    )
    return tasks


EXPECTED = [
    frozenset({1, 2}),
    frozenset({1, 2, 3}),
    frozenset({1, 2, 3, 4}),
    frozenset(),          # disjunctive guess: nothing cautious
    frozenset({1, 2}),    # ... but everything brave
]


class TestSolveTask:
    def test_outcome_fields(self):
        outcome = solve_task(a_batch()[0])
        assert outcome.decided == EXPECTED[0]
        assert outcome.seconds >= 0
        assert "conflicts" in outcome.solver_stats
        assert outcome.solver_stats["vars"] >= 2

    def test_packed_program_is_idempotent(self):
        packed = PackedProgram.pack(chain_program(2))
        assert PackedProgram.pack(packed) is packed

    def test_packed_program_pickles_without_atom_table(self):
        packed = PackedProgram.pack(chain_program(3))
        clone = pickle.loads(pickle.dumps(packed))
        assert clone.num_atoms == 3
        assert clone.rules == packed.rules


class TestSequentialExecutor:
    def test_order_preserving(self):
        outcomes = SequentialExecutor().run(a_batch())
        assert [o.decided for o in outcomes] == EXPECTED


class TestParallelExecutor:
    def test_matches_sequential(self):
        with ParallelExecutor(jobs=2, min_batch=1) as executor:
            outcomes = executor.run(a_batch())
            assert executor.last_dispatch == "parallel"
        assert [o.decided for o in outcomes] == EXPECTED

    def test_small_batch_runs_in_process(self):
        with ParallelExecutor(jobs=2, min_batch=10) as executor:
            outcomes = executor.run(a_batch()[:3])
            assert executor.last_dispatch == "sequential"
            assert [o.decided for o in outcomes] == EXPECTED[:3]
            assert executor._pool is None  # never even forked

    def test_jobs_of_one_runs_in_process(self):
        with ParallelExecutor(jobs=1, min_batch=1) as executor:
            executor.run(a_batch())
            assert executor.last_dispatch == "sequential"

    def test_falls_back_when_pool_cannot_spawn(self, monkeypatch):
        executor = ParallelExecutor(jobs=2, min_batch=1)
        monkeypatch.setattr(executor, "_ensure_pool", lambda: None)
        outcomes = executor.run(a_batch())
        assert executor.last_dispatch == "sequential"
        assert [o.decided for o in outcomes] == EXPECTED

    def test_falls_back_on_unpicklable_task(self):
        class LocalProgram:  # local classes cannot be pickled
            num_atoms = 1
            rules = (GroundRule(head=(1,)),)

        tasks = [SolveTask(LocalProgram(), (1,), "certain") for _ in range(4)]
        with ParallelExecutor(jobs=2, min_batch=1) as executor:
            outcomes = executor.run(tasks)
            assert executor.last_dispatch == "sequential"
        assert all(o.decided == frozenset({1}) for o in outcomes)

    def test_reusable_across_batches(self):
        with ParallelExecutor(jobs=2, min_batch=1) as executor:
            first = executor.run(a_batch())
            second = executor.run(a_batch())
        assert [o.decided for o in first] == [o.decided for o in second]


class TestDeadlines:
    def test_sequential_expired_deadline_times_out_everything(self):
        outcomes = SequentialExecutor().run(
            a_batch(), deadline=Deadline(time.monotonic() - 1.0)
        )
        assert all(o.status == "timeout" for o in outcomes)

    def test_parallel_expired_deadline_times_out_without_dispatch(self):
        with ParallelExecutor(jobs=2, min_batch=1) as executor:
            started = time.perf_counter()
            outcomes = executor.run(
                a_batch(), deadline=Deadline(time.monotonic() - 1.0)
            )
            elapsed = time.perf_counter() - started
        assert all(o.status == "timeout" for o in outcomes)
        assert elapsed < 1.0  # nothing waited on a pool

    def test_no_deadline_is_answer_identical(self):
        with ParallelExecutor(jobs=2, min_batch=1) as executor:
            outcomes = executor.run(a_batch(), deadline=None)
        assert [o.decided for o in outcomes] == EXPECTED
        assert all(o.ok and o.attempts == 1 for o in outcomes)


class TestCrashRecovery:
    def test_single_crashed_task_retries_and_recovers(self):
        plan = FaultPlan(crash_on=frozenset({0}), crash_attempts=1)
        budget = SolveBudget(max_retries=2, retry_backoff=0.01)
        with FaultInjectingExecutor(plan, jobs=2) as executor:
            outcomes = executor.run(a_batch(budget)[:1])
        assert outcomes[0].ok
        assert outcomes[0].decided == EXPECTED[0]
        assert outcomes[0].attempts == 2
        assert executor.last_dispatch == "parallel"

    def test_whole_batch_recovers_from_mid_batch_crashes(self):
        plan = FaultPlan(crash_on=frozenset({1, 3}), crash_attempts=1)
        budget = SolveBudget(max_retries=3, retry_backoff=0.01)
        with FaultInjectingExecutor(plan, jobs=2) as executor:
            outcomes = executor.run(a_batch(budget))
            # The executor must stay usable after recreating its pool.
            again = executor.run(a_batch(budget))
        assert [o.decided for o in outcomes] == EXPECTED
        assert max(o.attempts for o in outcomes) > 1
        assert [o.decided for o in again] == EXPECTED

    def test_crash_without_retry_budget_is_an_error(self):
        plan = FaultPlan(crash_on=frozenset({0}), crash_attempts=1)
        with FaultInjectingExecutor(plan, jobs=2) as executor:
            outcomes = executor.run(a_batch()[:1])
        assert outcomes[0].status == "error"
        assert outcomes[0].decided is None
        assert outcomes[0].attempts == 1

    def test_persistent_crasher_exhausts_retries(self):
        plan = FaultPlan(crash_on=frozenset({0}), crash_attempts=10)
        budget = SolveBudget(max_retries=2, retry_backoff=0.01)
        with FaultInjectingExecutor(plan, jobs=2) as executor:
            outcomes = executor.run(a_batch(budget)[:1])
        assert outcomes[0].status == "error"
        assert outcomes[0].attempts == 3  # initial dispatch + 2 retries


class TestWedgedWorkers:
    def test_hung_worker_is_abandoned_at_the_deadline(self):
        plan = FaultPlan(hang_on=frozenset({0}), hang_seconds=30.0)
        with FaultInjectingExecutor(plan, jobs=2, deadline_grace=0.25) as executor:
            started = time.perf_counter()
            outcomes = executor.run(a_batch(), deadline=Deadline.after(0.5))
            elapsed = time.perf_counter() - started
            assert executor._pool is None  # the wedged pool was abandoned
            # A fresh batch afterwards works on a recreated pool.
            again = executor.run(a_batch())
        assert outcomes[0].status == "timeout"
        assert elapsed < 10.0  # bounded, nowhere near the 30s hang
        assert [o.decided for o in again] == EXPECTED

    def test_task_timeouts_bound_the_wait_without_a_batch_deadline(self):
        plan = FaultPlan(hang_on=frozenset({0}), hang_seconds=30.0)
        budget = SolveBudget(task_timeout=0.3)
        with FaultInjectingExecutor(plan, jobs=2, deadline_grace=0.25) as executor:
            started = time.perf_counter()
            outcomes = executor.run(a_batch(budget))
            elapsed = time.perf_counter() - started
        assert outcomes[0].status == "timeout"
        assert elapsed < 10.0
        # The un-hung tasks completed normally.
        assert [o.decided for o in outcomes[1:]] == EXPECTED[1:]


class TestPoolRecreation:
    def test_transient_spawn_failure_recovers_with_backoff(self, monkeypatch):
        real_pool = executor_module._ProcessPool
        calls = {"n": 0}

        def flaky_pool(max_workers=None):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise OSError("spawn temporarily blocked")
            return real_pool(max_workers=max_workers)

        monkeypatch.setattr(executor_module, "_ProcessPool", flaky_pool)
        with ParallelExecutor(jobs=2, min_batch=1) as executor:
            outcomes = executor.run(a_batch())
            assert executor.last_dispatch == "parallel"
            assert executor._spawn_failures == 2
        assert [o.decided for o in outcomes] == EXPECTED

    def test_exhausted_attempts_degrade_to_in_process(self, monkeypatch):
        def dead_pool(max_workers=None):
            raise OSError("no processes for you")

        monkeypatch.setattr(executor_module, "_ProcessPool", dead_pool)
        with ParallelExecutor(jobs=2, min_batch=1) as executor:
            outcomes = executor.run(a_batch())
            assert executor.last_dispatch == "sequential"
            assert executor._spawn_failures == executor_module.POOL_RECREATE_ATTEMPTS
        assert [o.decided for o in outcomes] == EXPECTED

    def test_lifetime_cap_stops_spawn_attempts(self, monkeypatch):
        calls = {"n": 0}

        def counting_dead_pool(max_workers=None):
            calls["n"] += 1
            raise OSError("still no processes")

        monkeypatch.setattr(executor_module, "_ProcessPool", counting_dead_pool)
        with ParallelExecutor(jobs=2, min_batch=1) as executor:
            executor._spawn_failures = executor_module.SPAWN_FAILURE_CAP
            outcomes = executor.run(a_batch())
            assert executor.last_dispatch == "sequential"
        assert calls["n"] == 0  # the cap short-circuits before spawning
        assert [o.decided for o in outcomes] == EXPECTED


class TestMakeExecutor:
    def test_dispatch_on_jobs(self):
        assert isinstance(make_executor(1), SequentialExecutor)
        parallel = make_executor(3)
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.jobs == 3
        parallel.close()


class TestSpawnSafePickling:
    """Values embed their hash; unpickling must recompute it, because str
    hashes are salted per interpreter (spawn-started workers differ)."""

    def test_fact_roundtrip(self):
        fact = Fact("R", ("a", 1, SkolemValue("f", ("x",))))
        clone = pickle.loads(pickle.dumps(fact))
        assert clone == fact
        assert hash(clone) == hash(fact)
        assert clone in {fact}

    def test_skolem_roundtrip(self):
        value = SkolemValue("f", ("a", SkolemValue("g", (1,))))
        clone = pickle.loads(pickle.dumps(value))
        assert clone == value
        assert clone in {value}

    def test_fact_hash_recomputed_not_copied(self):
        fact = Fact("R", ("a",))
        payload = fact.__reduce__()
        assert payload == (Fact, ("R", ("a",)))  # no baked-in _hash
