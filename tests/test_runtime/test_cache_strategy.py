"""Cache interaction with the incremental (family) solve strategy.

The caches are keyed per *signature* in both strategies — the family
program is a solving vehicle, never a cache key — so warm entries must be
shared across strategies, LRU bounds must hold when families write them,
cluster-keyed invalidation must behave identically, and a family member
whose verdicts are only partial must never be cached.
"""

from repro.incremental import Delta
from repro.parser import parse_mapping, parse_query
from repro.relational import Fact, Instance
from repro.runtime.cache import SignatureProgramCache
from repro.runtime.executor import SolveOutcome
from repro.xr.segmentary import SegmentaryEngine


def f(rel, *args):
    return Fact(rel, args)


CONFLICT_INSTANCE = [f("R", "a", "b"), f("R", "a", "c"), f("R", "d", "e")]

QUERY_TEXTS = [
    "q(x) :- P(x, y).",
    "r(x, y) :- P(x, y).",
    "s(y) :- P(x, y).",
]


def key_mapping():
    return parse_mapping(
        """
        SOURCE R/2. TARGET P/2.
        R(x, y) -> P(x, y).
        P(x, y), P(x, z) -> y = z.
        """
    )


def bridge_mapping():
    return parse_mapping(
        """
        SOURCE R/2, B/2.
        TARGET P/2.
        R(x, y) -> P(x, y).
        B(x, y) -> P(x, y), P(y, x).
        P(x, y), P(x, z) -> y = z.
        """
    )


TWO_CONFLICTS = [
    f("R", "a", "b"),
    f("R", "a", "c"),
    f("R", "d", "e"),
    f("R", "d", "g"),
]


class TestCrossStrategySharing:
    def test_per_signature_warms_the_incremental_engine(self):
        cache = SignatureProgramCache()
        query = parse_query("q(x) :- P(x, y).")
        with SegmentaryEngine(
            key_mapping(), Instance(CONFLICT_INSTANCE),
            cache=cache, solve_strategy="per-signature",
        ) as legacy:
            cold = legacy.answer(query)
            assert legacy.last_query_stats.programs_solved > 0
        with SegmentaryEngine(
            key_mapping(), Instance(CONFLICT_INSTANCE),
            cache=cache, solve_strategy="incremental",
        ) as warm:
            answers = warm.answer(query)
            stats = warm.last_query_stats
        assert answers == cold
        assert stats.programs_solved == 0
        assert stats.cache_hits > 0

    def test_incremental_warms_the_per_signature_engine(self):
        cache = SignatureProgramCache()
        query = parse_query("q(x) :- P(x, y).")
        with SegmentaryEngine(
            key_mapping(), Instance(CONFLICT_INSTANCE),
            cache=cache, solve_strategy="incremental",
        ) as family:
            cold = family.answer(query)
            assert family.last_query_stats.families_solved > 0
        with SegmentaryEngine(
            key_mapping(), Instance(CONFLICT_INSTANCE),
            cache=cache, solve_strategy="per-signature",
        ) as legacy:
            answers = legacy.answer(query)
            stats = legacy.last_query_stats
        assert answers == cold
        assert stats.programs_solved == 0
        assert stats.cache_hits > 0

    def test_memo_shared_across_strategies_and_query_names(self):
        cache = SignatureProgramCache()
        with SegmentaryEngine(
            key_mapping(), Instance(CONFLICT_INSTANCE),
            cache=cache, solve_strategy="incremental",
        ) as family:
            first = family.answer(parse_query("q(x) :- P(x, y)."))
        with SegmentaryEngine(
            key_mapping(), Instance(CONFLICT_INSTANCE),
            cache=cache, solve_strategy="per-signature",
        ) as legacy:
            # Different predicate name: the program cache misses but the
            # structural decision memo — written by the family run — hits.
            second = legacy.answer(parse_query("r(x) :- P(x, y)."))
            stats = legacy.last_query_stats
        assert second == first
        assert stats.programs_solved == 0
        assert stats.memo_hits > 0


class TestFamilyLruBounds:
    def test_family_entries_respect_tiny_bounds(self):
        expected = []
        with SegmentaryEngine(
            key_mapping(), Instance(CONFLICT_INSTANCE),
            solve_strategy="incremental",
        ) as unbounded:
            expected = [
                unbounded.answer(parse_query(text)) for text in QUERY_TEXTS
            ]
        tiny = SignatureProgramCache(max_programs=1, max_decisions=1)
        with SegmentaryEngine(
            key_mapping(), Instance(CONFLICT_INSTANCE),
            cache=tiny, solve_strategy="incremental",
        ) as bounded:
            got = [bounded.answer(parse_query(text)) for text in QUERY_TEXTS]
        assert got == expected
        assert len(tiny) <= 2
        assert tiny.stats.program_evictions + tiny.stats.decision_evictions > 0


class TestFamilyInvalidation:
    QUERY = parse_query("q(x, y) :- P(x, y).")

    def warm_engine(self, instance_facts):
        engine = SegmentaryEngine(
            bridge_mapping(), Instance(instance_facts),
            solve_strategy="incremental",
        )
        engine.answer(self.QUERY)
        assert len(engine.cache) > 0
        return engine

    def reference(self, instance_facts):
        # Cross-strategy reference: the legacy path on a fresh engine.
        with SegmentaryEngine(
            bridge_mapping(), Instance(instance_facts),
            solve_strategy="per-signature", cache=False,
        ) as engine:
            return engine.answer(self.QUERY)

    def test_merge_retires_family_entries(self):
        engine = self.warm_engine(TWO_CONFLICTS)
        session = engine.update_session()
        report = session.apply(Delta(inserts=frozenset({f("B", "a", "d")})))
        assert report.cache_invalidated > 0
        updated = TWO_CONFLICTS + [f("B", "a", "d")]
        assert engine.answer(self.QUERY) == self.reference(updated)

    def test_split_reanswers_correctly(self):
        merged = TWO_CONFLICTS + [f("B", "a", "d")]
        engine = self.warm_engine(merged)
        session = engine.update_session()
        session.apply(Delta(retracts=frozenset({f("B", "a", "d")})))
        assert engine.answer(self.QUERY) == self.reference(TWO_CONFLICTS)

    def test_emptied_cluster_with_surviving_neighbor_entries(self):
        engine = self.warm_engine(TWO_CONFLICTS)
        session = engine.update_session()
        report = session.apply(Delta(retracts=frozenset({f("R", "a", "c")})))
        assert report.cache_invalidated > 0
        remaining = [x for x in TWO_CONFLICTS if x != f("R", "a", "c")]
        answers = engine.answer(self.QUERY)
        stats = engine.last_query_stats
        # The untouched 'd' cluster's entries survived: nothing re-solves.
        assert stats.programs_solved == 0
        assert answers == self.reference(remaining)


class _PartialExecutor:
    """A stub executor that cuts every family off mid-solve: one atom per
    task stays undecided, the rest are (claimed) rejected."""

    name = "stub"
    last_dispatch = "sequential"

    def run(self, tasks, deadline=None):
        outcomes = []
        for task in tasks:
            atoms = sorted(task.query_atom_ids)
            outcomes.append(
                SolveOutcome(
                    decided=frozenset(),
                    rejected=frozenset(atoms[1:]),
                    undecided=frozenset(atoms[:1]),
                    status="timeout",
                )
            )
        return outcomes

    def close(self):
        pass


class TestPartialFamiliesNeverCached:
    def test_partially_decided_member_writes_nothing(self):
        cache = SignatureProgramCache()
        engine = SegmentaryEngine(
            key_mapping(), Instance(CONFLICT_INSTANCE),
            cache=cache, executor=_PartialExecutor(),
            solve_strategy="incremental",
        )
        query = parse_query("q(x, y) :- P(x, y).")
        answers = engine.answer(query, allow_partial=True)
        stats = engine.last_query_stats
        assert stats.degraded
        assert len(stats.unknown_candidates) == 1
        # The safe candidate is still answered; the suspect group, being
        # only partially decided, left no trace in either cache layer.
        assert ("d", "e") in answers
        assert len(cache) == 0
