"""Tests for the cross-query signature-program cache and decision memo."""

from repro.parser import parse_mapping, parse_query
from repro.relational import Fact, Instance
from repro.runtime.cache import SignatureProgramCache, decision_key, program_key
from repro.xr.segmentary import SegmentaryEngine


def f(rel, *args):
    return Fact(rel, args)


CONFLICT_INSTANCE = [f("R", "a", "b"), f("R", "a", "c"), f("R", "d", "e")]


def key_mapping():
    return parse_mapping(
        """
        SOURCE R/2. TARGET P/2.
        R(x, y) -> P(x, y).
        P(x, y), P(x, z) -> y = z.
        """
    )


class TestKeys:
    def test_decision_key_drops_safe_facts(self):
        safe = {f("R", "d", "e")}
        key = decision_key([(f("R", "a", "b"), f("R", "d", "e"))], safe)
        assert key == frozenset({frozenset({f("R", "a", "b")})})

    def test_decision_key_ignores_support_order_and_duplicates(self):
        s1 = (f("R", "a", "b"), f("R", "a", "c"))
        s2 = (f("R", "a", "c"), f("R", "a", "b"), f("R", "a", "b"))
        assert decision_key([s1], set()) == decision_key([s2], set())

    def test_program_key_separates_mode_and_encoding(self):
        groundings = [(f("q", "a"), (f("R", "a", "b"),))]
        signature = frozenset({0})
        keys = {
            program_key(signature, enc, mode, groundings)
            for enc in ("repair", "figure1")
            for mode in ("certain", "possible")
        }
        assert len(keys) == 4


class TestCacheLayers:
    def test_program_layer_hit_miss_accounting(self):
        cache = SignatureProgramCache()
        key = program_key(frozenset({0}), "repair", "certain", [])
        assert cache.lookup_program(key) is None
        cache.store_program(key, [f("q", "a")])
        assert cache.lookup_program(key) == frozenset({f("q", "a")})
        assert cache.stats.program_misses == 1
        assert cache.stats.program_hits == 1

    def test_decision_layer_hit_miss_accounting(self):
        cache = SignatureProgramCache()
        signature = frozenset({0})
        key = decision_key([(f("R", "a", "b"),)], set())
        assert cache.lookup_decision(signature, "repair", "certain", key) is None
        cache.store_decision(signature, "repair", "certain", key, True)
        assert cache.lookup_decision(signature, "repair", "certain", key) is True
        # Same structure under the other mode is a distinct entry.
        assert cache.lookup_decision(signature, "repair", "possible", key) is None
        assert cache.stats.decision_misses == 2
        assert cache.stats.decision_hits == 1

    def test_clear_and_len(self):
        cache = SignatureProgramCache()
        cache.store_program(
            program_key(frozenset({0}), "repair", "certain", []), []
        )
        cache.store_decision(
            frozenset({0}), "repair", "certain",
            decision_key([], set()), False,
        )
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0


class TestBoundedLru:
    def pk(self, n):
        return program_key(frozenset({n}), "repair", "certain", [])

    def test_rejects_zero_capacity(self):
        import pytest

        with pytest.raises(ValueError, match="max_programs"):
            SignatureProgramCache(max_programs=0)
        with pytest.raises(ValueError, match="max_decisions"):
            SignatureProgramCache(max_decisions=0)

    def test_program_layer_evicts_least_recently_used(self):
        cache = SignatureProgramCache(max_programs=2)
        cache.store_program(self.pk(0), [f("q", "a")])
        cache.store_program(self.pk(1), [f("q", "b")])
        # Touch key 0 so key 1 becomes the LRU victim.
        assert cache.lookup_program(self.pk(0)) is not None
        cache.store_program(self.pk(2), [f("q", "c")])
        assert cache.stats.program_evictions == 1
        assert cache.lookup_program(self.pk(1)) is None
        assert cache.lookup_program(self.pk(0)) == frozenset({f("q", "a")})
        assert cache.lookup_program(self.pk(2)) == frozenset({f("q", "c")})

    def test_decision_layer_evicts_least_recently_used(self):
        cache = SignatureProgramCache(max_decisions=1)
        k1 = decision_key([(f("R", "a", "b"),)], set())
        k2 = decision_key([(f("R", "a", "c"),)], set())
        cache.store_decision(frozenset({0}), "repair", "certain", k1, True)
        cache.store_decision(frozenset({0}), "repair", "certain", k2, False)
        assert cache.stats.decision_evictions == 1
        assert (
            cache.lookup_decision(frozenset({0}), "repair", "certain", k1)
            is None
        )
        assert (
            cache.lookup_decision(frozenset({0}), "repair", "certain", k2)
            is False
        )

    def test_restore_refreshes_recency(self):
        cache = SignatureProgramCache(max_programs=2)
        cache.store_program(self.pk(0), [])
        cache.store_program(self.pk(1), [])
        cache.store_program(self.pk(0), [f("q", "z")])  # re-store: refresh
        cache.store_program(self.pk(2), [])
        assert cache.lookup_program(self.pk(1)) is None
        assert cache.lookup_program(self.pk(0)) == frozenset({f("q", "z")})

    def test_eviction_metrics_hook(self):
        from repro.obs.metrics import Metrics

        cache = SignatureProgramCache(max_programs=1, max_decisions=1)
        cache.metrics = Metrics()
        cache.store_program(self.pk(0), [])
        cache.store_program(self.pk(1), [])
        cache.store_decision(
            frozenset({0}), "repair", "certain", decision_key([], set()), True
        )
        cache.store_decision(
            frozenset({1}), "repair", "certain",
            decision_key([(f("R", "a", "b"),)], set()), False,
        )
        counters = cache.metrics.counter_values()
        assert counters["cache_program_evictions_total"] == 1
        assert counters["cache_decision_evictions_total"] == 1

    def test_answers_unchanged_at_capacity(self):
        query_texts = [
            "q(x) :- P(x, y).",
            "r(x, y) :- P(x, y).",
            "s(y) :- P(x, y).",
        ]
        unbounded = SegmentaryEngine(
            key_mapping(), Instance(CONFLICT_INSTANCE)
        )
        expected = [
            unbounded.answer(parse_query(text)) for text in query_texts
        ]
        tiny = SignatureProgramCache(max_programs=1, max_decisions=1)
        bounded = SegmentaryEngine(
            key_mapping(), Instance(CONFLICT_INSTANCE), cache=tiny
        )
        got = [bounded.answer(parse_query(text)) for text in query_texts]
        assert got == expected
        assert len(tiny) <= 2
        assert (
            tiny.stats.program_evictions + tiny.stats.decision_evictions > 0
        )


class TestEngineIntegration:
    def test_warm_repeat_skips_solving(self):
        engine = SegmentaryEngine(key_mapping(), Instance(CONFLICT_INSTANCE))
        query = parse_query("q(x) :- P(x, y).")
        cold = engine.answer(query)
        cold_stats = engine.last_query_stats
        assert cold_stats.programs_solved > 0
        assert cold_stats.cache_hits == 0
        warm = engine.answer(query)
        warm_stats = engine.last_query_stats
        assert warm == cold == {("a",), ("d",)}
        assert warm_stats.programs_solved == 0
        assert warm_stats.cache_hits > 0

    def test_decision_memo_shared_across_query_names(self):
        engine = SegmentaryEngine(key_mapping(), Instance(CONFLICT_INSTANCE))
        first = engine.answer(parse_query("q(x) :- P(x, y)."))
        # Different predicate name, same candidate structure: the program
        # cache misses but every decision comes from the memo.
        second = engine.answer(parse_query("r(x) :- P(x, y)."))
        stats = engine.last_query_stats
        assert second == first
        assert stats.programs_solved == 0
        assert stats.memo_hits > 0

    def test_certain_and_possible_do_not_cross_pollute(self):
        engine = SegmentaryEngine(key_mapping(), Instance(CONFLICT_INSTANCE))
        certain = engine.answer(parse_query("q(x, y) :- P(x, y)."))
        possible = engine.possible_answers(parse_query("q(x, y) :- P(x, y)."))
        assert certain == {("d", "e")}
        assert possible == {("a", "b"), ("a", "c"), ("d", "e")}

    def test_cache_disabled(self):
        engine = SegmentaryEngine(
            key_mapping(), Instance(CONFLICT_INSTANCE), cache=False
        )
        query = parse_query("q(x) :- P(x, y).")
        first = engine.answer(query)
        solved_first = engine.last_query_stats.programs_solved
        second = engine.answer(query)
        stats = engine.last_query_stats
        assert first == second
        assert stats.programs_solved == solved_first > 0
        assert stats.cache_hits == stats.memo_hits == 0

    def test_shared_cache_instance(self):
        cache = SignatureProgramCache()
        engine = SegmentaryEngine(
            key_mapping(), Instance(CONFLICT_INSTANCE), cache=cache
        )
        engine.answer(parse_query("q(x) :- P(x, y)."))
        assert engine.cache is cache
        assert len(cache) > 0
