"""Family solve tasks through the executors.

A ``SolveTask(family=True)`` decides all its query atoms on one engine
via :func:`repro.asp.reasoning.decide_family`; the outcome carries exact
accept/reject verdicts plus (after a budget cutoff) the undecided
remainder.  These tests pin the worker-path semantics — including
process-pool dispatch, where the whole family must travel as one task so
solver reuse survives pickling — and the partial-degradation contract.
"""

import pytest

from repro.asp.reasoning import FamilyVerdicts
from repro.asp.syntax import AtomTable, GroundProgram, GroundRule
from repro.relational import Fact
from repro.runtime import (
    Deadline,
    PackedProgram,
    ParallelExecutor,
    SequentialExecutor,
    SolveTask,
    solve_task,
)
from repro.runtime import executor as executor_module


def family_program() -> GroundProgram:
    """a1 ∨ a2.  a3 :- a1.  a3 :- a2.  a4. — mixed verdicts."""
    program = GroundProgram(AtomTable())
    for index in range(4):
        program.atoms.intern(Fact("a", (index,)))
    program.add_rule(GroundRule(head=(1, 2)))
    program.add_rule(GroundRule(head=(3,), body_pos=(1,)))
    program.add_rule(GroundRule(head=(3,), body_pos=(2,)))
    program.add_rule(GroundRule(head=(4,)))
    return program


def unsat_program() -> GroundProgram:
    """a1 :- not a1. — no stable model."""
    program = GroundProgram(AtomTable())
    program.atoms.intern(Fact("a", (0,)))
    program.add_rule(GroundRule(head=(1,), body_neg=(1,)))
    return program


def family_task(mode: str = "certain", **kwargs) -> SolveTask:
    return SolveTask(
        PackedProgram.pack(family_program()), (1, 2, 3, 4), mode,
        family=True, **kwargs,
    )


class TestFamilyWorkerPath:
    def test_cautious_family_verdicts(self):
        outcome = solve_task(family_task("certain"))
        assert outcome.ok
        assert outcome.decided == frozenset({3, 4})
        assert outcome.rejected == frozenset({1, 2})
        assert outcome.undecided == frozenset()

    def test_brave_family_verdicts(self):
        outcome = solve_task(family_task("possible"))
        assert outcome.ok
        assert outcome.decided == frozenset({1, 2, 3, 4})
        assert outcome.rejected == frozenset()

    def test_family_stats_carry_reuse_counters(self):
        outcome = solve_task(family_task("certain"))
        assert "core_skips" in outcome.solver_stats
        assert "family_models" in outcome.solver_stats
        assert outcome.solver_stats["family_models"] >= 1
        assert "carried_clauses" in outcome.solver_stats

    def test_no_stable_model_mirrors_signature_path(self):
        outcome = solve_task(
            SolveTask(
                PackedProgram.pack(unsat_program()), (1,), "certain",
                family=True,
            )
        )
        assert outcome.ok
        assert outcome.decided is None

    def test_expired_deadline_degrades_per_candidate(self):
        import time

        # Even a deadline that fires before the first model is a *partial*
        # family outcome (zero verdicts, everything undecided) — never the
        # legacy decided=None shape, which is reserved for cutoffs outside
        # decide_family (batch deadline, crashes).
        outcome = solve_task(
            family_task("certain"), deadline_at=time.monotonic() - 1.0
        )
        assert outcome.status == "timeout"
        assert outcome.decided == frozenset()
        assert outcome.rejected == frozenset()
        assert outcome.undecided == frozenset({1, 2, 3, 4})

    def test_trace_span_rides_home(self):
        outcome = solve_task(family_task("certain", trace=True))
        assert outcome.span is not None
        assert outcome.span["name"] == "solve.task"


class TestFamilyPartialDegradation:
    def test_partial_verdicts_become_a_partial_timeout(self, monkeypatch):
        partial = FamilyVerdicts(
            accepted=frozenset({3}),
            rejected=frozenset({1}),
            undecided=frozenset({2, 4}),
            stats={"core_skips": 1, "family_models": 2},
        )
        monkeypatch.setattr(
            executor_module, "decide_family", lambda *a, **k: partial
        )
        outcome = solve_task(family_task("certain"))
        assert outcome.status == "timeout"
        assert not outcome.ok
        assert outcome.decided == frozenset({3})
        assert outcome.rejected == frozenset({1})
        assert outcome.undecided == frozenset({2, 4})
        # The family's own stats ship as the outcome's solver_stats.
        assert outcome.solver_stats == partial.stats

    def test_sequential_executor_returns_partial_outcomes(self, monkeypatch):
        partial = FamilyVerdicts(
            accepted=frozenset(),
            rejected=frozenset(),
            undecided=frozenset({1, 2, 3, 4}),
        )
        monkeypatch.setattr(
            executor_module, "decide_family", lambda *a, **k: partial
        )
        outcomes = SequentialExecutor().run([family_task("certain")])
        assert outcomes[0].status == "timeout"
        assert outcomes[0].decided == frozenset()
        assert outcomes[0].undecided == frozenset({1, 2, 3, 4})


class TestFamilyThroughProcessPool:
    def test_pool_dispatch_matches_in_process(self):
        tasks = [
            family_task("certain"),
            family_task("possible"),
            SolveTask(
                PackedProgram.pack(unsat_program()), (1,), "certain",
                family=True,
            ),
        ]
        expected = SequentialExecutor().run(tasks)
        with ParallelExecutor(jobs=2, min_batch=1) as executor:
            outcomes = executor.run(tasks)
            assert executor.last_dispatch == "parallel"
        for got, want in zip(outcomes, expected):
            assert got.decided == want.decided
            assert got.rejected == want.rejected
            assert got.undecided == want.undecided
            assert got.status == want.status

    def test_family_outcome_survives_pickling_roundtrip(self):
        import pickle

        outcome = solve_task(family_task("certain"))
        clone = pickle.loads(pickle.dumps(outcome))
        assert clone.decided == outcome.decided
        assert clone.rejected == outcome.rejected
        assert clone.undecided == outcome.undecided

    def test_batch_deadline_times_out_families(self):
        import time

        outcomes = SequentialExecutor().run(
            [family_task("certain")],
            deadline=Deadline(time.monotonic() - 1.0),
        )
        assert outcomes[0].status == "timeout"
        assert outcomes[0].decided is None


class TestFamilyModeMapping:
    @pytest.mark.parametrize(
        "task_mode, accepted",
        [("certain", frozenset({3, 4})), ("possible", frozenset({1, 2, 3, 4}))],
    )
    def test_task_mode_maps_to_family_quantifier(self, task_mode, accepted):
        outcome = solve_task(family_task(task_mode))
        assert outcome.decided == accepted
