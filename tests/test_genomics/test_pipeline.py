"""Integration tests: the full Genome Browser pipeline on small instances."""

import pytest

from repro.genomics.generator import GenomeDataGenerator, GeneratorConfig
from repro.genomics.queries import QUERY_SUITE, query_by_name
from repro.genomics.schema import genome_mapping
from repro.reduction import reduce_mapping
from repro.xr.monolithic import MonolithicEngine
from repro.xr.segmentary import SegmentaryEngine


@pytest.fixture(scope="module")
def reduced():
    return reduce_mapping(genome_mapping())


@pytest.fixture(scope="module")
def small_instance():
    return GenomeDataGenerator(
        GeneratorConfig(transcripts=12, suspect_fraction=0.25, seed=4)
    ).generate()


@pytest.fixture(scope="module")
def segmentary(reduced, small_instance):
    engine = SegmentaryEngine(reduced, small_instance.instance)
    engine.exchange()
    return engine


class TestQuerySuite:
    def test_all_queries_parse(self):
        for name in QUERY_SUITE:
            assert query_by_name(name) is not None

    def test_unknown_query_rejected(self):
        with pytest.raises(KeyError):
            query_by_name("ep99")

    def test_xr2_excludes_conflicted_transcripts(self, segmentary, small_instance):
        answers = segmentary.answer(query_by_name("xr2"))
        answered = {row[0] for row in answers}
        # Exon conflicts knock their transcript's knownGene row out of the
        # certain answers; symbol conflicts do not touch knownGene.
        for transcript in small_instance.exon_conflicts:
            assert transcript not in answered
        clean = set(small_instance.transcripts) - set(
            small_instance.conflicted_transcripts
        )
        assert clean <= answered

    def test_boolean_queries_true_on_nonempty_data(self, segmentary):
        for name in ("xr1", "xr4", "ep1"):
            assert segmentary.answer(query_by_name(name)) == {()}

    def test_isoform_clustering_certain_pairs(self, segmentary, small_instance):
        answers = segmentary.answer(query_by_name("xr6"))
        # Transcripts of the same gene share an Entrez id: certainly
        # co-clustered, for at least the conflict-free genes.
        clean = set(small_instance.transcripts) - set(
            small_instance.conflicted_transcripts
        )
        by_gene: dict[int, list[str]] = {}
        for index, transcript in enumerate(small_instance.transcripts):
            by_gene.setdefault(index // 3, []).append(transcript)
        for gene_transcripts in by_gene.values():
            clean_pairs = [t for t in gene_transcripts if t in clean]
            for left in clean_pairs:
                for right in clean_pairs:
                    assert (left, right) in answers

    def test_ep15_symbol_join(self, segmentary, small_instance):
        answers = segmentary.answer(query_by_name("ep15"))
        assert answers  # symbols with refLink rows exist
        symbols = {row[0] for row in answers}
        assert all(s.startswith(("SYM", "ALT")) for s in symbols)


class TestEngineAgreement:
    @pytest.mark.slow
    def test_monolithic_equals_segmentary(self, reduced, small_instance, segmentary):
        monolithic = MonolithicEngine(reduced, small_instance.instance)
        for name in ("xr1", "xr2", "ep2", "xr5"):
            query = query_by_name(name)
            assert monolithic.answer(query) == segmentary.answer(query), name


class TestExchangePhase:
    def test_envelope_is_local(self, segmentary, small_instance):
        stats = segmentary.exchange_stats
        # Suspect facts stay proportional to conflicts, not instance size.
        assert stats.suspect_source_facts <= 12 * len(
            small_instance.conflicted_transcripts
        )
        assert stats.violations == len(small_instance.conflicted_transcripts)

    def test_cluster_count_matches_conflicts(self, segmentary, small_instance):
        # Conflicts are transcript-local by construction.
        assert segmentary.exchange_stats.clusters == len(
            small_instance.conflicted_transcripts
        )
