"""Tests for the Genome Browser schemas and mapping."""

from repro.genomics.schema import genome_mapping, source_schema, target_schema


class TestSchemas:
    def test_source_matches_table1_shape(self):
        """Table 1: UCSC 2 relations/13 attrs, RefSeq 5/38, Entrez 1/3,
        UniProt 1/3."""
        schema = source_schema()
        ucsc = ["ComputedAlignments", "ComputedCrossref"]
        refseq = [r.name for r in schema if r.name.startswith("RefSeq")]
        assert len(refseq) == 5
        assert sum(schema.arity(n) for n in ucsc) == 13
        assert sum(schema.arity(n) for n in refseq) == 38
        assert schema.arity("EntrezGene") == 3
        assert schema.arity("UniProt") == 3

    def test_target_arities_match_query_suite(self):
        schema = target_schema()
        assert schema.arity("knownGene") == 12
        assert schema.arity("kgXref") == 10
        assert schema.arity("refLink") == 8
        assert schema.arity("knownIsoforms") == 2
        assert schema.arity("knownToLocusLink") == 2


class TestMapping:
    def test_is_weakly_acyclic(self):
        assert genome_mapping().is_weakly_acyclic()

    def test_is_glav_not_gav(self):
        mapping = genome_mapping()
        assert not mapping.is_gav_gav_egd()  # existentials present

    def test_constraint_counts(self):
        stats = genome_mapping().stats()
        assert stats["st_tgds"] == 7
        assert stats["target_tgds"] == 1  # the isoforms clustering tgd
        assert stats["target_egds"] == 31

    def test_isoforms_tgd_is_existential_target_tgd(self):
        mapping = genome_mapping()
        (isoforms,) = mapping.target_tgds
        assert isoforms.existential  # invents the cluster id

    def test_reducible(self):
        from repro.reduction import reduce_mapping

        reduced = reduce_mapping(genome_mapping())
        assert not reduced.is_identity
        assert reduced.gav.is_gav_gav_egd()
        stats = reduced.stats()
        assert stats["tgds_after"] > stats["tgds_before"]
        assert stats["egds_after"] == 1
