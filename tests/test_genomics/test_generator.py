"""Tests for the synthetic Genome Browser data generator."""

from repro.genomics.generator import GenomeDataGenerator, GeneratorConfig
from repro.genomics.instances import INSTANCE_PROFILES, build_instance


class TestGenerator:
    def test_deterministic_for_seed(self):
        config = GeneratorConfig(transcripts=20, suspect_fraction=0.1, seed=5)
        first = GenomeDataGenerator(config).generate()
        second = GenomeDataGenerator(config).generate()
        assert set(first.instance) == set(second.instance)

    def test_different_seeds_differ(self):
        a = GenomeDataGenerator(
            GeneratorConfig(transcripts=20, suspect_fraction=0.1, seed=1)
        ).generate()
        b = GenomeDataGenerator(
            GeneratorConfig(transcripts=20, suspect_fraction=0.1, seed=2)
        ).generate()
        assert set(a.instance) != set(b.instance)

    def test_tuple_counts(self):
        gen = GenomeDataGenerator(
            GeneratorConfig(transcripts=30, suspect_fraction=0.0, isoforms_per_gene=3)
        ).generate()
        counts = gen.tuples_per_relation()
        assert counts["ComputedAlignments"] == 30
        assert counts["ComputedCrossref"] == 30
        assert counts["RefSeqTranscript"] == 30
        assert counts["UniProt"] == 30
        assert counts["EntrezGene"] == 10  # one per gene

    def test_conflict_budget_respected(self):
        gen = GenomeDataGenerator(
            GeneratorConfig(transcripts=40, suspect_fraction=0.2, seed=3)
        ).generate()
        assert len(gen.conflicted_transcripts) == 8
        assert len(gen.exon_conflicts) + len(gen.symbol_conflicts) == 8

    def test_zero_conflicts(self):
        gen = GenomeDataGenerator(
            GeneratorConfig(transcripts=25, suspect_fraction=0.0)
        ).generate()
        assert not gen.conflicted_transcripts

    def test_conflicts_actually_violate(self):
        """Injected conflicts produce exactly the intended egd violations."""
        from repro.genomics.schema import genome_mapping
        from repro.reduction import reduce_mapping
        from repro.xr.exchange import build_exchange_data

        gen = GenomeDataGenerator(
            GeneratorConfig(transcripts=12, suspect_fraction=0.25, seed=2)
        ).generate()
        reduced = reduce_mapping(genome_mapping())
        data = build_exchange_data(reduced.gav, gen.instance)
        assert len(gen.conflicted_transcripts) == 3
        assert len(data.violations) == len(gen.conflicted_transcripts)

    def test_clean_instance_has_no_violations(self):
        from repro.genomics.schema import genome_mapping
        from repro.reduction import reduce_mapping
        from repro.xr.exchange import build_exchange_data

        gen = GenomeDataGenerator(
            GeneratorConfig(transcripts=12, suspect_fraction=0.0, seed=2)
        ).generate()
        reduced = reduce_mapping(genome_mapping())
        data = build_exchange_data(reduced.gav, gen.instance)
        assert data.violations == []


class TestProfiles:
    def test_profiles_exist(self):
        for name in ("L0", "L3", "L9", "L20", "S3", "M3", "F3"):
            assert name in INSTANCE_PROFILES

    def test_suspect_sweep_rates(self):
        assert INSTANCE_PROFILES["L0"].suspect_fraction == 0.0
        assert INSTANCE_PROFILES["L20"].suspect_fraction == 0.20
        sizes = {INSTANCE_PROFILES[n].transcripts for n in ("L0", "L3", "L9", "L20")}
        assert len(sizes) == 1  # same size across the sweep

    def test_size_sweep_monotone(self):
        sizes = [
            INSTANCE_PROFILES[n].transcripts for n in ("S3", "M3", "L3", "F3")
        ]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]

    def test_build_instance_by_name(self):
        generated = build_instance("S3")
        assert len(generated.transcripts) == INSTANCE_PROFILES["S3"].transcripts
