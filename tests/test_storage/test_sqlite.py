"""Tests for the SQLite instance store."""

import pytest

from repro.relational import Fact, Instance
from repro.relational.terms import Null, SkolemValue
from repro.storage import SQLiteInstanceStore
from repro.storage.sqlite_store import decode_value, encode_value


def f(rel, *args):
    return Fact(rel, args)


class TestValueEncoding:
    @pytest.mark.parametrize(
        "value",
        [
            "plain",
            "with:colon",
            "",
            42,
            -1,
            3.25,
            Null(17),
            SkolemValue("f", ("a", 2)),
            SkolemValue("g", (SkolemValue("f", ("a",)), "b")),
        ],
    )
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_distinct_types_stay_distinct(self):
        assert decode_value(encode_value(1)) != decode_value(encode_value("1"))

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            encode_value(object())

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            decode_value("zz:broken")


class TestStore:
    def test_save_and_load(self):
        with SQLiteInstanceStore() as store:
            instance = Instance(
                [f("R", "a", 1), f("R", "b", 2), f("S", Null(3))]
            )
            assert store.save(instance) == 3
            assert set(store.load()) == set(instance)

    def test_save_is_idempotent(self):
        with SQLiteInstanceStore() as store:
            instance = Instance([f("R", "a", 1)])
            store.save(instance)
            assert store.save(instance) == 0
            assert store.count("R") == 1

    def test_load_restricted(self):
        with SQLiteInstanceStore() as store:
            store.save(Instance([f("R", "a"), f("S", "b")]))
            assert set(store.load(["R"])) == {f("R", "a")}

    def test_relations_schema(self):
        with SQLiteInstanceStore() as store:
            store.save(Instance([f("R", "a", "b")]))
            schema = store.relations()
            assert schema.arity("R") == 2

    def test_arity_conflict_rejected(self):
        with SQLiteInstanceStore() as store:
            store.save(Instance([f("R", "a")]))
            with pytest.raises(ValueError, match="arity"):
                store.save(Instance([f("R", "a", "b")]))

    def test_zero_arity_facts(self):
        with SQLiteInstanceStore() as store:
            store.save(Instance([f("Flag")]))
            assert set(store.load()) == {f("Flag")}

    def test_injection_guard(self):
        with SQLiteInstanceStore() as store:
            with pytest.raises(ValueError, match="invalid relation name"):
                store.save(Instance([f("bad; DROP TABLE x", "v")]))

    def test_clear(self):
        with SQLiteInstanceStore() as store:
            store.save(Instance([f("R", "a")]))
            store.clear("R")
            assert store.count("R") == 0

    def test_file_persistence(self, tmp_path):
        path = str(tmp_path / "genes.db")
        with SQLiteInstanceStore(path) as store:
            store.save(Instance([f("R", "a", SkolemValue("sk", ("x",)))]))
        with SQLiteInstanceStore(path) as store:
            assert set(store.load()) == {f("R", "a", SkolemValue("sk", ("x",)))}

    def test_exchange_phase_materialization(self):
        """The paper materializes the exchanged target in SQL: round-trip a
        chased instance including skolem values."""
        from repro.genomics.generator import GenomeDataGenerator, GeneratorConfig
        from repro.genomics.schema import genome_mapping
        from repro.reduction import reduce_mapping
        from repro.xr.exchange import build_exchange_data

        generated = GenomeDataGenerator(
            GeneratorConfig(transcripts=5, suspect_fraction=0.2, seed=1)
        ).generate()
        reduced = reduce_mapping(genome_mapping())
        data = build_exchange_data(reduced.gav, generated.instance)
        with SQLiteInstanceStore() as store:
            store.save(data.chased)
            assert set(store.load()) == set(data.chased)
