"""The Genome Browser scenario end-to-end (Section 5 of the paper).

Generates a small synthetic instance with injected conflicts (exon-count
disagreements between UCSC and RefSeq; gene-symbol disagreements between
RefSeq and UniProt), runs the exchange phase, and answers the Table 3
query suite, showing how conflicted transcripts drop out of the certain
answers while everything else is answered from the safe part.

Run:  python examples/genome_browser.py
"""

from repro.genomics import (
    GenomeDataGenerator,
    GeneratorConfig,
    genome_mapping,
)
from repro.genomics.queries import QUERY_SUITE, query_by_name
from repro.reduction import reduce_mapping
from repro.xr.segmentary import SegmentaryEngine


def main() -> None:
    mapping = genome_mapping()
    print("Schema mapping:", mapping)
    print("Weakly acyclic:", mapping.is_weakly_acyclic())

    reduced = reduce_mapping(mapping)
    stats = reduced.stats()
    print(
        f"Theorem 1 reduction: {stats['tgds_before']} tgds + "
        f"{stats['egds_before']} egds  ->  {stats['tgds_after']} GAV rules + "
        f"{stats['egds_after']} egd ({stats['skolem_functions']} skolem functions)"
    )

    generated = GenomeDataGenerator(
        GeneratorConfig(transcripts=24, suspect_fraction=0.15, seed=11)
    ).generate()
    print(
        f"\nGenerated {len(generated.instance)} source tuples over "
        f"{len(generated.transcripts)} transcripts; "
        f"conflicted: {generated.conflicted_transcripts} "
        f"(exon: {generated.exon_conflicts}, symbol: {generated.symbol_conflicts})"
    )

    engine = SegmentaryEngine(reduced, generated.instance)
    exchange = engine.exchange()
    print(
        f"\nExchange phase: {exchange.seconds:.2f}s — "
        f"{exchange.chased_facts} chased facts, "
        f"{exchange.violations} violations in {exchange.clusters} clusters, "
        f"{exchange.suspect_source_facts} suspect / "
        f"{exchange.safe_source_facts} safe source facts"
    )

    print("\nQuery suite (Table 3):")
    print(f"    {'query':6s} {'answers':>8s}  {'safe':>5s} {'solved':>6s}")
    for name in QUERY_SUITE:
        answers = engine.answer(query_by_name(name))
        stats = engine.last_query_stats
        print(
            f"    {name:6s} {len(answers):8d}  "
            f"{stats.safe_candidates:5d} {stats.programs_solved:6d}"
        )

    # Exon-conflicted transcripts lose their certain knownGene row.
    xr2 = {row[0] for row in engine.answer(query_by_name("xr2"))}
    for transcript in generated.exon_conflicts:
        assert transcript not in xr2
    clean = set(generated.transcripts) - set(generated.conflicted_transcripts)
    assert clean <= xr2
    print(
        f"\nxr2 covers all {len(clean)} clean transcripts and excludes the "
        f"{len(generated.exon_conflicts)} exon-conflicted ones — "
        "the repairs disagree on their exon counts."
    )


if __name__ == "__main__":
    main()
