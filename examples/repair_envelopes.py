"""Repair envelopes, suspect facts, and violation clusters (paper §6.2–6.3).

Walks through the paper's own running examples:

- **Example 1** — the suspect set is a sound but not minimal source repair
  envelope: ``Q(b, c)`` is suspect, yet no repair ever deletes it.
- **Example 2** — n independent key conflicts split into n violation
  clusters: certain answers are decided per cluster, never enumerating the
  2^n repairs.
- **Example 3** — two clusters with disjoint source envelopes can still
  jointly affect target facts: the signature of those facts contains both
  clusters, and deciding them requires one program over both influences.

Run:  python examples/repair_envelopes.py
"""

from repro import Fact, Instance, parse_mapping, parse_query, source_repairs
from repro.reduction import reduce_mapping
from repro.xr.envelope import analyze_envelopes
from repro.xr.exchange import build_exchange_data
from repro.xr.segmentary import SegmentaryEngine


def example_1() -> None:
    print("Example 1 — Isuspect is not a minimal envelope")
    mapping = parse_mapping(
        """
        SOURCE P/2, Q/2. TARGET Pp/2, Qp/2.
        P(x, y) -> Pp(x, y).
        Q(x, y) -> Qp(x, y).
        Pp(x, y), Pp(x, y2) -> y = y2.
        Pp(x, y), Pp(x, y2), Qp(y, y2) -> y = y2.
        """
    )
    instance = Instance(
        [Fact("P", ("a", "b")), Fact("P", ("a", "c")), Fact("Q", ("b", "c"))]
    )
    reduced = reduce_mapping(mapping)
    analysis = analyze_envelopes(build_exchange_data(reduced.gav, instance))
    print("    suspect facts:", sorted(map(repr, analysis.suspect_source)))

    repairs = source_repairs(instance, mapping)
    never_deleted = set(instance)
    for repair in repairs:
        never_deleted &= repair
    print("    kept by every repair:", sorted(map(repr, never_deleted)))
    assert Fact("Q", ("b", "c")) in analysis.suspect_source
    assert Fact("Q", ("b", "c")) in never_deleted
    print(
        "    -> Q(b,c) is suspect (in the PTIME envelope) although the key\n"
        "       constraint on Pp already resolves the second egd: the ideal\n"
        "       envelope is strictly smaller, and computing it is coNP-hard\n"
        "       (Theorem 3).\n"
    )


def example_2(n: int = 8) -> None:
    print(f"Example 2 — {n} independent conflicts, 2^{n} repairs, {n} clusters")
    mapping = parse_mapping(
        "SOURCE P/3. TARGET Q/3.\n"
        "P(i, x, y) -> Q(i, x, y).\n"
        "Q(i, x, y), Q(i, x, z) -> y = z.\n"
    )
    facts = []
    for index in range(n):
        facts.append(Fact("P", (index, "a", "b")))
        facts.append(Fact("P", (index, "a", "c")))
    instance = Instance(facts)

    engine = SegmentaryEngine(mapping, instance)
    stats = engine.exchange()
    print(f"    violations: {stats.violations}, clusters: {stats.clusters}")
    assert stats.clusters == n

    answers = engine.answer(parse_query("q(i) :- Q(i, x, y)."))
    print(f"    q(i) :- Q(i, x, y) certain for all {len(answers)} groups")
    assert len(answers) == n
    print(
        f"    -> answered by solving {engine.last_query_stats.programs_solved} "
        "small programs, never materializing the exponential repair space.\n"
    )


def example_3() -> None:
    print("Example 3 — disjoint source envelopes, shared target influence")
    mapping = parse_mapping(
        """
        SOURCE P/2, Q/2. TARGET R/2, S/2, T/3.
        P(x, y) -> R(x, y).
        Q(x, y) -> S(x, y).
        R(x, y), S(x, z) -> T(x, y, z).
        R(x, y), R(x, y2) -> y = y2.
        S(x, y), S(x, y2) -> y = y2.
        """
    )
    instance = Instance(
        [
            Fact("P", ("a1", "a2")), Fact("P", ("a1", "a3")),
            Fact("Q", ("a1", "a2")), Fact("Q", ("a1", "a3")),
        ]
    )
    reduced = reduce_mapping(mapping)
    data = build_exchange_data(reduced.gav, instance)
    analysis = analyze_envelopes(data)
    print(f"    clusters: {len(analysis.clusters)}")
    shared = analysis.clusters[0].influence & analysis.clusters[1].influence
    t_facts = sorted(repr(f) for f in shared if f.relation == "T")
    print(f"    T-facts in both influences: {t_facts}")

    engine = SegmentaryEngine(mapping, instance)
    full = engine.answer(parse_query("q(x, y, z) :- T(x, y, z)."))
    projected = engine.answer(parse_query("q(x) :- T(x, y, z)."))
    print(f"    certain T rows: {sorted(full)}  |  certain T projections: {sorted(projected)}")
    assert full == set() and projected == {("a1",)}
    print(
        "    -> no specific T row is certain (each repair picks different\n"
        "       values), but every repair has some T(a1, ·, ·): deciding this\n"
        "       needed both clusters in one signature program."
    )


def main() -> None:
    example_1()
    example_2()
    example_3()


if __name__ == "__main__":
    main()
