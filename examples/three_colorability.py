"""The Theorem 3 gadget: coNP-hardness of the ideal source repair envelope.

Theorem 3 reduces the complement of graph 3-colorability to the question
"is the fact F(n, 1) contained in every source repair?".  A graph G is
3-colorable iff some source repair omits ``F(n, 1)`` — equivalently, iff
the Boolean query over the target copy ``F'(n, 1)`` is *not* XR-Certain.

This example builds the construction (with the two corrections noted
below) and decides colorability with the segmentary engine: a triangle
with three colors (colorable), the same triangle with two (not), and —
with ``--full``, several minutes — the smallest non-3-colorable graph K4.

Run:  python examples/three_colorability.py [--full]
"""

from repro.dependencies import EGD, TGD, SchemaMapping
from repro.relational import Fact, Instance
from repro.relational.queries import Atom, ConjunctiveQuery
from repro.relational.schema import RelationSymbol, Schema
from repro.relational.terms import Const, Variable
from repro.xr.segmentary import SegmentaryEngine

X, Y, U, V, W = (Variable(n) for n in "xyuvw")


def theorem3_mapping(colors: tuple[str, ...] = ("r", "g", "b")) -> SchemaMapping:
    source = Schema(
        [RelationSymbol("E", 4), RelationSymbol("F", 2)]
        + [RelationSymbol(f"C{c}", 1) for c in colors]
    )
    target = Schema(
        [RelationSymbol("Ep", 2), RelationSymbol("Fp", 2)]
        + [RelationSymbol(f"C{c}p", 1) for c in colors]
    )
    st_tgds = []
    for color in colors:
        color_atom = Atom(f"C{color}", (X,))
        st_tgds.append(
            TGD([Atom("E", (X, Y, U, V)), color_atom], [Atom("Ep", (X, Y))])
        )
        st_tgds.append(
            TGD([Atom("E", (X, Y, U, V)), color_atom], [Atom("Fp", (U, V))])
        )
        st_tgds.append(TGD([color_atom], [Atom(f"C{color}p", (X,))]))
    st_tgds.append(TGD([Atom("F", (U, V))], [Atom("Fp", (U, V))]))

    target_tgds = [
        TGD(
            [Atom("Fp", (U, V)), Atom("Fp", (V, W))],
            [Atom("Fp", (U, W))],
            label="F_transitive",
        )
    ]
    target_egds = [
        EGD(
            [
                Atom("Ep", (X, Y)),
                Atom(f"C{color}p", (X,)),
                Atom(f"C{color}p", (Y,)),
                Atom("Fp", (U, V)),
            ],
            U,
            V,
            label=f"mono_{color}",
        )
        for color in colors
    ] + [
        # The paper forbids F'-cycles with "F'(u,u) ∧ F'(v,w) → v = w",
        # which grounds to |F'(u,u)| × |F'| violations.  Equating u with a
        # constant outside the active domain has the same effect (F'(u,u)
        # can never be repaired into consistency) with one violation per
        # cycle node — a practical simplification, not a semantic change.
        EGD(
            [Atom("Fp", (U, U))],
            U,
            Const("__forbidden__"),
            label="no_cycles",
        )
    ]
    return SchemaMapping(source, target, st_tgds, target_tgds, target_egds)


def encode_graph(vertices, edges, colors=("r", "g", "b")) -> tuple[Instance, int]:
    """The source instance I_G of Theorem 3.

    Subtlety found while reproducing the paper: the fact ``E(a, b, i, i+1)``
    only ties the F'-chain edge ``(i, i+1)`` to the *first* endpoint's color
    (the tgds require ``Cz(x)`` for the source ``x``).  If some vertex never
    occurs as a source, deleting all its colors no longer breaks the chain,
    and a repair may drop ``F(n, 1)`` even for a non-3-colorable graph.  We
    therefore orient the edge list so that every vertex (with at least one
    incident edge) is the source of some edge.
    """
    oriented: list[tuple[str, str]] = []
    covered: set[str] = set()
    for a, b in edges:
        if a not in covered or b in covered:
            oriented.append((a, b))
            covered.add(a)
        else:
            oriented.append((b, a))
            covered.add(b)
    instance = Instance()
    for index, (a, b) in enumerate(oriented, start=1):
        instance.add(Fact("E", (a, b, index, index + 1)))
    for vertex in vertices:
        for color in colors:
            instance.add(Fact(f"C{color}", (vertex,)))
    # Second subtlety (an off-by-one in the paper's construction): the
    # F'-cycle must run through the chain edges (i, i+1) of *every* edge,
    # i.e. close at n+1, not n.  With F(n, 1) as printed, the last edge's
    # chain link (n, n+1) lies off-cycle, so a repair may sacrifice that
    # edge and drop F even for a non-3-colorable graph.  (Found by checking
    # the engines against the brute-force oracle; see EXPERIMENTS.md.)
    closing = len(oriented) + 1
    instance.add(Fact("F", (closing, 1)))
    return instance, closing


def is_colorable(vertices, edges, colors=("r", "g", "b")) -> bool:
    mapping = theorem3_mapping(colors)
    instance, closing = encode_graph(vertices, edges, colors)
    # q() :- Fp(closing, 1): certain iff the cycle-closing fact is kept by
    # every repair, i.e. iff G is NOT 3-colorable.
    query = ConjunctiveQuery(
        [], [Atom("Fp", (Const(closing), Const(1)))], name="keeps_f"
    )
    engine = SegmentaryEngine(mapping, instance)
    certain = engine.answer(query)
    return certain == set()


def main(full: bool = False) -> None:
    triangle = ("abc", [("a", "b"), ("b", "c"), ("a", "c")])

    result = is_colorable(*triangle)
    print(f"triangle K3, colors rgb: colorable = {result}")
    assert result is True

    result = is_colorable(*triangle, colors=("r", "g"))
    print(f"triangle K3, colors rg : colorable = {result}")
    assert result is False

    if full:
        # K4 is the smallest non-3-colorable graph; its gadget instance is
        # one big violation cluster and takes several minutes on the pure-
        # Python solver, so it only runs with --full.
        k4_vertices = "abcd"
        k4 = (
            k4_vertices,
            [(p, q) for p in k4_vertices for q in k4_vertices if p < q],
        )
        result = is_colorable(*k4)
        print(f"clique K4, colors rgb : colorable = {result}")
        assert result is False

    print(
        "\nDeciding colorability through source-repair membership — the "
        "reduction behind Theorem 3's coNP-hardness of the ideal envelope."
    )


if __name__ == "__main__":
    import sys

    main(full="--full" in sys.argv)
