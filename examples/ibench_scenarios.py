"""iBench-style scenarios: XR-Certain answering beyond the genomics mapping.

The paper's concluding remarks propose evaluating the segmentary approach
on broadly applicable schema-mapping benchmarks such as iBench.  This
example composes iBench-style primitives (copy, fusion, vertical
partitioning, attribute addition, self-join closure) into a fresh mapping,
injects conflicts at a chosen rate, and compares the two engines on it.

Run:  python examples/ibench_scenarios.py
"""

import time

from repro.relational.queries import Atom, ConjunctiveQuery
from repro.relational.terms import Variable
from repro.scenarios import ScenarioBuilder
from repro.xr.monolithic import MonolithicEngine
from repro.xr.segmentary import SegmentaryEngine


def main() -> None:
    scenario = (
        ScenarioBuilder()
        .copy(arity=3)
        .fusion(arity=3)
        .vpartition(left=2, right=2)
        .augment(arity=2, added=1)
        .selfjoin(chain=3)
        .build()
    )
    mapping = scenario.mapping
    print("Composed mapping:", mapping)
    print("Weakly acyclic:", mapping.is_weakly_acyclic())

    instance = scenario.generate(keys_per_primitive=8, conflict_rate=0.25, seed=42)
    print(f"Generated {len(instance)} source facts over "
          f"{len(instance.relations())} relations\n")

    engine = SegmentaryEngine(mapping, instance)
    stats = engine.exchange()
    print(
        f"Exchange phase: {stats.seconds:.2f}s — {stats.violations} violations "
        f"in {stats.clusters} clusters; suspect/safe = "
        f"{stats.suspect_source_facts}/{stats.safe_source_facts}"
    )

    x, y = Variable("x"), Variable("y")
    print(f"\n{'target':12s} {'certain':>8s} {'possible':>9s} {'seg(s)':>7s} {'mono(s)':>8s}")
    for relation in sorted(mapping.target.names()):
        arity = mapping.target.arity(relation)
        if arity < 2:
            continue
        # Project the first two attributes: conflicted keys lose their
        # specific rows (uncertain values) while keeping projected keys.
        body = [Atom(relation, [x, y] + [Variable(f"w{i}") for i in range(arity - 2)])]
        query = ConjunctiveQuery([x, y], body)

        started = time.perf_counter()
        certain = engine.answer(query)
        segmentary_seconds = time.perf_counter() - started
        possible = engine.possible_answers(query)

        started = time.perf_counter()
        monolithic = MonolithicEngine(mapping, instance).answer(query)
        monolithic_seconds = time.perf_counter() - started
        assert monolithic == certain

        print(
            f"{relation:12s} {len(certain):8d} {len(possible):9d} "
            f"{segmentary_seconds:7.2f} {monolithic_seconds:8.2f}"
        )

    print(
        "\nCertain ⊆ possible everywhere; the engines agree on every query; "
        "conflicted keys drop out of the certain answers only."
    )


if __name__ == "__main__":
    main()
