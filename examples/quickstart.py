"""Quickstart: XR-Certain query answering in five minutes.

A tiny data-exchange setting with a key conflict: the source reports two
different offices for employee "ada".  Ordinary certain answers trivialize
(the source has no solution); XR-Certain answers are the facts that hold no
matter how the inconsistency is minimally repaired.

Run:  python examples/quickstart.py
"""

from repro import (
    Fact,
    Instance,
    MonolithicEngine,
    SegmentaryEngine,
    parse_mapping,
    parse_query,
    source_repairs,
)


def main() -> None:
    mapping = parse_mapping(
        """
        SOURCE Employee/2, Badge/2.
        TARGET Office/2, Access/2.

        % Copy employee-office and badge-room assignments to the target.
        Employee(name, office) -> Office(name, office).
        Badge(name, room)      -> Access(name, room).

        % Every employee sits in exactly one office (a key constraint).
        Office(name, o1), Office(name, o2) -> o1 = o2.
        """
    )

    source = Instance(
        [
            Fact("Employee", ("ada", "E14")),
            Fact("Employee", ("ada", "W02")),  # conflicts with the row above
            Fact("Employee", ("bob", "E15")),
            Fact("Badge", ("ada", "server-room")),
        ]
    )

    print("Source instance:")
    for fact in sorted(source, key=repr):
        print("   ", fact)

    print("\nSource repairs (maximal consistent subsets):")
    for index, repair in enumerate(source_repairs(source, mapping), 1):
        print(f"    repair {index}: {sorted(map(repr, repair))}")

    queries = {
        "who has some office?": "q(name) :- Office(name, office).",
        "which (name, office) rows are certain?": "q(n, o) :- Office(n, o).",
        "who can access the server room?": "q(n) :- Access(n, 'server-room').",
    }

    engine = SegmentaryEngine(mapping, source)
    print("\nXR-Certain answers (segmentary engine):")
    for description, text in queries.items():
        answers = engine.answer(parse_query(text))
        print(f"    {description:42s} -> {sorted(answers)}")

    # The monolithic engine computes the same answers from one big program.
    monolithic = MonolithicEngine(mapping, source)
    for text in queries.values():
        query = parse_query(text)
        assert monolithic.answer(query) == engine.answer(query)
    print("\nMonolithic engine agrees on every query.")

    # ada appears with *some* office in every repair, but neither specific
    # office is certain; bob's row survives every repair.
    answers = engine.answer(parse_query("q(n, o) :- Office(n, o)."))
    assert answers == {("bob", "E15")}
    answers = engine.answer(parse_query("q(n) :- Office(n, o)."))
    assert answers == {("ada",), ("bob",)}


if __name__ == "__main__":
    main()
