"""Per-stage micro-benchmark of the exchange and query phases (PR 3).

Runs the S-profile slice of the ``repro bench --micro`` grid, prints the
per-stage medians (chase, grounding enumeration, violation detection,
index construction, envelope analysis, program build, solve), checks the
stage accounting is coherent, and writes a machine-readable artifact to
``benchmarks/results/microbench_exchange.json`` via
:func:`repro.bench.reporting.write_benchmark_json` — the same writer that
produced the committed ``BENCH_PR3.json`` trajectory at the repo root.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.micro import format_micro_table, run_micro
from repro.bench.reporting import write_benchmark_json

RESULTS_JSON = (
    pathlib.Path(__file__).parent / "results" / "microbench_exchange.json"
)

EXCHANGE_STAGES = ("chase", "groundings", "violations", "index", "envelope")


@pytest.fixture(scope="module")
def payload():
    return run_micro(scenarios=["S0", "S9", "S20"], repeats=3)


def test_micro_payload_shape_and_stage_accounting(payload, report):
    report.emit(format_micro_table(payload))
    assert payload["kind"] == "repro-micro-benchmark"
    for name, row in payload["scenarios"].items():
        exchange = row["exchange_s"]
        for stage in EXCHANGE_STAGES + ("build_total", "total"):
            assert stage in exchange, f"{name}: missing stage {stage}"
            assert exchange[stage] >= 0.0
        # The staged clocks must account for (almost all of) the total:
        # medians of sums need not equal sums of medians exactly, but a
        # large gap means a stage went unmeasured.
        staged = sum(exchange[stage] for stage in EXCHANGE_STAGES)
        assert staged <= exchange["total"] * 1.5 + 0.05
        assert exchange["total"] >= exchange["build_total"] * 0.5
        query = row["query_s"]
        assert set(query) == {"program_build", "solve", "query_total"}
        assert query["query_total"] + 0.05 >= query["solve"]


def test_suspect_free_profile_solves_nothing(payload):
    clean = payload["scenarios"]["S0"]
    assert clean["counts"]["suspect_source_facts"] == 0
    assert clean["programs_solved"] == 0
    assert clean["query_s"]["solve"] == 0.0


def test_suspect_rate_scales_counts(payload):
    s9 = payload["scenarios"]["S9"]["counts"]
    s20 = payload["scenarios"]["S20"]["counts"]
    assert s20["suspect_source_facts"] > s9["suspect_source_facts"] > 0
    assert s20["violations"] > 0


def test_artifact_is_written_and_reloadable(payload, report):
    path = write_benchmark_json(RESULTS_JSON, payload)
    report.emit(f"% artifact written to {path}")
    import json

    on_disk = json.loads(RESULTS_JSON.read_text())
    assert on_disk["kind"] == "repro-micro-benchmark"
    assert "machine_info" in on_disk
    assert set(on_disk["scenarios"]) == set(payload["scenarios"])
