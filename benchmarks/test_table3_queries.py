"""Table 3: the query suite with approximate answer counts.

The paper lists the eleven queries with their approximate answer counts on
the large instances.  We run the full suite on L3 (segmentary engine) and
report the counts; Boolean queries must answer true, and the counts must
respect the structural relationships between the queries (ep3 ≥ ep2,
xr6 ≥ xr5, projection-free xr3 ≤ xr2, ...).
"""

from repro.bench.reporting import format_table
from repro.bench.runner import run_query_suite
from repro.genomics.queries import QUERY_SUITE


def test_table3_query_suite(ctx, report, benchmark):
    engine = ctx.segmentary_engine("L3")

    def run():
        return run_query_suite(engine, list(QUERY_SUITE))

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    counts = {r.query: r.answers for r in results}

    rows = [[r.query, r.answers, f"{r.seconds:.3f}s"] for r in results]
    report.emit(
        format_table(
            ["query", "answers (L3)", "query-phase time"],
            rows,
            title="Table 3 — Query suite on L3 (segmentary)",
        )
    )

    # Boolean queries are true on non-empty data.
    assert counts["ep1"] == 1
    assert counts["xr1"] == 1
    assert counts["xr4"] == 1
    # Structural relations between the queries' answer sets.
    assert counts["ep3"] >= counts["ep2"] > 0
    assert counts["ep16"] >= counts["ep15"] > 0
    assert counts["xr2"] > 0
    assert counts["xr3"] <= counts["xr2"]  # full rows certain ⊆ ids certain
    assert counts["xr6"] >= counts["xr5"] > 0
