"""Table 1: source database shapes (relations, attributes, tuples).

The paper reports, per source database, the number of relations, total
attributes, and total tuples.  We regenerate the same table for our largest
synthetic instance (absolute tuple counts are scaled; the relational shape
is identical — see EXPERIMENTS.md).
"""

from repro.bench.reporting import format_table
from repro.genomics.schema import source_schema

GROUPS = {
    "UCSC": ["ComputedAlignments", "ComputedCrossref"],
    "RefSeq": [
        "RefSeqTranscript", "RefSeqSource", "RefSeqReference",
        "RefSeqGene", "RefSeqProtein",
    ],
    "EntrezGene": ["EntrezGene"],
    "UniProt": ["UniProt"],
}

#: Paper's Table 1 for reference (tuples are the real databases').
PAPER_ROWS = {
    "UCSC": (2, 13, 165_920),
    "RefSeq": (5, 38, 706_923),
    "EntrezGene": (1, 3, 431_114),
    "UniProt": (1, 3, 4_405_573),
}


def test_table1_source_instances(ctx, report, benchmark):
    schema = source_schema()

    def build():
        return ctx.instance("F3")

    generated = benchmark.pedantic(build, rounds=1, iterations=1)
    counts = generated.tuples_per_relation()

    rows = []
    for database, relations in GROUPS.items():
        attributes = sum(schema.arity(name) for name in relations)
        tuples = sum(counts.get(name, 0) for name in relations)
        paper_relations, paper_attributes, paper_tuples = PAPER_ROWS[database]
        rows.append(
            [
                database, len(relations), attributes, tuples,
                paper_relations, paper_attributes, paper_tuples,
            ]
        )
        # The schema shape must match the paper exactly.
        assert len(relations) == paper_relations
        assert attributes == paper_attributes

    report.emit(
        format_table(
            [
                "database", "relations", "attributes", "tuples(F3)",
                "paper_rel", "paper_attr", "paper_tuples",
            ],
            rows,
            title="Table 1 — Source instances (ours vs paper)",
        )
    )
