"""Figure 3: monolithic query answering performance.

Left plot: query duration vs. suspect-tuple percentage (L0, L3, L9, L20).
Right plot: query duration vs. instance size (S3, M3, L3, F3), log-log.

The monolithic engine pays the full exchange inside every query, so its
times are large everywhere and grow steeply with instance size — the
paper's core negative finding, which we reproduce in shape.

Pure-Python scaling note: the paper runs all eleven queries; our monolithic
sweeps use a five-query subset (and two queries on F3) so the whole suite
stays within a benchmark session.  The subset spans the query shapes:
Boolean (xr1), unary projection (xr2), join + projection (ep2), and the
self-join xr6.  EXPERIMENTS.md discusses the subset.
"""

import time

import pytest

from repro.bench.reporting import format_series, format_table
from repro.genomics.instances import SUSPECT_SWEEP
from repro.genomics.queries import query_by_name

MONO_QUERIES = ["xr1", "xr2", "ep1", "ep2", "xr6"]
MONO_QUERIES_FULL_SIZE = ["xr1", "ep2"]  # F3 subset


def _time_queries(ctx, profile, queries):
    timings = {}
    for name in queries:
        engine = ctx.monolithic_engine(profile)
        started = time.perf_counter()
        engine.answer(query_by_name(name))
        timings[name] = time.perf_counter() - started
    return timings


def test_fig3_duration_vs_suspect_rate(ctx, report, benchmark):
    def run():
        return {
            profile: _time_queries(ctx, profile, MONO_QUERIES)
            for profile in SUSPECT_SWEEP
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rates = {"L0": 0, "L3": 3, "L9": 9, "L20": 20}
    report.emit("Figure 3 (left) — Monolithic: query duration vs suspect %")
    for query in MONO_QUERIES:
        report.emit(
            format_series(
                query,
                [(rates[p], results[p][query]) for p in SUSPECT_SWEEP],
            )
        )
    # Shape: durations stay within one order of magnitude across rates
    # (the exchange dominates, not the violations).
    for query in MONO_QUERIES:
        times = [results[p][query] for p in SUSPECT_SWEEP]
        assert max(times) < 20 * min(times)


def test_fig3_duration_vs_instance_size(ctx, report, benchmark):
    def run():
        results = {
            "S3": _time_queries(ctx, "S3", MONO_QUERIES),
            "M3": _time_queries(ctx, "M3", MONO_QUERIES),
            "L3": _time_queries(ctx, "L3", MONO_QUERIES),
            "F3": _time_queries(ctx, "F3", MONO_QUERIES_FULL_SIZE),
        }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    sizes = {
        profile: ctx.segmentary_engine(profile).exchange_stats.chased_facts
        for profile in ("S3", "M3", "L3", "F3")
    }
    report.emit("Figure 3 (right) — Monolithic: query duration vs instance size")
    for query in MONO_QUERIES:
        points = [
            (sizes[p], results[p][query])
            for p in ("S3", "M3", "L3", "F3")
            if query in results[p]
        ]
        report.emit(format_series(query, points))
    rows = [
        [p, sizes[p]] + [f"{results[p].get(q, float('nan')):.2f}" for q in MONO_QUERIES]
        for p in ("S3", "M3", "L3", "F3")
    ]
    report.emit(
        format_table(["profile", "tuples"] + MONO_QUERIES, rows,
                     title="Monolithic per-query seconds")
    )
    # Shape: steep growth with size — the paper's headline negative result.
    for query in MONO_QUERIES_FULL_SIZE:
        assert results["F3"][query] > 10 * results["S3"][query]
    for query in MONO_QUERIES:
        assert results["L3"][query] > results["S3"][query]
