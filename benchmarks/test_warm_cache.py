"""Warm-engine repeated queries: the cross-query cache at work.

The runtime subsystem's acceptance check: a warm segmentary engine
answering the same query twice must hit the signature-program cache on the
second pass (``cache_hits > 0``, no programs solved) and spend strictly
less query-phase wall-clock time than the cold pass.  A renamed query with
the same structure exercises the coarser decision memo instead.

Uses a fresh engine (not ``ctx``'s warm ones), because those may already
be cache-warm from other benchmarks in the same session.
"""

from repro.bench.reporting import format_table
from repro.genomics.queries import QUERY_SUITE, query_by_name
from repro.xr.segmentary import SegmentaryEngine

PROFILE = "S3"


def test_warm_cache_repeated_queries(ctx, report, benchmark):
    reduced = ctx.reduced_mapping()
    instance = ctx.instance(PROFILE).instance

    def run():
        engine = SegmentaryEngine(reduced, instance)
        engine.exchange()
        rows = []
        for name in QUERY_SUITE:
            query = query_by_name(name)
            _, cold = engine.answer_with_stats(query)
            _, warm = engine.answer_with_stats(query)
            rows.append((name, cold, warm))
        engine.close()
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    report.emit(f"Warm-engine repeated queries on {PROFILE} (program cache)")
    report.emit(
        format_table(
            ["query", "cold s", "warm s", "cold solved", "warm hits"],
            [
                [
                    name,
                    f"{cold.seconds:.4f}",
                    f"{warm.seconds:.4f}",
                    cold.programs_solved,
                    warm.cache_hits,
                ]
                for name, cold, warm in rows
            ],
        )
    )

    solved_any = False
    for name, cold, warm in rows:
        if cold.programs_solved == 0:
            continue  # nothing to cache: every candidate was safe
        solved_any = True
        assert warm.cache_hits > 0, name
        assert warm.programs_solved == 0, name
        assert warm.seconds < cold.seconds, name
    assert solved_any, "profile produced no suspect candidates to cache"
