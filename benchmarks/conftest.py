"""Shared state for the benchmark suite.

One :class:`~repro.bench.runner.BenchmarkContext` per session memoizes the
reduced genome mapping, the generated instances, and the warm segmentary
engines, so each table/figure benchmark pays only for what it measures.

Every benchmark also appends its paper-style rows to
``benchmarks/results/<name>.txt`` via the ``report`` fixture.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.runner import BenchmarkContext

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx() -> BenchmarkContext:
    with BenchmarkContext() as context:
        yield context


_truncated_this_session: set[str] = set()


class Reporter:
    """Collects paper-style output lines and writes them per benchmark.

    The first write of a session truncates the module's result file, so
    re-runs do not accumulate stale rows.
    """

    def __init__(self, name: str):
        self.name = name
        self.lines: list[str] = []

    def emit(self, text: str) -> None:
        self.lines.append(text)
        print(text)

    def flush(self) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.name}.txt"
        mode = "a" if self.name in _truncated_this_session else "w"
        _truncated_this_session.add(self.name)
        with open(path, mode) as handle:
            handle.write("\n".join(self.lines) + "\n")
        self.lines.clear()


@pytest.fixture
def report(request) -> Reporter:
    reporter = Reporter(request.node.module.__name__.split(".")[-1])
    yield reporter
    reporter.flush()
