"""Section 5.2: the GLAV-to-GAV reduction's time and size blow-up.

The paper: "These transformations take an average of 18.7 seconds combined,
and the resulting schema mapping is approximately seven times larger than
the original (from 33 tgds and 26 egds to 339 tgds and 67 egds)."

Our reduction uses skolem values + explicit equality instead of annotated
relation copies (DESIGN.md §6), so the blow-up profile differs; this bench
records ours next to the paper's.
"""

from repro.bench.reporting import format_table
from repro.genomics.queries import query_by_name
from repro.genomics.schema import genome_mapping
from repro.reduction import reduce_mapping


def test_reduction_size_and_time(report, benchmark):
    mapping = genome_mapping()

    reduced = benchmark(lambda: reduce_mapping(mapping))
    stats = reduced.stats()
    rows = [
        ["tgds", stats["tgds_before"], stats["tgds_after"], "33 → 339"],
        ["egds", stats["egds_before"], stats["egds_after"], "26 → 67"],
        ["skolem functions", "-", stats["skolem_functions"], "-"],
        ["nullable positions", "-", stats["nullable_positions"], "-"],
    ]
    report.emit(
        format_table(
            ["kind", "before", "after", "paper"],
            rows,
            title="§5.2 — GLAV→GAV reduction blow-up (ours vs paper)",
        )
    )
    assert reduced.gav.is_gav_gav_egd()
    # A modest increase, like the paper's: same order of magnitude.
    assert stats["tgds_after"] <= 30 * max(stats["tgds_before"], 1)


def test_query_rewriting(report, benchmark):
    reduced = reduce_mapping(genome_mapping())
    queries = [query_by_name(name) for name in ("ep2", "xr3", "xr6")]

    def rewrite_all():
        return [reduced.rewrite(query) for query in queries]

    rewritten = benchmark(rewrite_all)
    rows = [
        [
            query.name,
            len(query.body),
            len(ucq.disjuncts[0].body),
        ]
        for query, ucq in zip(queries, rewritten)
    ]
    report.emit(
        format_table(
            ["query", "atoms before", "atoms after"],
            rows,
            title="Query rewriting growth",
        )
    )
