"""Table 4: duration of the (query-independent) exchange phase.

The paper reports the exchange-phase duration per instance and notes that
for large instances it "compares very favorably against the per-query
runtime of the monolithic approach".  We regenerate the same rows and
assert the paper's qualitative claims: duration grows with the suspect rate
at fixed size, and with size at a fixed rate.
"""

import pytest

from repro.bench.reporting import format_table
from repro.genomics.instances import SIZE_SWEEP, SUSPECT_SWEEP
from repro.reduction import reduce_mapping
from repro.xr.segmentary import SegmentaryEngine


@pytest.mark.parametrize("sweep_name,profiles", [
    ("suspect-rate sweep", SUSPECT_SWEEP),
    ("size sweep", SIZE_SWEEP),
])
def test_table4_exchange_phase(ctx, report, benchmark, sweep_name, profiles):
    """Time a fresh exchange phase per profile (not the cached engines)."""
    reduced = ctx.reduced_mapping()

    def run_all():
        durations = {}
        for profile in profiles:
            engine = SegmentaryEngine(reduced, ctx.instance(profile).instance)
            durations[profile] = engine.exchange()
        return durations

    durations = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [
            profile,
            f"{stats.seconds:.2f}",
            stats.chased_facts,
            stats.violations,
            stats.clusters,
        ]
        for profile, stats in durations.items()
    ]
    report.emit(
        format_table(
            ["instance", "duration (s)", "total tuples", "violations", "clusters"],
            rows,
            title=f"Table 4 — Exchange phase ({sweep_name})",
        )
    )

    seconds = [durations[p].seconds for p in profiles]
    if sweep_name == "size sweep":
        # An order of magnitude more data must not be more than ~3 orders
        # slower (the paper's exchange is roughly linear; allow slack).
        assert seconds[-1] > seconds[0]
    else:
        # More violations cost more, but within the same order of magnitude.
        assert seconds[-1] < seconds[0] * 25
