"""Figure 4: segmentary query answering performance.

Same two plots as Figure 3, for the segmentary engine's *query phase* (the
exchange phase is Table 4, paid once).  The paper's finding: ten to one
thousand times faster than monolithic on large instances, with gentle
scaling in both the suspect rate and the instance size.  The full
eleven-query suite runs everywhere.
"""

import time

from repro.bench.reporting import format_series, format_table
from repro.genomics.instances import SIZE_SWEEP, SUSPECT_SWEEP
from repro.genomics.queries import QUERY_SUITE, query_by_name


def _time_queries(ctx, profile):
    engine = ctx.segmentary_engine(profile)  # exchange already done
    timings = {}
    for name in QUERY_SUITE:
        started = time.perf_counter()
        engine.answer(query_by_name(name))
        timings[name] = time.perf_counter() - started
    return timings


def test_fig4_duration_vs_suspect_rate(ctx, report, benchmark):
    def run():
        return {profile: _time_queries(ctx, profile) for profile in SUSPECT_SWEEP}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rates = {"L0": 0, "L3": 3, "L9": 9, "L20": 20}
    report.emit("Figure 4 (left) — Segmentary: query duration vs suspect %")
    for query in QUERY_SUITE:
        report.emit(
            format_series(
                query, [(rates[p], results[p][query]) for p in SUSPECT_SWEEP]
            )
        )
    # Shape: on L0 (no violations) the query phase is essentially free, and
    # even at 20 % suspect it stays interactive — the paper's Figure 4 left
    # plot spans 0–30 s over the same sweep.
    for query in QUERY_SUITE:
        assert results["L0"][query] < 1.0
        assert results["L20"][query] < 30.0


def test_fig4_duration_vs_instance_size(ctx, report, benchmark):
    def run():
        return {profile: _time_queries(ctx, profile) for profile in SIZE_SWEEP}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    sizes = {
        profile: ctx.segmentary_engine(profile).exchange_stats.chased_facts
        for profile in SIZE_SWEEP
    }
    report.emit("Figure 4 (right) — Segmentary: query duration vs instance size")
    for query in QUERY_SUITE:
        report.emit(
            format_series(
                query, [(sizes[p], results[p][query]) for p in SIZE_SWEEP]
            )
        )
    rows = [
        [p, sizes[p]] + [f"{results[p][q]:.3f}" for q in QUERY_SUITE]
        for p in SIZE_SWEEP
    ]
    report.emit(
        format_table(["profile", "tuples"] + list(QUERY_SUITE), rows,
                     title="Segmentary per-query seconds")
    )


def test_fig4_speedup_over_monolithic(ctx, report, benchmark):
    """The headline: segmentary answers queries 10–1000× faster than
    monolithic on large instances (amortizing the exchange phase)."""
    from repro.genomics.queries import query_by_name

    queries = ["xr1", "xr2", "ep2"]

    def run():
        segmentary_engine = ctx.segmentary_engine("L3")
        speedups = {}
        for name in queries:
            query = query_by_name(name)
            started = time.perf_counter()
            seg_answers = segmentary_engine.answer(query)
            seg_seconds = time.perf_counter() - started

            monolithic_engine = ctx.monolithic_engine("L3")
            started = time.perf_counter()
            mono_answers = monolithic_engine.answer(query)
            mono_seconds = time.perf_counter() - started

            assert seg_answers == mono_answers, name
            speedups[name] = (mono_seconds, seg_seconds)
        return speedups

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, (mono_seconds, seg_seconds) in speedups.items():
        ratio = mono_seconds / max(seg_seconds, 1e-6)
        rows.append([name, f"{mono_seconds:.2f}", f"{seg_seconds:.4f}", f"{ratio:.0f}×"])
    report.emit(
        format_table(
            ["query", "monolithic (s)", "segmentary query phase (s)", "speedup"],
            rows,
            title="Segmentary vs monolithic on L3 (paper: 10–1000×)",
        )
    )
    # Measured speedups range from single digits (heavy join queries on a
    # busy core) to >1000× (Boolean queries); the paper reports 10–1000×
    # at 300× larger scale.  Assert a conservative floor per query and the
    # paper's order of magnitude for the best case.
    ratios = [
        mono_seconds / max(seg_seconds, 1e-6)
        for mono_seconds, seg_seconds in speedups.values()
    ]
    assert min(ratios) >= 5
    assert max(ratios) >= 100
