"""Table 2: test-instance profiles.

For every profile the paper reports source tuples, total tuples (source +
exchanged target), the suspect-transcript rate, and the suspect-tuple rate
(source and target).  We regenerate the same rows from our scaled profiles.
"""

import pytest

from repro.bench.reporting import format_table
from repro.genomics.instances import SIZE_SWEEP, SUSPECT_SWEEP


def _row(ctx, profile: str) -> list:
    generated = ctx.instance(profile)
    engine = ctx.segmentary_engine(profile)
    stats = engine.exchange_stats
    analysis = engine.analysis
    total = stats.chased_facts
    suspect_target = sum(
        1
        for cluster in analysis.clusters
        for _ in cluster.influence
    )
    suspect_tuples = len(analysis.suspect_source) + suspect_target
    transcripts = len(generated.transcripts)
    suspect_rate = (
        len(generated.conflicted_transcripts) / transcripts if transcripts else 0.0
    )
    return [
        profile,
        stats.source_facts,
        total,
        f"{100 * suspect_rate:.1f}%",
        f"{100 * suspect_tuples / total:.1f}%" if total else "0%",
    ]


@pytest.mark.parametrize("sweep_name,profiles", [
    ("suspect-rate sweep", SUSPECT_SWEEP),
    ("size sweep", SIZE_SWEEP),
])
def test_table2_profiles(ctx, report, benchmark, sweep_name, profiles):
    def build_all():
        return [_row(ctx, profile) for profile in profiles]

    rows = benchmark.pedantic(build_all, rounds=1, iterations=1)
    report.emit(
        format_table(
            [
                "instance", "source tuples", "total tuples",
                "suspect transcripts", "suspect tuples*",
            ],
            rows,
            title=f"Table 2 — Test instances ({sweep_name}); "
            "*includes source and target",
        )
    )
    # Shape assertions mirroring the paper's table:
    if sweep_name == "size sweep":
        source_counts = [row[1] for row in rows]
        assert source_counts == sorted(source_counts)
    else:
        rates = [float(row[3].rstrip("%")) for row in rows]
        assert rates == sorted(rates)
