"""Ablation benches for the design choices DESIGN.md calls out.

1. Program encodings: the default repair-guess encoding vs the literal
   Figure 1 encoding (where both are correct — single-level conflicts).
2. Head-cycle-free shifting in the stable-model engine: shifting the
   disjunctive guesses to normal rules enables the linear-time
   least-model-of-reduct check.
3. The segmentary restriction itself: per-signature programs vs one program
   for the whole suspect region.
"""

import time

from repro.asp.stable import StableModelEngine
from repro.bench.reporting import format_table
from repro.genomics.queries import query_by_name
from repro.xr.monolithic import MonolithicEngine
from repro.xr.program import build_repair_program
from repro.xr.exchange import build_exchange_data


def test_ablation_repair_vs_figure1(ctx, report, benchmark):
    instance = ctx.instance("S3").instance
    reduced = ctx.reduced_mapping()
    query = query_by_name("xr2")

    def run():
        timings = {}
        for encoding in ("repair", "figure1"):
            engine = MonolithicEngine(reduced, instance, encoding=encoding)
            started = time.perf_counter()
            answers = engine.answer(query)
            timings[encoding] = (time.perf_counter() - started, len(answers),
                                 engine.last_stats.rules)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [encoding, f"{seconds:.2f}", answers, rules]
        for encoding, (seconds, answers, rules) in timings.items()
    ]
    report.emit(
        format_table(
            ["encoding", "seconds", "answers", "ground rules"],
            rows,
            title="Ablation — repair-guess vs literal Figure 1 (S3, xr2)",
        )
    )
    # The literal Figure 1 encoding misses repairs with cascaded incidental
    # deletions (DESIGN.md §6), i.e. it may admit *fewer* stable models and
    # hence report a superset of the certain answers.
    assert timings["figure1"][1] >= timings["repair"][1]


def test_ablation_hcf_shifting(ctx, report, benchmark):
    """Solving the same program with and without disjunction shifting."""
    reduced = ctx.reduced_mapping()
    instance = ctx.instance("S3").instance
    data = build_exchange_data(reduced.gav, instance)
    xr_program = build_repair_program(data)

    def run():
        timings = {}
        for label, auto_shift in (("shifted", True), ("disjunctive", False)):
            started = time.perf_counter()
            engine = StableModelEngine(xr_program.program, auto_shift=auto_shift)
            models = sum(1 for _ in engine.stable_models(limit=8))
            timings[label] = (time.perf_counter() - started, models)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label, f"{seconds:.3f}", models]
        for label, (seconds, models) in timings.items()
    ]
    report.emit(
        format_table(
            ["engine path", "seconds (8 models)", "models"],
            rows,
            title="Ablation — HCF shifting in the stable-model engine (S3)",
        )
    )
    assert timings["shifted"][1] == timings["disjunctive"][1]


def test_ablation_segmentation_granularity(ctx, report, benchmark):
    """Per-signature programs vs one merged program over all clusters."""
    from repro.xr.queries import ground_query

    engine = ctx.segmentary_engine("L9")
    reduced = ctx.reduced_mapping()
    data = engine.data
    analysis = engine.analysis
    query = query_by_name("xr2")

    def run():
        # Per-signature (the engine's own path).
        started = time.perf_counter()
        answers_split = engine.answer(query)
        split_seconds = time.perf_counter() - started

        # Merged: one program containing every cluster.
        started = time.perf_counter()
        safe = set(analysis.safe_chased)
        focus = set()
        violations = []
        for cluster in analysis.clusters:
            focus |= cluster.influence
            violations.extend(cluster.violations)
        focus -= safe
        rewritten = reduced.rewrite(query)
        groundings = ground_query(rewritten, data.chased)
        from repro.asp.reasoning import cautious_consequences
        from repro.xr.program import build_repair_program
        from repro.xr.queries import answers_from_facts

        xr_program = build_repair_program(
            data, query_groundings=groundings, focus=focus, safe=safe,
            violations=violations,
        )
        cautious = cautious_consequences(
            xr_program.program, xr_program.query_atoms.values()
        )
        accepted = {
            fact
            for fact, atom_id in xr_program.query_atoms.items()
            if cautious is not None and atom_id in cautious
        }
        accepted |= xr_program.trivially_certain
        answers_merged = answers_from_facts(accepted)
        merged_seconds = time.perf_counter() - started
        return answers_split, split_seconds, answers_merged, merged_seconds

    answers_split, split_seconds, answers_merged, merged_seconds = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    assert answers_split == answers_merged
    report.emit(
        format_table(
            ["strategy", "seconds"],
            [
                ["per-signature programs", f"{split_seconds:.3f}"],
                ["single merged program", f"{merged_seconds:.3f}"],
            ],
            title="Ablation — segmentation granularity (L9, xr2)",
        )
    )
