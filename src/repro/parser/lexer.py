"""Tokenizer for the dependency / query / mapping text syntax."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

TOKEN_SPEC = [
    ("STRING", r"'(?:[^'\\]|\\.)*'|\"(?:[^\"\\]|\\.)*\""),
    ("NUMBER", r"-?\d+(?:\.\d+)?"),
    ("ARROW", r"->"),
    ("IMPLIEDBY", r":-"),
    ("NEQ", r"!="),
    ("EQ", r"="),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("PERIOD", r"\."),
    ("SLASH", r"/"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("WS", r"[ \t\r]+"),
    ("NEWLINE", r"\n"),
    ("COMMENT", r"[%#][^\n]*"),
]

_MASTER = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in TOKEN_SPEC))


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int


class LexError(ValueError):
    """Raised on an unrecognized character in the input."""


def tokenize(text: str) -> Iterator[Token]:
    """Yield tokens, skipping whitespace and comments; track line/column."""
    line = 1
    line_start = 0
    pos = 0
    while pos < len(text):
        match = _MASTER.match(text, pos)
        if match is None:
            column = pos - line_start + 1
            raise LexError(f"line {line}, column {column}: "
                           f"unexpected character {text[pos]!r}")
        kind = match.lastgroup or ""
        value = match.group()
        if kind == "NEWLINE":
            line += 1
            line_start = match.end()
        elif kind not in ("WS", "COMMENT"):
            yield Token(kind, value, line, pos - line_start + 1)
        pos = match.end()
    yield Token("EOF", "", line, pos - line_start + 1)
