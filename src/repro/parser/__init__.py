"""Text syntax for dependencies, queries, and schema mappings.

The paper's implementation accepts the schema mapping and the queries as
text.  This package provides the same convenience with a small datalog-like
syntax::

    SOURCE R/2, S/2.
    TARGET T/2, U/1.

    R(x, y) -> T(x, y).             % source-to-target tgd
    T(x, y) -> U(x).                % target tgd
    T(x, y), T(x, z) -> y = z.      % target egd

Queries use the notation of Table 3::

    q(x) :- T(x, y), U(_).

Identifiers are variables, ``_`` is an anonymous (fresh) variable, quoted
strings and numbers are constants.  Comments start with ``%`` or ``#``.
"""

from repro.parser.parser import (
    ParseError,
    parse_dependency,
    parse_instance,
    parse_mapping,
    parse_program,
    parse_query,
)

__all__ = [
    "ParseError",
    "parse_dependency",
    "parse_instance",
    "parse_mapping",
    "parse_program",
    "parse_query",
]
