"""Recursive-descent parser for dependencies, queries, and mappings."""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.dependencies.egds import EGD
from repro.dependencies.mapping import SchemaMapping
from repro.dependencies.tgds import TGD
from repro.parser.lexer import Token, tokenize
from repro.relational.queries import Atom, ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.relational.schema import RelationSymbol, Schema
from repro.relational.terms import Const, Variable

_anon_counter = itertools.count(1)


class ParseError(ValueError):
    """Raised on a syntax error, with line/column information."""


class _Parser:
    def __init__(self, text: str):
        self.tokens = list(tokenize(text))
        self.pos = 0

    # --------------------------------------------------------------- stream

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "EOF":
            self.pos += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.current
        if token.kind != kind:
            raise ParseError(
                f"line {token.line}, column {token.column}: "
                f"expected {kind}, found {token.kind} ({token.text!r})"
            )
        return self.advance()

    def accept(self, kind: str) -> Token | None:
        if self.current.kind == kind:
            return self.advance()
        return None

    # ---------------------------------------------------------------- terms

    def parse_term(self) -> Variable | Const:
        token = self.current
        if token.kind == "IDENT":
            self.advance()
            if token.text == "_":
                return Variable(f"_anon{next(_anon_counter)}")
            return Variable(token.text)
        if token.kind == "STRING":
            self.advance()
            raw = token.text[1:-1]
            return Const(raw.replace("\\'", "'").replace('\\"', '"'))
        if token.kind == "NUMBER":
            self.advance()
            text = token.text
            return Const(float(text) if "." in text else int(text))
        raise ParseError(
            f"line {token.line}, column {token.column}: "
            f"expected a term, found {token.kind} ({token.text!r})"
        )

    def parse_atom(self) -> Atom:
        name = self.expect("IDENT").text
        self.expect("LPAREN")
        terms: list[Variable | Const] = []
        if self.current.kind != "RPAREN":
            terms.append(self.parse_term())
            while self.accept("COMMA"):
                terms.append(self.parse_term())
        self.expect("RPAREN")
        return Atom(name, terms)

    def parse_atom_list(self) -> list[Atom]:
        atoms = [self.parse_atom()]
        while self.accept("COMMA"):
            atoms.append(self.parse_atom())
        return atoms

    # --------------------------------------------------------- dependencies

    def parse_dependency(self, label: str | None = None) -> TGD | EGD:
        """Parse ``body -> head.`` where head is atoms or an equality."""
        body = self.parse_atom_list()
        self.expect("ARROW")
        # Lookahead: equality head (var = term) vs atom head (ident lparen).
        if (
            self.current.kind == "IDENT"
            and self.tokens[self.pos + 1].kind == "EQ"
        ):
            lhs_tok = self.expect("IDENT")
            self.expect("EQ")
            rhs = self.parse_term()
            self.expect("PERIOD")
            return EGD(body, Variable(lhs_tok.text), rhs, label=label)
        head = self.parse_atom_list()
        self.expect("PERIOD")
        return TGD(body, head, label=label)

    # --------------------------------------------------------------- queries

    def parse_query_rule(self) -> ConjunctiveQuery:
        """Parse ``name(vars) :- atoms.`` (trailing period optional)."""
        head = self.parse_atom()
        head_vars: list[Variable] = []
        for term in head.terms:
            if not isinstance(term, Variable):
                raise ParseError(f"query head terms must be variables, got {term!r}")
            head_vars.append(term)
        self.expect("IMPLIEDBY")
        body = self.parse_atom_list()
        self.accept("PERIOD")
        return ConjunctiveQuery(head_vars, body, name=head.relation)

    # --------------------------------------------------------------- mapping

    def parse_schema_decl(self) -> list[RelationSymbol]:
        """Parse ``R/2, S/3.`` after a SOURCE/TARGET keyword."""
        rels: list[RelationSymbol] = []
        while True:
            name = self.expect("IDENT").text
            self.expect("SLASH")
            arity = int(self.expect("NUMBER").text)
            rels.append(RelationSymbol(name, arity))
            if not self.accept("COMMA"):
                break
        self.expect("PERIOD")
        return rels

    def parse_mapping(self) -> SchemaMapping:
        source = Schema()
        target = Schema()
        st_tgds: list[TGD] = []
        target_tgds: list[TGD] = []
        target_egds: list[EGD] = []
        seen_decl = False

        while self.current.kind != "EOF":
            if self.current.kind == "IDENT" and self.current.text in (
                "SOURCE",
                "TARGET",
            ):
                keyword = self.advance().text
                schema = source if keyword == "SOURCE" else target
                for rel in self.parse_schema_decl():
                    schema.add(rel)
                seen_decl = True
                continue
            dep = self.parse_dependency()
            if isinstance(dep, EGD):
                target_egds.append(dep)
            elif dep.body_relations() <= source.names():
                st_tgds.append(dep)
            elif dep.body_relations() <= target.names():
                target_tgds.append(dep)
            else:
                raise ParseError(
                    f"{dep.label}: body relations {sorted(dep.body_relations())} "
                    "are neither all-source nor all-target "
                    "(declare schemas with SOURCE/TARGET first)"
                )
        if not seen_decl:
            raise ParseError("a mapping file needs SOURCE and TARGET declarations")
        return SchemaMapping(source, target, st_tgds, target_tgds, target_egds)


def parse_dependency(text: str, label: str | None = None) -> TGD | EGD:
    """Parse a single tgd or egd, e.g. ``R(x,y) -> T(x).`` or
    ``T(x,y), T(x,z) -> y = z.``"""
    parser = _Parser(text)
    dep = parser.parse_dependency(label=label)
    parser.expect("EOF")
    return dep


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a conjunctive query, e.g. ``q(x) :- T(x, y).``"""
    parser = _Parser(text)
    query = parser.parse_query_rule()
    parser.expect("EOF")
    return query


def parse_program(text: str) -> UnionOfConjunctiveQueries:
    """Parse one or more query rules with the same head name into a UCQ."""
    parser = _Parser(text)
    disjuncts = []
    while parser.current.kind != "EOF":
        disjuncts.append(parser.parse_query_rule())
    names = {d.name for d in disjuncts}
    if len(names) > 1:
        raise ParseError(f"UCQ disjuncts must share a head name, got {names}")
    return UnionOfConjunctiveQueries(disjuncts, name=disjuncts[0].name)


def parse_mapping(text: str) -> SchemaMapping:
    """Parse a full schema mapping file (see package docstring for syntax)."""
    return _Parser(text).parse_mapping()


def parse_instance(text: str) -> "Instance":
    """Parse a list of ground facts, e.g. ``R('a', 1). S('b', 'c').``

    All atom arguments must be constants (quoted strings or numbers);
    bare identifiers are rejected to avoid silently reading variables.
    """
    from repro.relational.instance import Fact, Instance

    parser = _Parser(text)
    instance = Instance()
    while parser.current.kind != "EOF":
        atom = parser.parse_atom()
        parser.expect("PERIOD")
        args = []
        for term in atom.terms:
            if isinstance(term, Variable):
                raise ParseError(
                    f"fact {atom.relation}: argument {term.name!r} is not a "
                    "constant (quote strings, e.g. 'abc')"
                )
            args.append(term.value)
        instance.add(Fact(atom.relation, args))
    return instance
