"""SQLite-backed instance store.

Stores each relation in its own table with ``TEXT`` columns; values are
encoded so that constants (strings, ints, floats), labelled nulls, and
skolem values round-trip losslessly:

========= =======================================
``s:...`` a string constant
``i:...`` an integer constant
``f:...`` a float constant
``n:...`` a labelled null
``k:...`` a skolem value (nested, JSON-encoded)
========= =======================================

The store is the persistence layer the exchange phase can materialize into
(the paper uses MySQL for the same purpose); the in-memory
:class:`~repro.relational.instance.Instance` remains the evaluation
structure.
"""

from __future__ import annotations

import json
import re
import sqlite3
from typing import Any, Iterable

from repro.relational.instance import Fact, Instance
from repro.relational.schema import RelationSymbol, Schema
from repro.relational.terms import Null, SkolemValue

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def encode_value(value: Any) -> str:
    """Encode a value as a tagged string (see module docstring)."""
    if isinstance(value, Null):
        return f"n:{value.label}"
    if isinstance(value, SkolemValue):
        return "k:" + json.dumps(_skolem_to_json(value))
    if isinstance(value, bool):
        raise TypeError("boolean values are not supported in instances")
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"f:{value}"
    if isinstance(value, str):
        return f"s:{value}"
    raise TypeError(f"cannot encode value of type {type(value).__name__}")


def decode_value(encoded: str) -> Any:
    """Invert :func:`encode_value`."""
    tag, _, payload = encoded.partition(":")
    if tag == "s":
        return payload
    if tag == "i":
        return int(payload)
    if tag == "f":
        return float(payload)
    if tag == "n":
        return Null(int(payload) if payload.isdigit() else payload)
    if tag == "k":
        return _skolem_from_json(json.loads(payload))
    raise ValueError(f"malformed encoded value: {encoded!r}")


def _skolem_to_json(value: SkolemValue) -> dict:
    return {
        "f": value.function,
        "a": [
            _skolem_to_json(a) if isinstance(a, SkolemValue) else encode_value(a)
            for a in value.args
        ],
    }


def _skolem_from_json(data: dict) -> SkolemValue:
    args = tuple(
        _skolem_from_json(a) if isinstance(a, dict) else decode_value(a)
        for a in data["a"]
    )
    return SkolemValue(data["f"], args)


class SQLiteInstanceStore:
    """Save and load :class:`Instance` objects in a SQLite database."""

    def __init__(self, path: str = ":memory:"):
        self.connection = sqlite3.connect(path)
        self.connection.execute(
            "CREATE TABLE IF NOT EXISTS __relations__ "
            "(name TEXT PRIMARY KEY, arity INTEGER NOT NULL)"
        )

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SQLiteInstanceStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- helpers

    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid relation name for SQL storage: {name!r}")
        return name

    def _ensure_table(self, relation: str, arity: int) -> None:
        self._check_name(relation)
        row = self.connection.execute(
            "SELECT arity FROM __relations__ WHERE name = ?", (relation,)
        ).fetchone()
        if row is not None:
            if row[0] != arity:
                raise ValueError(
                    f"relation {relation} stored with arity {row[0]}, got {arity}"
                )
            return
        columns = ", ".join(f"c{i} TEXT NOT NULL" for i in range(arity))
        unique = ", ".join(f"c{i}" for i in range(arity))
        if arity:
            self.connection.execute(
                f"CREATE TABLE rel_{relation} ({columns}, UNIQUE ({unique}))"
            )
        else:
            self.connection.execute(
                f"CREATE TABLE rel_{relation} (present INTEGER UNIQUE)"
            )
        self.connection.execute(
            "INSERT INTO __relations__ (name, arity) VALUES (?, ?)",
            (relation, arity),
        )

    # ---------------------------------------------------------------- write

    def save(self, instance: Instance | Iterable[Fact]) -> int:
        """Insert all facts (idempotent); returns the number inserted."""
        inserted = 0
        for fact in instance:
            self._ensure_table(fact.relation, fact.arity)
            if fact.arity:
                placeholders = ", ".join("?" for _ in fact.args)
                cursor = self.connection.execute(
                    f"INSERT OR IGNORE INTO rel_{fact.relation} "
                    f"VALUES ({placeholders})",
                    tuple(encode_value(v) for v in fact.args),
                )
            else:
                cursor = self.connection.execute(
                    f"INSERT OR IGNORE INTO rel_{fact.relation} VALUES (1)"
                )
            inserted += cursor.rowcount if cursor.rowcount > 0 else 0
        self.connection.commit()
        return inserted

    def clear(self, relation: str) -> None:
        self._check_name(relation)
        self.connection.execute(f"DELETE FROM rel_{relation}")
        self.connection.commit()

    # ----------------------------------------------------------------- read

    def relations(self) -> Schema:
        schema = Schema()
        for name, arity in self.connection.execute(
            "SELECT name, arity FROM __relations__"
        ):
            schema.add(RelationSymbol(name, arity))
        return schema

    def load(self, relations: Iterable[str] | None = None) -> Instance:
        """Load the stored facts (optionally restricted to some relations)."""
        instance = Instance()
        wanted = set(relations) if relations is not None else None
        for relation in self.relations():
            if wanted is not None and relation.name not in wanted:
                continue
            if relation.arity:
                rows = self.connection.execute(f"SELECT * FROM rel_{relation.name}")
                for row in rows:
                    instance.add(
                        Fact(relation.name, tuple(decode_value(v) for v in row))
                    )
            else:
                row = self.connection.execute(
                    f"SELECT present FROM rel_{relation.name}"
                ).fetchone()
                if row is not None:
                    instance.add(Fact(relation.name, ()))
        return instance

    def count(self, relation: str) -> int:
        self._check_name(relation)
        row = self.connection.execute(
            f"SELECT COUNT(*) FROM rel_{relation}"
        ).fetchone()
        return int(row[0])
