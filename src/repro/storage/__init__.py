"""Persistent storage for instances.

The paper's segmentary implementation materializes the exchanged target
instance in MySQL.  This package provides the equivalent capability on
SQLite (always available in the standard library): save/load instances to a
database file, round-trip nulls and skolem values through a text encoding,
and run simple relational scans in SQL.
"""

from repro.storage.sqlite_store import SQLiteInstanceStore

__all__ = ["SQLiteInstanceStore"]
