"""Selective singularization: joins go through ``EQ`` only where necessary.

After skolemization, labelled nulls are frozen into skolem values, so two
syntactically different values may denote the same element.  A join between
two occurrences of a variable therefore has to be mediated by the derived
``EQ`` relation — but *only* when one of the occurrences sits at a position
that can actually hold a skolem value.  Joins between always-constant
positions (e.g. transcript identifiers copied straight from the source) are
ordinary syntactic joins: in every repair, an ``EQ`` class contains at most
one constant, so syntactic equality and EQ-equality coincide on constants.

:func:`nullable_positions` computes the positions that may hold a skolem
value by a fixpoint over the (skolemized, pre-singularization) rules;
:func:`singularize_atoms` rewrites a conjunction accordingly.  Restricting
mediation this way keeps the quasi-solution, the support sets, and hence
the repair envelopes dramatically smaller — the same kind of pruning the
paper's "optimized implementation" of the Theorem 1 reduction performs.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.dependencies.tgds import TGD, SkolemTerm
from repro.relational.queries import Atom
from repro.relational.terms import Const, Variable

EQ_RELATION = "EQ"

_fresh_counter = itertools.count(1)


def _fresh_variable(base: str) -> Variable:
    return Variable(f"{base}__s{next(_fresh_counter)}")


def nullable_positions(rules: Iterable[TGD]) -> set[tuple[str, int]]:
    """Positions ``(relation, index)`` that may hold a skolem value.

    Fixpoint: a head position is nullable if its term is a skolem term, or a
    variable occurring at some nullable body position.  The input rules must
    be the *skolemized* single-head rules (before singularization), including
    the egd-derived ``EQ`` rules and the EQ symmetry/transitivity rules, so
    that nullability propagates through equalities as well.
    """
    rules = list(rules)
    nullable: set[tuple[str, int]] = set()
    changed = True
    while changed:
        changed = False
        for rule in rules:
            nullable_vars: set[Variable] = set()
            for atom in rule.body:
                for position, term in enumerate(atom.terms):
                    if (
                        isinstance(term, Variable)
                        and (atom.relation, position) in nullable
                    ):
                        nullable_vars.add(term)
            head = rule.head[0]
            for position, term in enumerate(head.terms):
                key = (head.relation, position)
                if key in nullable:
                    continue
                if isinstance(term, SkolemTerm) or (
                    isinstance(term, Variable) and term in nullable_vars
                ):
                    nullable.add(key)
                    changed = True
    return nullable


def singularize_atoms(
    atoms: Sequence[Atom],
    nullable: set[tuple[str, int]],
) -> tuple[list[Atom], list[Atom], dict[Variable, bool]]:
    """Singularize a conjunction of target atoms w.r.t. nullable positions.

    Returns ``(new_atoms, eq_atoms, anchor_nullable)``:

    - each variable keeps its name at an *anchor* occurrence — preferably a
      non-nullable position (so the variable binds a constant);
    - every other occurrence at a nullable position, or any occurrence when
      the anchor itself is nullable, becomes a fresh variable linked by an
      ``EQ`` atom;
    - occurrences where both sides are non-nullable stay syntactic;
    - a constant at a nullable position becomes a fresh variable pinned by
      ``EQ(fresh, constant)``;
    - ``anchor_nullable[x]`` tells callers (query rewriting) whether the
      value bound to ``x`` may still be a skolem value.
    """
    # First pass: find each variable's occurrences and pick anchors.
    occurrences: dict[Variable, list[tuple[int, int, bool]]] = {}
    for atom_index, atom in enumerate(atoms):
        for position, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                is_nullable = (atom.relation, position) in nullable
                occurrences.setdefault(term, []).append(
                    (atom_index, position, is_nullable)
                )

    anchor_of: dict[Variable, tuple[int, int]] = {}
    anchor_nullable: dict[Variable, bool] = {}
    for variable, places in occurrences.items():
        non_null = [p for p in places if not p[2]]
        chosen = non_null[0] if non_null else places[0]
        anchor_of[variable] = (chosen[0], chosen[1])
        anchor_nullable[variable] = chosen[2]

    new_atoms: list[Atom] = []
    eq_atoms: list[Atom] = []
    for atom_index, atom in enumerate(atoms):
        new_terms: list[Variable | Const] = []
        for position, term in enumerate(atom.terms):
            is_nullable = (atom.relation, position) in nullable
            if isinstance(term, Variable):
                if anchor_of[term] == (atom_index, position):
                    new_terms.append(term)
                elif not is_nullable and not anchor_nullable[term]:
                    # Constant-to-constant join: syntactic equality suffices.
                    new_terms.append(term)
                else:
                    replacement = _fresh_variable(term.name)
                    eq_atoms.append(Atom(EQ_RELATION, (term, replacement)))
                    new_terms.append(replacement)
            elif isinstance(term, Const):
                if is_nullable:
                    replacement = _fresh_variable("c")
                    eq_atoms.append(Atom(EQ_RELATION, (replacement, term)))
                    new_terms.append(replacement)
                else:
                    new_terms.append(term)
            else:
                raise TypeError(f"unexpected term {term!r} in target atom")
        new_atoms.append(Atom(atom.relation, new_terms))
    return new_atoms, eq_atoms, anchor_nullable
