"""Query rewriting for the Theorem 1 reduction.

A conjunctive query over the original target schema is rewritten over the
reduced schema so that its *constant* answers on the reduced (skolem) chase
equal its certain answers on the original chase:

- the body is singularized w.r.t. the nullable positions (joins and
  constants go through ``EQ`` only where a skolem value can flow);
- an answer variable whose binding may be a skolem value is replaced in the
  head by a fresh variable linked by ``EQ(x, x_ans)``: if the egds equated
  the skolem with a constant, the constant is the answer.

Callers must filter answers to constant-only tuples (``q↓``); the XR engines
do this when grounding the query.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.reduction.singularize import EQ_RELATION, singularize_atoms
from repro.relational.queries import (
    Atom,
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
)
from repro.relational.terms import Variable

_answer_counter = itertools.count(1)


def rewrite_query(
    query: ConjunctiveQuery | UnionOfConjunctiveQueries,
    nullable: set[tuple[str, int]],
) -> UnionOfConjunctiveQueries:
    """Rewrite a CQ/UCQ over the original target schema for the reduced one."""
    if isinstance(query, ConjunctiveQuery):
        disjuncts = [query]
        name = query.name
    else:
        disjuncts = list(query.disjuncts)
        name = query.name
    return UnionOfConjunctiveQueries(
        [_rewrite_disjunct(disjunct, nullable) for disjunct in disjuncts], name=name
    )


def _rewrite_disjunct(
    query: ConjunctiveQuery, nullable: set[tuple[str, int]]
) -> ConjunctiveQuery:
    for atom in query.body:
        if atom.relation == EQ_RELATION:
            raise ValueError(f"queries must not mention the reserved {EQ_RELATION}")
    new_body, eq_atoms, anchor_nullable = singularize_atoms(
        list(query.body), nullable
    )
    body = new_body + eq_atoms
    new_head: list[Variable] = []
    for variable in query.head_vars:
        if anchor_nullable.get(variable, False):
            # The anchor may bind a skolem value: answer through EQ.
            answer_var = Variable(f"{variable.name}__ans{next(_answer_counter)}")
            body.append(Atom(EQ_RELATION, (variable, answer_var)))
            new_head.append(answer_var)
        else:
            new_head.append(variable)
    return ConjunctiveQuery(new_head, body, name=query.name)


def make_rewriter(
    nullable: set[tuple[str, int]],
) -> Callable[
    [ConjunctiveQuery | UnionOfConjunctiveQueries], UnionOfConjunctiveQueries
]:
    def rewrite(
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
    ) -> UnionOfConjunctiveQueries:
        return rewrite_query(query, nullable)

    return rewrite


def identity_rewriter() -> Callable[
    [ConjunctiveQuery | UnionOfConjunctiveQueries], UnionOfConjunctiveQueries
]:
    """For identity reductions: wrap a CQ into a one-disjunct UCQ, unchanged."""

    def rewrite(
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
    ) -> UnionOfConjunctiveQueries:
        if isinstance(query, ConjunctiveQuery):
            return UnionOfConjunctiveQueries([query], name=query.name)
        return query

    return rewrite
