"""The Theorem 1 reduction: ``glav+(wa-glav, egd)`` → ``gav+(gav, egd)``.

See the package docstring for the construction.  The reduction runs in two
passes:

1. **Skolemize.**  Every tgd head atom becomes its own GAV rule; existential
   variables become skolem terms over the tgd's frontier; every egd becomes
   a rule deriving an ``EQ`` fact; EQ symmetry/transitivity and per-skolem
   witness relations ``SK_f(x̄, f(x̄))`` are added.
2. **Analyze and specialize.**  A fixpoint computes which positions may
   hold skolem values (:func:`~repro.reduction.singularize.nullable_positions`);
   joins are then mediated through ``EQ`` only where a skolem value can
   actually flow (selective singularization), ``EQ`` reflexivity is emitted
   only for nullable positions, and skolem congruence rules (two triggers
   with EQ-equal frontier values must yield the same null) are emitted only
   for skolem functions with a nullable argument.

The only remaining egd is the *hard* one — ``EQ(x, y) → x = y`` over
constants — violated exactly when the original chase would fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.dependencies.egds import EGD
from repro.dependencies.mapping import SchemaMapping
from repro.dependencies.tgds import TGD, SkolemTerm
from repro.reduction.singularize import (
    EQ_RELATION,
    nullable_positions,
    singularize_atoms,
)
from repro.relational.queries import (
    Atom,
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
)
from repro.relational.schema import RelationSymbol, Schema
from repro.relational.terms import Variable


@dataclass
class ReducedMapping:
    """The output of :func:`reduce_mapping`.

    ``gav`` is the equivalent ``gav+(gav, egd)`` schema mapping;
    ``rewrite`` turns a CQ/UCQ over the original target schema into a UCQ
    over the reduced schema whose constant answers coincide with the
    original XR-Certain answers.  ``is_identity`` marks mappings that were
    already GAV with no existentials (no rewriting needed).
    """

    original: SchemaMapping
    gav: SchemaMapping
    is_identity: bool
    skolem_functions: dict[str, int] = field(default_factory=dict)
    nullable: set[tuple[str, int]] = field(default_factory=set)
    rewrite: Callable[
        [ConjunctiveQuery | UnionOfConjunctiveQueries], UnionOfConjunctiveQueries
    ] = None  # type: ignore[assignment]

    def stats(self) -> dict[str, int]:
        before = self.original.stats()
        after = self.gav.stats()
        return {
            "tgds_before": before["st_tgds"] + before["target_tgds"],
            "egds_before": before["target_egds"],
            "tgds_after": after["st_tgds"] + after["target_tgds"],
            "egds_after": after["target_egds"],
            "skolem_functions": len(self.skolem_functions),
            "nullable_positions": len(self.nullable),
        }


def _needs_full_reduction(mapping: SchemaMapping) -> bool:
    has_existentials = any(
        tgd.existential for tgd in mapping.st_tgds + mapping.target_tgds
    )
    multi_head = any(
        len(tgd.head) > 1 for tgd in mapping.st_tgds + mapping.target_tgds
    )
    return has_existentials or multi_head or not mapping.is_gav_gav_egd()


def _skolemize_head_atom(
    atom: Atom, tgd: TGD, skolems: dict[Variable, SkolemTerm]
) -> Atom:
    terms = []
    for term in atom.terms:
        if isinstance(term, Variable) and term in tgd.existential:
            terms.append(skolems[term])
        else:
            terms.append(term)
    return Atom(atom.relation, terms)


def _witness_name(function: str) -> str:
    return f"SK__{function}"


def reduce_mapping(mapping: SchemaMapping) -> ReducedMapping:
    """Reduce a ``glav+(wa-glav, egd)`` mapping to ``gav+(gav, egd)``.

    Raises ``ValueError`` if the target tgds are not weakly acyclic (the
    reduction — indeed decidability — requires it).
    """
    if EQ_RELATION in mapping.source or EQ_RELATION in mapping.target:
        raise ValueError(f"relation name {EQ_RELATION!r} is reserved by the reduction")
    if mapping.target_tgds and not mapping.is_weakly_acyclic():
        raise ValueError(
            "the target tgds are not weakly acyclic; "
            "XR-Certain answering is undecidable for this mapping"
        )

    if not _needs_full_reduction(mapping):
        from repro.reduction.rewrite import identity_rewriter

        return ReducedMapping(
            original=mapping,
            gav=mapping,
            is_identity=True,
            rewrite=identity_rewriter(),
        )

    target = Schema(mapping.target)
    target.add(RelationSymbol(EQ_RELATION, 2))
    skolem_functions: dict[str, int] = {}

    def skolems_for(tgd: TGD) -> dict[Variable, SkolemTerm]:
        frontier = sorted(tgd.frontier, key=lambda v: v.name)
        out = {}
        for variable in sorted(tgd.existential, key=lambda v: v.name):
            name = f"sk_{tgd.label}_{variable.name}"
            out[variable] = SkolemTerm(name, frontier)
            skolem_functions[name] = len(frontier)
        return out

    # ------------------------------------------------ pass 1: skolemization
    # raw rules: (bucket, body_atoms, head_atom, label, singularize_body?)
    raw_rules: list[tuple[str, list[Atom], Atom, str, bool]] = []
    # skolem witness bookkeeping: function -> witness rule body (for the
    # nullability check deciding whether congruence is needed).
    witness_bodies: dict[str, list[tuple[list[Atom], SkolemTerm]]] = {}

    def emit_raw(
        bucket: str, body: list[Atom], head: Atom, label: str, singularize: bool
    ) -> None:
        raw_rules.append((bucket, body, head, label, singularize))

    def emit_skolem_witnesses(
        bucket: str, tgd_label: str, body: list[Atom],
        skolems: dict[Variable, SkolemTerm], singularize: bool,
    ) -> None:
        for variable, term in skolems.items():
            witness = _witness_name(term.function)
            if witness not in target:
                target.add(RelationSymbol(witness, len(term.args) + 1))
            witness_bodies.setdefault(term.function, []).append((body, term))
            emit_raw(
                bucket,
                body,
                Atom(witness, tuple(term.args) + (term,)),
                f"wit_{tgd_label}_{variable.name}",
                singularize,
            )

    for tgd in mapping.st_tgds:
        skolems = skolems_for(tgd)
        body = list(tgd.body)
        for index, head_atom in enumerate(tgd.head):
            emit_raw(
                "st",
                body,
                _skolemize_head_atom(head_atom, tgd, skolems),
                f"{tgd.label}.{index}",
                False,  # source bodies: no EQ mediation, ever
            )
        emit_skolem_witnesses("st", tgd.label, body, skolems, False)

    for tgd in mapping.target_tgds:
        skolems = skolems_for(tgd)
        body = list(tgd.body)
        for index, head_atom in enumerate(tgd.head):
            emit_raw(
                "target",
                body,
                _skolemize_head_atom(head_atom, tgd, skolems),
                f"{tgd.label}.{index}",
                True,
            )
        emit_skolem_witnesses("target", tgd.label, body, skolems, True)

    for egd in mapping.target_egds:
        emit_raw(
            "target",
            list(egd.body),
            Atom(EQ_RELATION, (egd.lhs, egd.rhs)),
            f"eq_{egd.label}",
            True,
        )

    x, y, z = Variable("x"), Variable("y"), Variable("z")
    emit_raw(
        "target", [Atom(EQ_RELATION, (x, y))], Atom(EQ_RELATION, (y, x)),
        "eq_sym", False,
    )
    emit_raw(
        "target",
        [Atom(EQ_RELATION, (x, y)), Atom(EQ_RELATION, (y, z))],
        Atom(EQ_RELATION, (x, z)),
        "eq_trans",
        False,
    )

    # ------------------------------------- pass 2: analysis + specialization
    analysis_rules = [
        TGD(body, [head], label=label) for _, body, head, label, _ in raw_rules
    ]
    nullable = nullable_positions(analysis_rules)

    st_rules: list[TGD] = []
    target_rules: list[TGD] = []
    for bucket, body, head, label, wants_singularization in raw_rules:
        if wants_singularization:
            new_body, eq_atoms, _ = singularize_atoms(body, nullable)
            body = new_body + eq_atoms
        rule = TGD(body, [head], label=label)
        (st_rules if bucket == "st" else target_rules).append(rule)

    # Skolem congruence: only when a frontier argument can be non-syntactic
    # (i.e. bound at a nullable position in the rule body).
    for function, bodies in witness_bodies.items():
        needs_congruence = False
        for body, term in bodies:
            nullable_vars = {
                t
                for atom in body
                for position, t in enumerate(atom.terms)
                if isinstance(t, Variable) and (atom.relation, position) in nullable
            }
            if any(a in nullable_vars for a in term.args if isinstance(a, Variable)):
                needs_congruence = True
                break
        if not needs_congruence:
            continue
        witness = _witness_name(function)
        arity = skolem_functions[function]
        left_vars = [Variable(f"cl{i}") for i in range(arity)]
        right_vars = [Variable(f"cr{i}") for i in range(arity)]
        value_l, value_r = Variable("cvl"), Variable("cvr")
        congruence_body = [
            Atom(witness, left_vars + [value_l]),
            Atom(witness, right_vars + [value_r]),
        ]
        congruence_body.extend(
            Atom(EQ_RELATION, (lv, rv)) for lv, rv in zip(left_vars, right_vars)
        )
        target_rules.append(
            TGD(
                congruence_body,
                [Atom(EQ_RELATION, (value_l, value_r))],
                label=f"cong_{function}",
            )
        )

    # Reflexivity of EQ, only over nullable positions of data relations:
    # every value that can meet a skolem through a join needs its EQ(v, v).
    for relation in target:
        if relation.name == EQ_RELATION:
            continue
        positions = [
            p for p in range(relation.arity) if (relation.name, p) in nullable
        ]
        if not positions:
            continue
        variables = [Variable(f"r{i}") for i in range(relation.arity)]
        atom = Atom(relation.name, variables)
        for position in positions:
            target_rules.append(
                TGD(
                    [atom],
                    [Atom(EQ_RELATION, (variables[position], variables[position]))],
                    label=f"eq_refl_{relation.name}_{position}",
                )
            )

    hard_egd = EGD(
        [Atom(EQ_RELATION, (x, y))],
        x,
        y,
        label="eq_clash",
        constants_only=True,
        symmetric=True,
    )

    gav = SchemaMapping(
        mapping.source,
        target,
        st_rules,
        target_rules,
        [hard_egd],
    )

    from repro.reduction.rewrite import make_rewriter

    return ReducedMapping(
        original=mapping,
        gav=gav,
        is_identity=False,
        skolem_functions=skolem_functions,
        nullable=nullable,
        rewrite=make_rewriter(nullable),
    )
