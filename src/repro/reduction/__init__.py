"""The GLAV-to-GAV reduction (Theorem 1) and query rewriting.

Theorem 1 of the paper states that XR-Certain query answering for
``glav+(wa-glav, egd)`` schema mappings reduces to XR-Certain answering for
``gav+(gav, egd)`` mappings, rewriting the conjunctive query into a UCQ.

Our implementation realizes the reduction with *skolem values* and an
explicit equality relation (a.k.a. singularization) instead of the annotated
relation copies of the original construction — same semantics, different
(generally smaller) blow-up profile; see DESIGN.md §6:

- every existential variable becomes a skolem term over the tgd's frontier;
- every egd becomes a GAV rule deriving an ``EQ`` fact;
- ``EQ`` is closed under reflexivity (over the target active domain),
  symmetry, and transitivity;
- joins and constants in target rule bodies are *singularized*: repeated
  occurrences become distinct variables linked through ``EQ``;
- the only remaining egd is the *hard* one: ``EQ(x, y) → x = y`` restricted
  to pairs of constants, which is violated exactly when the original chase
  would have failed.
"""

from repro.reduction.reduce import EQ_RELATION, ReducedMapping, reduce_mapping
from repro.reduction.rewrite import rewrite_query

__all__ = ["EQ_RELATION", "ReducedMapping", "reduce_mapping", "rewrite_query"]
