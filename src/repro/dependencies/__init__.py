"""Dependencies and schema mappings.

Tuple-generating dependencies (tgds / GLAV constraints), equality-generating
dependencies (egds), schema mappings ``M = (S, T, Σst, Σt)``, and the weak
acyclicity test of Fagin et al. that guarantees chase termination.
"""

from repro.dependencies.tgds import TGD, SkolemTerm
from repro.dependencies.egds import EGD
from repro.dependencies.mapping import SchemaMapping
from repro.dependencies.acyclicity import is_weakly_acyclic, position_graph

__all__ = [
    "TGD",
    "EGD",
    "SkolemTerm",
    "SchemaMapping",
    "is_weakly_acyclic",
    "position_graph",
]
