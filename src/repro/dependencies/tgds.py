"""Tuple-generating dependencies (tgds), a.k.a. GLAV constraints.

A tgd has the form ``∀x (φ(x) → ∃y ψ(x, y))`` where ``φ`` and ``ψ`` are
conjunctions of atoms.  Variables that appear in the head but not in the
body are the existential variables ``y``; the others are the frontier.

Special cases (Section 2 of the paper):

- **GAV**: the head is a single atom with no existential variables;
- **LAV**: the body is a single atom;
- **full**: no existential variables (any head length).

Heads may additionally contain :class:`SkolemTerm` terms — templates
``f(x1, ..., xk)`` over frontier variables — which the GLAV-to-GAV reduction
uses in place of existential variables.  A tgd whose head atoms contain only
frontier variables, constants, and skolem terms is *skolemized* and behaves
like a GAV rule for the chase.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Sequence

from repro.relational.queries import Atom
from repro.relational.terms import Const, SkolemValue, Variable


class SkolemTerm:
    """A skolem term template ``f(v1, ..., vk)`` appearing in a tgd head.

    Grounding it under a binding produces a :class:`SkolemValue`.
    """

    __slots__ = ("function", "args")

    def __init__(self, function: str, args: Sequence[Variable | Const]):
        self.function = function
        self.args = tuple(args)

    def __repr__(self) -> str:
        inner = ",".join(repr(a) for a in self.args)
        return f"{self.function}({inner})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SkolemTerm)
            and self.function == other.function
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return hash(("skolemterm", self.function, self.args))

    def ground(self, binding: dict[Variable, Any]) -> SkolemValue:
        values = []
        for arg in self.args:
            if isinstance(arg, Variable):
                values.append(binding[arg])
            else:
                values.append(arg.value)
        return SkolemValue(self.function, tuple(values))


_tgd_counter = itertools.count(1)


class TGD:
    """A tuple-generating dependency ``body → head``.

    ``body`` and ``head`` are sequences of atoms; existential variables are
    inferred (head variables not occurring in the body).  An optional label
    names the dependency in diagnostics and skolem function names.
    """

    __slots__ = ("body", "head", "label", "frontier", "existential")

    def __init__(
        self,
        body: Sequence[Atom],
        head: Sequence[Atom],
        label: str | None = None,
    ):
        if not body:
            raise ValueError("a tgd needs a non-empty body")
        if not head:
            raise ValueError("a tgd needs a non-empty head")
        self.body = tuple(body)
        self.head = tuple(head)
        self.label = label if label is not None else f"tgd{next(_tgd_counter)}"

        body_vars: set[Variable] = set()
        for atom in self.body:
            body_vars |= atom.variables()
        head_vars: set[Variable] = set()
        for atom in self.head:
            for term in atom.terms:
                if isinstance(term, Variable):
                    head_vars.add(term)
                elif isinstance(term, SkolemTerm):
                    for arg in term.args:
                        if isinstance(arg, Variable) and arg not in body_vars:
                            raise ValueError(
                                f"{self.label}: skolem argument {arg!r} "
                                "is not a body variable"
                            )
        self.frontier = frozenset(body_vars & head_vars)
        self.existential = frozenset(head_vars - body_vars)

    # ------------------------------------------------------- classification

    def is_full(self) -> bool:
        """True if the tgd has no existential variables."""
        return not self.existential

    def is_skolemized(self) -> bool:
        """True if head terms are frontier variables, constants, or skolems."""
        return not self.existential

    def is_gav(self) -> bool:
        """True if the head is a single atom and there are no existentials.

        Skolem terms in the head are allowed: the reduction of Theorem 1
        produces GAV rules whose heads mention skolem terms standing for
        the nulls the original mapping would have invented.
        """
        return len(self.head) == 1 and not self.existential

    def is_lav(self) -> bool:
        """True if the body is a single atom."""
        return len(self.body) == 1

    def has_skolem_terms(self) -> bool:
        return any(
            isinstance(term, SkolemTerm) for atom in self.head for term in atom.terms
        )

    # ------------------------------------------------------------ utilities

    def body_relations(self) -> set[str]:
        return {atom.relation for atom in self.body}

    def head_relations(self) -> set[str]:
        return {atom.relation for atom in self.head}

    def variables(self) -> set[Variable]:
        out: set[Variable] = set()
        for atom in self.body + self.head:
            for term in atom.terms:
                if isinstance(term, Variable):
                    out.add(term)
                elif isinstance(term, SkolemTerm):
                    out.update(a for a in term.args if isinstance(a, Variable))
        return out

    def __repr__(self) -> str:
        body = ", ".join(repr(a) for a in self.body)
        head = ", ".join(repr(a) for a in self.head)
        exist = ""
        if self.existential:
            names = ",".join(sorted(v.name for v in self.existential))
            exist = f"∃{names} "
        return f"[{self.label}] {body} -> {exist}{head}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TGD)
            and self.body == other.body
            and self.head == other.head
        )

    def __hash__(self) -> int:
        return hash((self.body, self.head))
