"""Schema mappings ``M = (S, T, Σst, Σt)``.

A schema mapping bundles a source schema, a target schema, a set of
source-to-target tgds, and a set of target tgds and egds.  The classes of
mappings from the paper are recognized:

- ``glav+(glav, egd)``   — the general case (XR-Certain is undecidable);
- ``glav+(wa-glav, egd)``— weakly acyclic target tgds (coNP-complete);
- ``gav+(gav, egd)``     — the fragment the DLP encodings operate on.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.dependencies.acyclicity import is_weakly_acyclic
from repro.dependencies.egds import EGD
from repro.dependencies.tgds import TGD
from repro.relational.schema import RelationSymbol, Schema


class SchemaMapping:
    """A schema mapping ``(S, T, Σst, Σt)`` with Σt split into tgds and egds."""

    __slots__ = ("source", "target", "st_tgds", "target_tgds", "target_egds")

    def __init__(
        self,
        source: Schema,
        target: Schema,
        st_tgds: Sequence[TGD],
        target_tgds: Sequence[TGD] = (),
        target_egds: Sequence[EGD] = (),
    ):
        if not source.is_disjoint_from(target):
            shared = source.names() & target.names()
            raise ValueError(f"source and target schemas share relations: {shared}")
        self.source = source
        self.target = target
        self.st_tgds = tuple(st_tgds)
        self.target_tgds = tuple(target_tgds)
        self.target_egds = tuple(target_egds)
        self._validate()

    def _validate(self) -> None:
        src_names = self.source.names()
        tgt_names = self.target.names()
        for tgd in self.st_tgds:
            bad_body = tgd.body_relations() - src_names
            bad_head = tgd.head_relations() - tgt_names
            if bad_body:
                raise ValueError(
                    f"{tgd.label}: body relations {bad_body} not in source schema"
                )
            if bad_head:
                raise ValueError(
                    f"{tgd.label}: head relations {bad_head} not in target schema"
                )
        for tgd in self.target_tgds:
            bad = (tgd.body_relations() | tgd.head_relations()) - tgt_names
            if bad:
                raise ValueError(
                    f"{tgd.label}: relations {bad} not in target schema"
                )
        for egd in self.target_egds:
            bad = egd.body_relations() - tgt_names
            if bad:
                raise ValueError(
                    f"{egd.label}: relations {bad} not in target schema"
                )
        self._check_arities(self.st_tgds, self.target_tgds, self.target_egds)

    def _check_arities(self, *groups: Iterable) -> None:
        combined = self.source.union(self.target)
        for group in groups:
            for dep in group:
                atoms = list(dep.body)
                atoms.extend(getattr(dep, "head", ()))
                for atom in atoms:
                    declared = combined.get(atom.relation)
                    if declared is not None and declared.arity != atom.arity:
                        raise ValueError(
                            f"{dep.label}: atom {atom!r} has arity {atom.arity}, "
                            f"schema declares {declared.arity}"
                        )

    # ------------------------------------------------------- classification

    def is_gav_gav_egd(self) -> bool:
        """True if Σst and target tgds are all GAV (the ``gav+(gav, egd)`` class).

        Rules with skolem terms in heads count as GAV (Theorem 1 output).
        """
        return all(t.is_gav() for t in self.st_tgds) and all(
            t.is_gav() for t in self.target_tgds
        )

    def is_weakly_acyclic(self) -> bool:
        """True if the target tgds form a weakly acyclic set."""
        return is_weakly_acyclic(self.target_tgds)

    def has_target_constraints(self) -> bool:
        return bool(self.target_tgds or self.target_egds)

    # ------------------------------------------------------------ utilities

    def all_tgds(self) -> tuple[TGD, ...]:
        """Σst ∪ (tgds of Σt), in that order."""
        return self.st_tgds + self.target_tgds

    def drop_egds(self) -> "SchemaMapping":
        """The mapping ``Mtgd`` of Definition 2: all egds removed."""
        return SchemaMapping(
            self.source, self.target, self.st_tgds, self.target_tgds, ()
        )

    def with_extra_target_tgds(self, extra: Sequence[TGD]) -> "SchemaMapping":
        """A copy of this mapping with additional target tgds appended.

        Used to turn a UCQ into new target relations (Section 6.4): each
        disjunct becomes a GAV tgd deriving the query relation.  The target
        schema is extended with any new head relations.
        """
        target = Schema(self.target)
        for tgd in extra:
            for atom in tgd.head:
                if atom.relation not in target:
                    target.add(RelationSymbol(atom.relation, atom.arity))
        return SchemaMapping(
            self.source,
            target,
            self.st_tgds,
            tuple(self.target_tgds) + tuple(extra),
            self.target_egds,
        )

    def stats(self) -> dict[str, int]:
        return {
            "source_relations": len(self.source),
            "target_relations": len(self.target),
            "st_tgds": len(self.st_tgds),
            "target_tgds": len(self.target_tgds),
            "target_egds": len(self.target_egds),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"SchemaMapping(|S|={s['source_relations']}, |T|={s['target_relations']}, "
            f"|Σst|={s['st_tgds']}, |Σt|={s['target_tgds']}+{s['target_egds']} egds)"
        )
