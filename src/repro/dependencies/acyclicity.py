"""Weak acyclicity (Fagin, Kolaitis, Miller, Popa 2005).

A set of tgds is weakly acyclic when its *position graph* has no cycle
through a special edge.  The nodes of the position graph are the positions
``(R, i)`` of the relations mentioned by the tgds.  For each tgd
``φ(x) → ∃y ψ(x, y)``, each universally quantified variable ``x`` occurring
in ``φ`` at position ``(R, i)`` and in ``ψ`` at position ``(S, j)``
contributes a regular edge ``(R, i) → (S, j)``; and for each existential
variable ``y`` occurring in ``ψ`` at position ``(S, j)``, a *special* edge
``(R, i) → (S, j)``.

Weak acyclicity guarantees termination of the chase in polynomially many
steps, and bounds the nesting depth of skolem values in the skolemized
chase — the property the Theorem 1 reduction relies on.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.dependencies.tgds import TGD, SkolemTerm
from repro.relational.terms import Variable

REGULAR = "regular"
SPECIAL = "special"


def position_graph(tgds: Iterable[TGD]) -> nx.MultiDiGraph:
    """Build the position graph of a set of tgds.

    Edge attribute ``kind`` is either ``"regular"`` or ``"special"``.
    Skolem terms in heads are treated like the existential variables they
    stand for (their argument positions emit special edges).
    """
    graph = nx.MultiDiGraph()
    for tgd in tgds:
        body_positions: dict[Variable, list[tuple[str, int]]] = {}
        for atom in tgd.body:
            for pos, term in enumerate(atom.terms):
                if isinstance(term, Variable):
                    body_positions.setdefault(term, []).append((atom.relation, pos))
                    graph.add_node((atom.relation, pos))

        for atom in tgd.head:
            for pos, term in enumerate(atom.terms):
                graph.add_node((atom.relation, pos))
                if isinstance(term, Variable):
                    if term in tgd.existential:
                        # Special edge from every body position of every
                        # frontier variable of the tgd.
                        for frontier_var in tgd.frontier:
                            for src in body_positions.get(frontier_var, ()):
                                graph.add_edge(
                                    src, (atom.relation, pos), kind=SPECIAL
                                )
                    else:
                        for src in body_positions.get(term, ()):
                            graph.add_edge(src, (atom.relation, pos), kind=REGULAR)
                elif isinstance(term, SkolemTerm):
                    for arg in term.args:
                        if isinstance(arg, Variable):
                            for src in body_positions.get(arg, ()):
                                graph.add_edge(
                                    src, (atom.relation, pos), kind=SPECIAL
                                )
    return graph


def is_weakly_acyclic(tgds: Iterable[TGD]) -> bool:
    """True if the set of tgds is weakly acyclic.

    A special edge inside a strongly connected component of the position
    graph witnesses a cycle through a special edge.
    """
    graph = position_graph(tgds)
    component_of: dict = {}
    for index, component in enumerate(nx.strongly_connected_components(graph)):
        for node in component:
            component_of[node] = index
    for src, dst, data in graph.edges(data=True):
        if data.get("kind") == SPECIAL and component_of[src] == component_of[dst]:
            return False
    return True


def existential_rank(tgds: Iterable[TGD]) -> dict[tuple[str, int], int]:
    """The *rank* of each position: the maximum number of special edges on
    any path of the position graph reaching it.

    Finite for weakly acyclic sets; it bounds how deeply nulls created at a
    position can depend on other nulls (and hence skolem nesting depth).
    Raises ``ValueError`` when the set is not weakly acyclic.
    """
    tgds = list(tgds)
    if not is_weakly_acyclic(tgds):
        raise ValueError("existential rank is undefined: not weakly acyclic")
    graph = position_graph(tgds)
    condensed = nx.condensation(nx.DiGraph(graph))  # DAG of SCCs

    # Longest path counting special edges, over the SCC DAG.  Because the
    # set is weakly acyclic, all special edges go between distinct SCCs.
    special_between: dict[tuple[int, int], int] = {}
    member_of = condensed.graph["mapping"]
    for src, dst, data in graph.edges(data=True):
        key = (member_of[src], member_of[dst])
        if key[0] == key[1]:
            continue
        weight = 1 if data.get("kind") == SPECIAL else 0
        special_between[key] = max(special_between.get(key, 0), weight)

    order = list(nx.topological_sort(condensed))
    scc_rank = {node: 0 for node in order}
    for node in order:
        for successor in condensed.successors(node):
            weight = special_between.get((node, successor), 0)
            scc_rank[successor] = max(scc_rank[successor], scc_rank[node] + weight)

    return {pos: scc_rank[member_of[pos]] for pos in graph.nodes}
