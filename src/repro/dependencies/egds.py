"""Equality-generating dependencies (egds).

An egd has the form ``∀x (φ(x) → x_i = x_j)`` with ``φ`` a conjunction of
atoms.  During the chase, a violated egd either unifies a labelled null with
another value, or *fails* when it would equate two distinct constants.

Egds produced by the GLAV-to-GAV reduction may carry a ``constants_only``
flag: such an egd only counts as violated when **both** sides are bound to
constants.  This implements the fact that equating a skolem value (which
stands for a null) with anything is harmless.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.relational.queries import Atom
from repro.relational.terms import Const, Variable

_egd_counter = itertools.count(1)


class EGD:
    """An equality-generating dependency ``body → lhs = rhs``.

    ``symmetric`` marks egds whose body is invariant under swapping ``lhs``
    and ``rhs`` (the reduction's hard egd over ``EQ``): violation detection
    then canonicalizes the two orientations of a grounding into one.
    """

    __slots__ = ("body", "lhs", "rhs", "label", "constants_only", "symmetric")

    def __init__(
        self,
        body: Sequence[Atom],
        lhs: Variable,
        rhs: Variable | Const,
        label: str | None = None,
        constants_only: bool = False,
        symmetric: bool = False,
    ):
        if not body:
            raise ValueError("an egd needs a non-empty body")
        if not isinstance(lhs, Variable):
            raise ValueError("egd left-hand side must be a variable")
        self.body = tuple(body)
        self.lhs = lhs
        self.rhs = rhs
        self.label = label if label is not None else f"egd{next(_egd_counter)}"
        self.constants_only = constants_only
        self.symmetric = symmetric

        body_vars: set[Variable] = set()
        for atom in self.body:
            body_vars |= atom.variables()
        if lhs not in body_vars:
            raise ValueError(f"{self.label}: {lhs!r} does not occur in the body")
        if isinstance(rhs, Variable) and rhs not in body_vars:
            raise ValueError(f"{self.label}: {rhs!r} does not occur in the body")

    def body_relations(self) -> set[str]:
        return {atom.relation for atom in self.body}

    def variables(self) -> set[Variable]:
        out: set[Variable] = set()
        for atom in self.body:
            out |= atom.variables()
        return out

    def __repr__(self) -> str:
        body = ", ".join(repr(a) for a in self.body)
        return f"[{self.label}] {body} -> {self.lhs!r} = {self.rhs!r}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, EGD)
            and self.body == other.body
            and self.lhs == other.lhs
            and self.rhs == other.rhs
            and self.constants_only == other.constants_only
        )

    def __hash__(self) -> int:
        return hash((self.body, self.lhs, self.rhs, self.constants_only))
