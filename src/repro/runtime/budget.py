"""Resource governance for the solve path: budgets, deadlines, backoff.

XR-Certain answering is Πp2-hard, so even the segmentary engine's "many
small hard problems" can contain one signature program whose CDCL search
blows up.  A :class:`SolveBudget` bounds that risk three ways:

- ``deadline`` — wall-clock seconds for a whole query (the batch of
  signature solves, measured from the start of the query phase);
- ``task_timeout`` — wall-clock seconds for any single signature solve;
- ``max_retries`` — how many times a *crashed* solve (a worker process
  that died mid-task) is re-dispatched, with exponential backoff.

Budgets are carried on :class:`~repro.runtime.executor.SolveTask` and
enforced in two layers: **cooperatively**, by deadline checks inside the
CDCL decision loop (:class:`~repro.asp.sat.SatSolver` raises
:class:`SolveBudgetExceeded`, which workers convert into a
``SolveOutcome(status="timeout")``); and **externally**, by the parent
executor bounding how long it waits for worker results, which covers
workers that are wedged and never reach a cooperative check.

``NO_BUDGET`` (the default everywhere) disables every mechanism: no
deadline objects are created, no checks run, and answers are bit-identical
to an unbudgeted build.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


class SolveBudgetExceeded(Exception):
    """Raised inside a solve when its deadline passes.

    Workers catch this and report ``SolveOutcome(status="timeout")``;
    engines surface it to callers only when ``allow_partial`` is off.
    """


def backoff_delay(attempt: int, base: float, cap: float) -> float:
    """Exponential backoff: ``min(cap, base * 2**attempt)`` (0 if no base)."""
    if base <= 0:
        return 0.0
    return min(cap, base * (2.0 ** max(attempt, 0)))


class Deadline:
    """An absolute wall-clock cutoff on the monotonic clock.

    ``deadline_at`` is a ``time.monotonic()`` timestamp, or ``None`` for
    "no deadline" (every check is then a no-op).  Monotonic timestamps are
    comparable across processes on the same machine (CLOCK_MONOTONIC is
    system-wide on Linux), so the parent can ship ``deadline_at`` to pool
    workers as a plain float.
    """

    __slots__ = ("deadline_at",)

    def __init__(self, deadline_at: float | None = None):
        self.deadline_at = deadline_at

    @classmethod
    def after(cls, seconds: float | None) -> "Deadline":
        """A deadline ``seconds`` from now (or a no-op deadline for None)."""
        if seconds is None:
            return cls(None)
        return cls(time.monotonic() + seconds)

    @classmethod
    def tightest(
        cls, timeout: float | None = None, at: float | None = None
    ) -> "Deadline | None":
        """The earlier of "``timeout`` seconds from now" and the absolute
        cutoff ``at``; None when neither bound is set."""
        cutoffs = []
        if timeout is not None:
            cutoffs.append(time.monotonic() + timeout)
        if at is not None:
            cutoffs.append(at)
        if not cutoffs:
            return None
        return cls(min(cutoffs))

    def remaining(self) -> float | None:
        """Seconds left (clamped at 0), or None when unbounded."""
        if self.deadline_at is None:
            return None
        return max(0.0, self.deadline_at - time.monotonic())

    def expired(self) -> bool:
        return self.deadline_at is not None and time.monotonic() >= self.deadline_at

    def check(self) -> None:
        """Raise :class:`SolveBudgetExceeded` if the deadline has passed."""
        if self.expired():
            raise SolveBudgetExceeded(
                f"solve deadline exceeded (cutoff at monotonic {self.deadline_at:.3f})"
            )


@dataclass(frozen=True)
class SolveBudget:
    """Resource limits for one query's solve phase.

    All fields optional; the default (:data:`NO_BUDGET`) changes nothing.
    ``retry_backoff``/``backoff_cap`` govern both task re-dispatch after a
    worker crash and executor pool recreation.
    """

    deadline: float | None = None
    task_timeout: float | None = None
    max_retries: int = 0
    retry_backoff: float = 0.05
    backoff_cap: float = 1.0

    def __post_init__(self) -> None:
        for knob in ("deadline", "task_timeout"):
            value = getattr(self, knob)
            if value is not None and value <= 0:
                raise ValueError(f"{knob} must be positive, got {value}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")

    @property
    def is_null(self) -> bool:
        """True when no mechanism is active (the bit-identical fast path)."""
        return (
            self.deadline is None
            and self.task_timeout is None
            and self.max_retries == 0
        )

    def started(self) -> Deadline | None:
        """Start the query-level clock; None when no deadline is set."""
        if self.deadline is None:
            return None
        return Deadline.after(self.deadline)

    def single_solve_deadline(self) -> Deadline | None:
        """The deadline for a one-shot solve (monolithic engine): the
        tighter of ``deadline`` and ``task_timeout``, started now."""
        if self.deadline is None and self.task_timeout is None:
            return None
        seconds = min(
            value
            for value in (self.deadline, self.task_timeout)
            if value is not None
        )
        return Deadline.after(seconds)

    def retry_delay(self, attempt: int) -> float:
        return backoff_delay(attempt, self.retry_backoff, self.backoff_cap)


#: The shared do-nothing budget (kept a singleton so pickled tasks stay tiny).
NO_BUDGET = SolveBudget()
