"""Pluggable solve execution and caching for the segmentary query phase.

The per-signature programs of Section 6.4 are pairwise-independent by
cluster independence (Definition 8 / Propositions 5–6), which makes solving
them an embarrassingly parallel workload.  This package provides:

- :mod:`repro.runtime.executor` — a small executor abstraction over "solve
  this batch of ground programs": :class:`SequentialExecutor` (in-process,
  zero dependencies) and :class:`ParallelExecutor` (a
  ``ProcessPoolExecutor``-backed fan-out with chunked dispatch and graceful
  fallback to sequential execution);
- :mod:`repro.runtime.cache` — a cross-query result cache for signature
  programs plus a coarser per-cluster decision memo, so a warm engine
  answering repeated or structurally-similar queries skips redundant
  solving entirely.

Both executors are deterministic: a batch of programs produces the same
outcomes in the same order regardless of worker count, because each solve
is a pure function of its program.
"""

from repro.runtime.cache import SignatureProgramCache
from repro.runtime.executor import (
    PackedProgram,
    ParallelExecutor,
    SequentialExecutor,
    SolveExecutor,
    SolveOutcome,
    SolveTask,
    make_executor,
    solve_task,
)

__all__ = [
    "PackedProgram",
    "ParallelExecutor",
    "SequentialExecutor",
    "SignatureProgramCache",
    "SolveExecutor",
    "SolveOutcome",
    "SolveTask",
    "make_executor",
    "solve_task",
]
