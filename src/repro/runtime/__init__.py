"""Pluggable solve execution and caching for the segmentary query phase.

The per-signature programs of Section 6.4 are pairwise-independent by
cluster independence (Definition 8 / Propositions 5–6), which makes solving
them an embarrassingly parallel workload.  This package provides:

- :mod:`repro.runtime.executor` — a small executor abstraction over "solve
  this batch of ground programs": :class:`SequentialExecutor` (in-process,
  zero dependencies) and :class:`ParallelExecutor` (a
  ``ProcessPoolExecutor``-backed fan-out with chunked dispatch and graceful
  fallback to sequential execution);
- :mod:`repro.runtime.cache` — a cross-query result cache for signature
  programs plus a coarser per-cluster decision memo, so a warm engine
  answering repeated or structurally-similar queries skips redundant
  solving entirely;
- :mod:`repro.runtime.budget` — resource governance: wall-clock deadlines,
  per-task timeouts, and crash-retry policy (:class:`SolveBudget`),
  enforced cooperatively inside the CDCL loop and externally by the
  executors, with :class:`SolveBudgetExceeded` → ``status="timeout"``
  outcomes instead of unbounded solves.

Both executors are deterministic: a batch of programs produces the same
outcomes in the same order regardless of worker count, because each solve
is a pure function of its program.
"""

from repro.runtime.budget import (
    NO_BUDGET,
    Deadline,
    SolveBudget,
    SolveBudgetExceeded,
    backoff_delay,
)
from repro.runtime.cache import SignatureProgramCache
from repro.runtime.executor import (
    PackedProgram,
    ParallelExecutor,
    SequentialExecutor,
    SolveExecutor,
    SolveOutcome,
    SolveTask,
    make_executor,
    solve_task,
)

__all__ = [
    "Deadline",
    "NO_BUDGET",
    "PackedProgram",
    "ParallelExecutor",
    "SequentialExecutor",
    "SignatureProgramCache",
    "SolveBudget",
    "SolveBudgetExceeded",
    "SolveExecutor",
    "SolveOutcome",
    "SolveTask",
    "backoff_delay",
    "make_executor",
    "solve_task",
]
