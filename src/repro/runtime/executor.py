"""Solve executors: sequential and process-parallel signature solving.

A :class:`SolveTask` is one self-contained unit of query-phase work — a
ground program plus the query-atom ids to decide cautiously or bravely.
Executors take a batch of tasks and return one :class:`SolveOutcome` per
task, *in task order*.  Because every solve is a pure function of its task
(the CDCL search is deterministic), sequential and parallel execution are
answer-identical; only wall-clock time differs.

:class:`ParallelExecutor` dispatches pickled tasks to a
``ProcessPoolExecutor`` in chunks.  Programs are shipped as
:class:`PackedProgram` — rules plus the atom-universe size, leaving the
atom table (whose :class:`~repro.relational.instance.Fact` objects dominate
pickling cost) behind in the parent; the parent keeps the fact↔id mapping
and decodes the returned atom ids itself.  When process spawning fails,
a task does not pickle, or the batch is too small to amortize fork
overhead, the executor degrades gracefully to in-process execution.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

from repro.asp.reasoning import brave_consequences, cautious_consequences
from repro.asp.stable import StableModelEngine
from repro.asp.syntax import GroundProgram, GroundRule

#: Below this many tasks a ParallelExecutor runs in-process: forking and
#: pickling cost more than the solves they would overlap.
DEFAULT_MIN_BATCH = 2


@dataclass(frozen=True)
class PackedProgram:
    """A pickling-friendly ground program: rules plus atom-universe size.

    Duck-types the two attributes the stable-model engine reads
    (``rules`` and ``num_atoms``); the atom table stays in the parent.
    """

    num_atoms: int
    rules: tuple[GroundRule, ...]

    @classmethod
    def pack(cls, program: GroundProgram | "PackedProgram") -> "PackedProgram":
        if isinstance(program, PackedProgram):
            return program
        return cls(num_atoms=program.num_atoms, rules=tuple(program.rules))


@dataclass(frozen=True)
class SolveTask:
    """Decide which of ``query_atom_ids`` hold under ``mode`` in ``program``.

    ``mode`` is ``"certain"`` (cautious: true in every stable model) or
    ``"possible"`` (brave: true in some stable model).
    """

    program: PackedProgram
    query_atom_ids: tuple[int, ...]
    mode: str = "certain"


@dataclass
class SolveOutcome:
    """The result of one solve: accepted atom ids plus observability data."""

    decided: frozenset[int] | None  # None: the program has no stable model
    seconds: float = 0.0
    solver_stats: dict[str, int] = field(default_factory=dict)


def solve_task(task: SolveTask) -> SolveOutcome:
    """Solve one task in the current process (the worker entry point)."""
    started = time.perf_counter()
    engine = StableModelEngine(task.program)
    reason = (
        cautious_consequences if task.mode == "certain" else brave_consequences
    )
    decided = reason(task.program, task.query_atom_ids, engine=engine)
    return SolveOutcome(
        decided=decided,
        seconds=time.perf_counter() - started,
        solver_stats=dict(engine.solver.statistics),
    )


def _solve_pickled(payload: bytes) -> SolveOutcome:
    """Worker entry point for pre-serialized tasks.

    Tasks are pickled in the *parent* (see :meth:`ParallelExecutor.run`):
    a non-picklable task must fail synchronously there, not inside the
    pool's queue-feeder thread, where the failure wedges the pool — both
    ``map`` and a joining ``shutdown`` would then block forever.
    """
    return solve_task(pickle.loads(payload))


@runtime_checkable
class SolveExecutor(Protocol):
    """Anything that can run a batch of solve tasks, preserving order."""

    name: str

    def run(self, tasks: Sequence[SolveTask]) -> list[SolveOutcome]: ...

    def close(self) -> None: ...


class SequentialExecutor:
    """Run every task in the calling process, one after another."""

    name = "sequential"

    def run(self, tasks: Sequence[SolveTask]) -> list[SolveOutcome]:
        return [solve_task(task) for task in tasks]

    def close(self) -> None:
        pass

    def __enter__(self) -> "SequentialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ParallelExecutor:
    """Fan a batch of tasks out to a process pool, in chunks.

    - ``jobs``: worker-process count (defaults to the CPU count);
    - ``min_batch``: batches smaller than this run in-process;
    - ``chunk_size``: tasks per pickled dispatch (default: spread the batch
      about four chunks per worker, so stragglers rebalance).

    The pool is created lazily on the first large-enough batch and reused
    across calls.  Any failure to spawn, pickle, or complete falls back to
    in-process execution for the whole batch — answers never depend on
    whether parallelism was actually available.  ``last_dispatch`` records
    how the most recent batch ran (``"parallel"`` or ``"sequential"``).
    """

    name = "parallel"

    def __init__(
        self,
        jobs: int | None = None,
        min_batch: int = DEFAULT_MIN_BATCH,
        chunk_size: int | None = None,
    ):
        self.jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)
        self.min_batch = max(1, min_batch)
        self.chunk_size = chunk_size
        self.last_dispatch = "none"
        self._pool: _ProcessPool | None = None
        self._broken = False

    def _ensure_pool(self) -> _ProcessPool | None:
        if self._pool is None and not self._broken:
            try:
                self._pool = _ProcessPool(max_workers=self.jobs)
            except (OSError, ValueError, RuntimeError):
                self._broken = True
        return self._pool

    def _run_sequential(self, tasks: Sequence[SolveTask]) -> list[SolveOutcome]:
        self.last_dispatch = "sequential"
        return [solve_task(task) for task in tasks]

    def run(self, tasks: Sequence[SolveTask]) -> list[SolveOutcome]:
        tasks = list(tasks)
        if len(tasks) < self.min_batch or self.jobs <= 1:
            return self._run_sequential(tasks)
        try:
            payloads = [
                pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
                for task in tasks
            ]
        except (pickle.PicklingError, AttributeError, TypeError):
            # Serialize in the parent so this fails *here*, synchronously.
            # Handing a non-picklable task to the pool would fail in its
            # queue-feeder thread instead, wedging the pool for good.
            return self._run_sequential(tasks)
        pool = self._ensure_pool()
        if pool is None:
            return self._run_sequential(tasks)
        chunk = self.chunk_size or max(1, len(tasks) // (self.jobs * 4) or 1)
        try:
            outcomes = list(pool.map(_solve_pickled, payloads, chunksize=chunk))
        except (BrokenProcessPool, OSError, RuntimeError):
            self._abandon_pool()
            return self._run_sequential(tasks)
        self.last_dispatch = "parallel"
        return outcomes

    def _abandon_pool(self) -> None:
        """Drop a broken pool without joining its possibly-wedged threads."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._broken = True

    def close(self) -> None:
        if self._pool is not None:
            # wait=True: a dying pool's queue threads must not survive
            # into a later fork() — a forked child that inherits their
            # locks mid-acquisition deadlocks on first use.
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def make_executor(
    jobs: int = 1,
    min_batch: int = DEFAULT_MIN_BATCH,
    chunk_size: int | None = None,
) -> SolveExecutor:
    """``jobs <= 1`` → :class:`SequentialExecutor`; else a parallel one."""
    if jobs <= 1:
        return SequentialExecutor()
    return ParallelExecutor(jobs=jobs, min_batch=min_batch, chunk_size=chunk_size)
