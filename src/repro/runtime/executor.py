"""Solve executors: sequential and process-parallel signature solving.

A :class:`SolveTask` is one self-contained unit of query-phase work — a
ground program plus the query-atom ids to decide cautiously or bravely,
and the :class:`~repro.runtime.budget.SolveBudget` governing the solve.
Executors take a batch of tasks and return one :class:`SolveOutcome` per
task, *in task order*.  Because every solve is a pure function of its task
(the CDCL search is deterministic), sequential and parallel execution are
answer-identical; only wall-clock time differs.

:class:`ParallelExecutor` dispatches pickled tasks to a
``ProcessPoolExecutor``, one future per task.  Programs are shipped as
:class:`PackedProgram` — rules plus the atom-universe size, leaving the
atom table (whose :class:`~repro.relational.instance.Fact` objects dominate
pickling cost) behind in the parent; the parent keeps the fact↔id mapping
and decodes the returned atom ids itself.

Resource governance (all off by default):

- a batch ``deadline`` bounds both the workers (cooperative checks inside
  the CDCL loop) and the parent's wait for results, so even a wedged
  worker cannot hold a query past its budget — its unfinished tasks are
  reported as ``SolveOutcome(status="timeout")`` and the stuck pool is
  abandoned and recreated for the next batch;
- a task whose worker process *crashed* (``BrokenProcessPool``) is
  re-dispatched up to its budget's ``max_retries``, with exponential
  backoff and pool recreation — only the unfinished tasks re-run, never
  the whole batch;
- pool creation itself gets bounded retries with backoff instead of a
  permanent latch, so one transient spawn failure does not disable
  parallelism for the executor's lifetime.

When process spawning stays impossible, a task does not pickle, or the
batch is too small to amortize fork overhead, the executor degrades
gracefully to in-process execution.  ``last_dispatch`` records how the
most recent batch actually ran (``"parallel"``, ``"sequential"``, or
``"mixed"`` when a batch started parallel and finished in-process).
"""

from __future__ import annotations

import math
import os
import pickle
import threading
import time
from concurrent.futures import wait as _wait_futures
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.asp.reasoning import (
    brave_consequences,
    cautious_consequences,
    decide_family,
)
from repro.asp.stable import StableModelEngine
from repro.asp.syntax import GroundProgram, GroundRule
from repro.obs.metrics import Metrics
from repro.obs.tracing import Tracer
from repro.runtime.budget import (
    NO_BUDGET,
    Deadline,
    SolveBudget,
    SolveBudgetExceeded,
    backoff_delay,
)

#: Below this many tasks a ParallelExecutor runs in-process: forking and
#: pickling cost more than the solves they would overlap.
DEFAULT_MIN_BATCH = 2

#: Extra seconds the parent waits past a deadline before declaring the
#: outstanding workers wedged: cooperative workers need a moment to notice
#: the deadline and ship their timeout outcomes back.
DEFAULT_DEADLINE_GRACE = 0.5

#: Bounded pool-recreation policy: at most this many consecutive failed
#: spawn attempts per ``run()`` call, and at most ``SPAWN_FAILURE_CAP``
#: over the executor's lifetime before parallelism is disabled for good.
POOL_RECREATE_ATTEMPTS = 3
SPAWN_FAILURE_CAP = 12
POOL_BACKOFF_BASE = 0.05
POOL_BACKOFF_CAP = 1.0


@dataclass(frozen=True)
class PackedProgram:
    """A pickling-friendly ground program: rules plus atom-universe size.

    Duck-types the two attributes the stable-model engine reads
    (``rules`` and ``num_atoms``); the atom table stays in the parent.
    """

    num_atoms: int
    rules: tuple[GroundRule, ...]

    @classmethod
    def pack(cls, program: GroundProgram | "PackedProgram") -> "PackedProgram":
        if isinstance(program, PackedProgram):
            return program
        return cls(num_atoms=program.num_atoms, rules=tuple(program.rules))


@dataclass(frozen=True)
class SolveTask:
    """Decide which of ``query_atom_ids`` hold under ``mode`` in ``program``.

    ``mode`` is ``"certain"`` (cautious: true in every stable model) or
    ``"possible"`` (brave: true in some stable model).  ``budget`` carries
    the per-task timeout and crash-retry policy; the default
    :data:`~repro.runtime.budget.NO_BUDGET` changes nothing.  ``trace``
    asks the worker to record a ``solve.task`` span (with the solver's
    search statistics as span counters) and ship it back as plain data on
    the outcome — answer-neutral, off by default.

    ``family`` switches the worker to the incremental family path
    (:func:`repro.asp.reasoning.decide_family`): all query atoms are
    decided on one engine with shared learned clauses, and a budget cutoff
    degrades per-candidate — the outcome then carries the exact verdicts
    reached before the interrupt plus the ``undecided`` remainder, instead
    of abandoning the whole batch.  A family is one task precisely so
    clause reuse survives process-pool dispatch.
    """

    program: PackedProgram
    query_atom_ids: tuple[int, ...]
    mode: str = "certain"
    budget: SolveBudget = NO_BUDGET
    trace: bool = False
    family: bool = False


@dataclass
class SolveOutcome:
    """The result of one solve: accepted atom ids plus observability data.

    ``status`` is ``"ok"`` (solved; ``decided is None`` then means the
    program has no stable model), ``"timeout"`` (the task's or batch's
    deadline passed before the solve finished), or ``"error"`` (the
    worker died and retries were exhausted).  ``attempts`` counts
    dispatches, so ``attempts - 1`` is the number of retries.  ``span``
    is the worker's serialized ``solve.task`` span tree when the task
    asked for one (``SolveTask.trace``) — the result channel doubles as
    the trace channel, so process-pool solves stay observable.

    Family tasks add per-candidate fields: ``rejected`` mirrors
    ``decided`` with the atoms proven *not* to hold, and ``undecided``
    lists atoms the budget cut off before a verdict.  A family timeout
    with ``decided is not None`` is a *partial* outcome — its decided and
    rejected verdicts are exact and usable; only ``undecided`` degrades
    to unknown.  Legacy (per-signature) timeouts keep ``decided=None``.
    """

    decided: frozenset[int] | None  # None: no stable model (status "ok")
    seconds: float = 0.0
    solver_stats: dict[str, int] = field(default_factory=dict)
    status: str = "ok"
    attempts: int = 1
    span: dict | None = None
    rejected: frozenset[int] | None = None
    undecided: frozenset[int] = frozenset()

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def solve_task(task: SolveTask, deadline_at: float | None = None) -> SolveOutcome:
    """Solve one task in the current process (the worker entry point).

    ``deadline_at`` is an absolute monotonic batch cutoff shipped by the
    parent; it is intersected with the task's own ``task_timeout``.  When
    the resulting deadline fires mid-search, the cooperative check raises
    and the outcome is reported as ``status="timeout"``.

    With ``task.trace`` set, the solve runs under a process-local tracer
    and the outcome carries the serialized ``solve.task`` span (program
    size tags, solver statistics as counters).  The span's timestamps are
    this process's monotonic epoch; the parent re-attaches the tree
    tagged ``clock="remote"``.
    """
    started = time.perf_counter()
    deadline = Deadline.tightest(
        timeout=task.budget.task_timeout, at=deadline_at
    )
    tracer = Tracer() if task.trace else None
    status = "ok"
    engine: StableModelEngine | None = None
    decided: frozenset[int] | None = None
    rejected: frozenset[int] | None = None
    undecided: frozenset[int] = frozenset()
    solve_stats: dict[str, int] | None = None

    def _solve() -> None:
        nonlocal engine, decided, rejected, undecided, status, solve_stats
        # Family engines use the compact generator: one engine serves many
        # candidates, so the leaner encoding and its precomputed reduct
        # scaffold amortize.  The per-signature path keeps the plain
        # encoding — it is the reference implementation the differential
        # fuzzer compares against.
        engine = StableModelEngine(
            task.program, deadline=deadline, compact=task.family
        )
        if task.family:
            verdicts = decide_family(
                task.program,
                task.query_atom_ids,
                mode="cautious" if task.mode == "certain" else "possible",
                engine=engine,
                deadline=deadline,
            )
            # The family stats superset the solver's own counters with
            # core_skips / family_models — shipped home as solver_stats.
            solve_stats = dict(verdicts.stats)
            if verdicts.no_model:
                decided = None  # same signal as the per-signature path
                return
            decided = verdicts.accepted
            rejected = verdicts.rejected
            undecided = verdicts.undecided
            if undecided:
                # The budget fired mid-family; the verdicts reached are
                # exact and ride along — per-candidate degradation.
                status = "timeout"
            return
        reason = (
            cautious_consequences if task.mode == "certain" else brave_consequences
        )
        decided = reason(
            task.program, task.query_atom_ids, engine=engine, deadline=deadline
        )

    try:
        if tracer is None:
            _solve()
        else:
            with tracer.span(
                "solve.task",
                mode=task.mode,
                atoms=task.program.num_atoms,
                rules=len(task.program.rules),
                query_atoms=len(task.query_atom_ids),
            ):
                _solve()
    except SolveBudgetExceeded:
        status = "timeout"
        decided = rejected = None
        undecided = frozenset()
    seconds = time.perf_counter() - started

    span_payload: dict | None = None
    if tracer is not None:
        roots = tracer.finished
        if roots:
            root = roots[0]
            root.tag("status", status)
            if engine is not None:
                for key, value in engine.statistics.items():
                    root.count(key, value)
            span_payload = root.to_dict()

    if status != "ok" and decided is None:
        return SolveOutcome(
            decided=None, seconds=seconds, status=status, span=span_payload
        )
    assert engine is not None
    return SolveOutcome(
        decided=decided,
        seconds=seconds,
        solver_stats=(
            dict(engine.statistics) if solve_stats is None else solve_stats
        ),
        status=status,
        span=span_payload,
        rejected=rejected,
        undecided=undecided,
    )


def _solve_pickled(
    payload: bytes,
    index: int = 0,
    attempt: int = 0,
    deadline_at: float | None = None,
) -> SolveOutcome:
    """Worker entry point for pre-serialized tasks.

    Tasks are pickled in the *parent* (see :meth:`ParallelExecutor.run`):
    a non-picklable task must fail synchronously there, not inside the
    pool's queue-feeder thread, where the failure wedges the pool — both
    a pending future and a joining ``shutdown`` would then block forever.

    ``index`` and ``attempt`` are unused here; they exist so alternative
    worker functions (fault injection in :mod:`repro.fuzz.faults`) can key
    behavior on which task, and which dispatch of it, they are running.
    """
    return solve_task(pickle.loads(payload), deadline_at=deadline_at)


class _DispatchRecord:
    """``last_dispatch`` bookkeeping that is correct under threads.

    A shared executor (the serving tier multiplexes every request onto
    one) is asked "how did *my* batch run?" right after ``run()`` returns
    — a single shared string would answer with whichever batch finished
    last, on any thread.  The record keeps a thread-local value (what the
    *calling* thread's most recent batch did) over a cross-thread
    fallback (the most recent batch anywhere, preserving the historical
    single-threaded reads from non-submitting threads).
    """

    __slots__ = ("_local", "_latest")

    def __init__(self) -> None:
        self._local = threading.local()
        self._latest = "none"

    def get(self) -> str:
        return getattr(self._local, "value", self._latest)

    def set(self, value: str) -> None:
        self._local.value = value
        self._latest = value


@runtime_checkable
class SolveExecutor(Protocol):
    """Anything that can run a batch of solve tasks, preserving order.

    ``last_dispatch`` must record how the most recent ``run()`` actually
    executed (not how the executor was configured): ``"sequential"``,
    ``"parallel"``, ``"mixed"``, or ``"none"`` before the first batch.
    On a shared executor the value read must be the *calling thread's*
    most recent batch when that thread has run one.
    """

    name: str
    last_dispatch: str

    def run(
        self, tasks: Sequence[SolveTask], deadline: Deadline | None = None
    ) -> list[SolveOutcome]: ...

    def close(self) -> None: ...


def _timeout_outcome(attempts: int = 1) -> SolveOutcome:
    return SolveOutcome(decided=None, status="timeout", attempts=attempts)


def _run_one(task: SolveTask, deadline: Deadline | None) -> SolveOutcome:
    """Solve a task in-process, honoring an optional batch deadline."""
    if deadline is not None and deadline.expired():
        return _timeout_outcome()
    return solve_task(
        task, deadline_at=None if deadline is None else deadline.deadline_at
    )


class SequentialExecutor:
    """Run every task in the calling process, one after another.

    ``metrics`` (an optional :class:`~repro.obs.Metrics`) receives the
    dispatch event counters when set by the owning engine; it defaults to
    None and costs nothing when absent.
    """

    name = "sequential"

    def __init__(self) -> None:
        self._dispatch = _DispatchRecord()
        self.metrics: Metrics | None = None

    @property
    def last_dispatch(self) -> str:
        return self._dispatch.get()

    @last_dispatch.setter
    def last_dispatch(self, value: str) -> None:
        self._dispatch.set(value)

    def run(
        self, tasks: Sequence[SolveTask], deadline: Deadline | None = None
    ) -> list[SolveOutcome]:
        if not tasks:
            self.last_dispatch = "none"
            return []
        self.last_dispatch = "sequential"
        if self.metrics is not None:
            self.metrics.inc("executor_batches_total")
            self.metrics.inc("executor_tasks_total", len(tasks))
            self.metrics.inc("executor_inprocess_batches_total")
        return [_run_one(task, deadline) for task in tasks]

    def close(self) -> None:
        pass

    def __enter__(self) -> "SequentialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ParallelExecutor:
    """Fan a batch of tasks out to a process pool, one future per task.

    - ``jobs``: worker-process count (defaults to the CPU count);
    - ``min_batch``: batches smaller than this run in-process;
    - ``deadline_grace``: extra parent-side wait past a deadline before
      outstanding workers are declared wedged.

    The pool is created lazily on the first large-enough batch and reused
    across calls.  Worker crashes trigger task-level retry (per the task's
    budget) with pool recreation; wedged workers are abandoned at the
    deadline; failed pool spawns retry with backoff up to a lifetime cap.
    Whatever happens, ``run`` returns one outcome per task, in order, and
    an outcome is only ever non-``ok`` when a budget or fault forced it —
    never because parallelism happened to be unavailable.

    **One batch at a time.**  Dispatch state — the lazily-(re)created
    pool, the spawn-failure counters, the crash-retry bookkeeping — is
    shared across batches, so ``run()`` serializes itself on an internal
    lock: concurrent ``submit`` from multiple threads (the serving tier
    multiplexing requests onto one executor) queues batches instead of
    interleaving their retry/pool-rebuild bookkeeping.  Answers were
    never at risk (each batch's results live in locals), but an
    interleaved ``_abandon_pool`` could strand another batch's futures
    and double-count spawn failures.  ``close()`` takes the same lock,
    so a pool is never torn down under a live batch.  ``last_dispatch``
    is thread-local (see :class:`_DispatchRecord`): each thread reads
    how *its* batch ran.
    """

    name = "parallel"

    def __init__(
        self,
        jobs: int | None = None,
        min_batch: int = DEFAULT_MIN_BATCH,
        chunk_size: int | None = None,
        deadline_grace: float = DEFAULT_DEADLINE_GRACE,
    ):
        self.jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)
        self.min_batch = max(1, min_batch)
        # Kept for API compatibility; dispatch is per-task since the
        # budget rework (retry and timeout need task granularity).
        self.chunk_size = chunk_size
        self.deadline_grace = deadline_grace
        self._dispatch = _DispatchRecord()
        self.metrics: Metrics | None = None
        # Serializes run()/close(): dispatch bookkeeping (pool handle,
        # spawn-failure counters, retry waves) is one-batch-at-a-time.
        self._batch_lock = threading.Lock()
        self._pool: _ProcessPool | None = None
        self._spawn_failures = 0  # lifetime count, capped
        # The worker entry point; fault-injecting subclasses override it.
        # Must be picklable (module-level function or functools.partial
        # of one) so spawn-based pools can ship it.
        self._worker: Callable = _solve_pickled

    @property
    def last_dispatch(self) -> str:
        return self._dispatch.get()

    @last_dispatch.setter
    def last_dispatch(self, value: str) -> None:
        self._dispatch.set(value)

    def _count(self, name: str, value: int = 1) -> None:
        """Record one executor event when a metrics registry is attached."""
        if self.metrics is not None:
            self.metrics.inc(name, value)

    # ------------------------------------------------------------- pool

    def _ensure_pool(self) -> _ProcessPool | None:
        """The live pool, (re)created with bounded, backed-off attempts.

        Returns None when this call's attempts are exhausted or the
        lifetime spawn-failure cap was hit; the caller then degrades to
        in-process execution for the current batch, but — below the cap —
        a later batch will try to spawn again.
        """
        if self._pool is not None:
            return self._pool
        attempts = 0
        while (
            attempts < POOL_RECREATE_ATTEMPTS
            and self._spawn_failures < SPAWN_FAILURE_CAP
        ):
            if attempts:
                time.sleep(
                    backoff_delay(attempts - 1, POOL_BACKOFF_BASE, POOL_BACKOFF_CAP)
                )
            try:
                self._pool = _ProcessPool(max_workers=self.jobs)
            except (OSError, ValueError, RuntimeError):
                attempts += 1
                self._spawn_failures += 1
                self._count("executor_pool_spawn_failures_total")
                continue
            return self._pool
        return None

    def _abandon_pool(self) -> None:
        """Drop a broken or wedged pool without joining its threads; a
        later :meth:`_ensure_pool` recreates it (bounded by the caps)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # --------------------------------------------------------- dispatch

    def _run_sequential(
        self, tasks: Sequence[SolveTask], deadline: Deadline | None
    ) -> list[SolveOutcome]:
        self.last_dispatch = "sequential"
        self._count("executor_inprocess_batches_total")
        return [_run_one(task, deadline) for task in tasks]

    def _wait_bound(
        self,
        deadline: Deadline | None,
        tasks: Sequence[SolveTask],
        remaining: Sequence[int],
    ) -> float | None:
        """Absolute monotonic time after which outstanding workers are
        considered wedged; None when nothing bounds the wait (today's
        unbudgeted behavior)."""
        if deadline is not None and deadline.deadline_at is not None:
            return deadline.deadline_at + self.deadline_grace
        timeouts = [tasks[i].budget.task_timeout for i in remaining]
        if timeouts and all(t is not None for t in timeouts):
            # Every task is individually bounded: even with queueing, the
            # batch cannot honestly need more than this many waves.
            waves = math.ceil(len(remaining) / self.jobs)
            return (
                time.monotonic()
                + max(timeouts) * waves
                + self.deadline_grace
            )
        return None

    def run(
        self, tasks: Sequence[SolveTask], deadline: Deadline | None = None
    ) -> list[SolveOutcome]:
        tasks = list(tasks)
        if not tasks:
            self.last_dispatch = "none"
            return []
        self._count("executor_batches_total")
        self._count("executor_tasks_total", len(tasks))
        if len(tasks) < self.min_batch or self.jobs <= 1:
            # In-process execution touches no shared dispatch state; it
            # runs outside the batch lock so small batches never queue
            # behind a pooled one.
            return self._run_sequential(tasks, deadline)
        with self._batch_lock:
            return self._run_pooled(tasks, deadline)

    def _run_pooled(
        self, tasks: list[SolveTask], deadline: Deadline | None
    ) -> list[SolveOutcome]:
        """Dispatch one batch through the pool; caller holds the lock."""
        try:
            payloads = [
                pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
                for task in tasks
            ]
        except (pickle.PicklingError, AttributeError, TypeError):
            # Serialize in the parent so this fails *here*, synchronously.
            # Handing a non-picklable task to the pool would fail in its
            # queue-feeder thread instead, wedging the pool for good.
            self._count("executor_pickle_fallback_total")
            return self._run_sequential(tasks, deadline)

        results: list[SolveOutcome | None] = [None] * len(tasks)
        attempts = [0] * len(tasks)
        remaining = list(range(len(tasks)))
        pooled = 0  # outcomes that came back from a worker process
        in_process = 0  # outcomes solved in-parent (pool unavailable)
        wave = 0
        deadline_at = None if deadline is None else deadline.deadline_at

        while remaining:
            if deadline is not None and deadline.expired():
                for i in remaining:
                    results[i] = _timeout_outcome(attempts[i] + 1)
                    self._count("executor_deadline_timeouts_total")
                remaining = []
                break
            if wave:
                # Re-dispatch wave after worker crashes: back off first.
                base = max(tasks[i].budget.retry_backoff for i in remaining)
                cap = max(tasks[i].budget.backoff_cap for i in remaining)
                time.sleep(backoff_delay(wave - 1, base, cap))
            pool = self._ensure_pool()
            if pool is None:
                for i in remaining:
                    results[i] = _run_one(tasks[i], deadline)
                    in_process += 1
                remaining = []
                break

            try:
                futures = {
                    pool.submit(
                        self._worker, payloads[i], i, attempts[i], deadline_at
                    ): i
                    for i in remaining
                }
            except RuntimeError:
                # The pool was shut down or broke between batches; drop it
                # and let the next loop iteration recreate or degrade.
                self._abandon_pool()
                self._spawn_failures += 1
                continue

            retry: list[int] = []
            broken = False
            wedged = False
            not_done = set(futures)
            wait_until = self._wait_bound(deadline, tasks, remaining)
            while not_done:
                timeout = (
                    None
                    if wait_until is None
                    else max(0.0, wait_until - time.monotonic())
                )
                done, not_done = _wait_futures(not_done, timeout=timeout)
                if not done:
                    wedged = True  # bound passed with workers outstanding
                    break
                for future in done:
                    i = futures[future]
                    error = future.exception()
                    if error is None:
                        outcome = future.result()
                        outcome.attempts = attempts[i] + 1
                        results[i] = outcome
                        pooled += 1
                    else:
                        # The worker process died (BrokenProcessPool), or
                        # the pool imploded some other way.  Task-level
                        # retry: only this task re-runs, if its budget
                        # still allows it.
                        broken = True
                        self._count("executor_worker_crashes_total")
                        if attempts[i] < tasks[i].budget.max_retries:
                            attempts[i] += 1
                            retry.append(i)
                            self._count("executor_task_retries_total")
                        else:
                            results[i] = SolveOutcome(
                                decided=None,
                                status="error",
                                attempts=attempts[i] + 1,
                            )
            if wedged:
                # The wait bound has passed: no budget is left for the
                # unfinished tasks, including any queued for crash-retry.
                self._count("executor_wedged_batches_total")
                for future, i in futures.items():
                    if results[i] is None:
                        future.cancel()
                        results[i] = _timeout_outcome(attempts[i] + 1)
                        self._count("executor_deadline_timeouts_total")
                self._abandon_pool()  # its workers are stuck; start fresh
                remaining = []
                break
            if broken:
                self._abandon_pool()
            remaining = sorted(retry)
            if remaining:
                wave += 1

        if pooled and in_process:
            self.last_dispatch = "mixed"
        elif pooled or in_process == 0:
            # Everything that produced a worker outcome ran in the pool
            # (parent-marked timeouts still count as a parallel dispatch).
            self.last_dispatch = "parallel"
        else:
            self.last_dispatch = "sequential"
        assert all(outcome is not None for outcome in results)
        return results  # type: ignore[return-value]

    def close(self) -> None:
        with self._batch_lock:
            if self._pool is not None:
                # wait=True: a dying pool's queue threads must not survive
                # into a later fork() — a forked child that inherits their
                # locks mid-acquisition deadlocks on first use.
                self._pool.shutdown(wait=True, cancel_futures=True)
                self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def make_executor(
    jobs: int = 1,
    min_batch: int = DEFAULT_MIN_BATCH,
    chunk_size: int | None = None,
) -> SolveExecutor:
    """``jobs <= 1`` → :class:`SequentialExecutor`; else a parallel one."""
    if jobs <= 1:
        return SequentialExecutor()
    return ParallelExecutor(jobs=jobs, min_batch=min_batch, chunk_size=chunk_size)
