"""Cross-query caching for the segmentary query phase.

Two layers, both exact (never approximate — a hit returns precisely what a
fresh solve would have returned):

**Signature-program cache.**  Keyed by
``(signature, encoding, mode, frozenset(query_groundings))`` — the complete
input of one per-signature program.  A warm engine answering the same query
again (the pattern of ``run_query_suite`` and the Table 3 suite) hits this
layer and skips program construction *and* solving.

**Per-cluster decision memo.**  Keyed by ``(signature, encoding, mode,
focus-support structure)`` → ``accepted?``.  A candidate's acceptance
depends only on the repair core of its signature's clusters and on its
support sets restricted to the focus (safe facts are represented by *true*
and drop out) — not on the query's name or answer tuple.  Two different
queries whose candidates project onto the same focus-support structure
therefore share decisions; the memo is coarser than the program cache and
hits across queries that are merely structurally similar.  Validity rests
on cluster independence (Definition 8): query atoms never feed back into
the repair core, so each candidate is decided independently within its
signature program.

**Bounded memory (LRU).**  Both layers accept an optional capacity; when
an insert would exceed it, the least-recently-*used* entry is evicted
(lookups and stores both refresh recency).  Eviction never changes
answers — a later query that would have hit the evicted entry simply
rebuilds and re-solves — so the policy is answer-neutral by construction,
and a long-lived process (the ROADMAP's serving tier) gets a bounded
footprint.  Evictions are counted in :class:`CacheStats` and, when a
metrics registry is attached, in ``cache_program_evictions_total`` /
``cache_decision_evictions_total``.

**Cluster-keyed invalidation.**  Every key embeds the signature — the set
of violation-cluster ids whose meaning is fixed by the engine's
:class:`~repro.xr.envelope.EnvelopeAnalysis`.  Incremental maintenance
(:mod:`repro.incremental`) retires the ids of clusters an update touched
and mints fresh ids for their replacements; :meth:`invalidate_clusters`
then drops exactly the entries whose signature meets the retired set,
so decisions about *unaffected* clusters survive the update.

**Thread safety.**  One cache is shared by every query running on a warm
engine — under the serving tier (:mod:`repro.serve`) those queries run on
*concurrent threads*.  LRU recency maintenance mutates the underlying
dicts on **lookup** (delete + re-insert), so even the read path writes;
all four operations (lookup/store/invalidate/clear) therefore take one
internal ``threading.Lock``.  The critical sections are a few dict
operations each, so the single-threaded overhead is one uncontended
acquire per call — negligible next to program construction, and far
cheaper than the torn-LRU ``KeyError`` crashes (or silently corrupted
recency chains) concurrent unlocked lookups produce.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable

from repro.relational.instance import Fact

#: A candidate's supports restricted to the focus: a set of support sets.
DecisionKey = frozenset[frozenset[Fact]]
#: The full input of one signature program.
ProgramKey = tuple[
    frozenset[int], str, str, frozenset[tuple[Fact, tuple[Fact, ...]]]
]


def decision_key(
    supports: Iterable[tuple[Fact, ...]], safe: set[Fact]
) -> DecisionKey:
    """The focus-support structure of one candidate (memo key)."""
    return frozenset(
        frozenset(fact for fact in support if fact not in safe)
        for support in supports
    )


def program_key(
    signature: frozenset[int],
    encoding: str,
    mode: str,
    query_groundings: Iterable[tuple[Fact, tuple[Fact, ...]]],
) -> ProgramKey:
    """The cache key of one signature program."""
    return (signature, encoding, mode, frozenset(query_groundings))


@dataclass
class CacheStats:
    """Cumulative hit/miss/eviction counters (lifetime of the cache)."""

    program_hits: int = 0
    program_misses: int = 0
    decision_hits: int = 0
    decision_misses: int = 0
    program_evictions: int = 0
    decision_evictions: int = 0
    invalidated: int = 0


class SignatureProgramCache:
    """The two cache layers plus their counters; one per warm engine.

    Entries are valid for the lifetime of one exchange phase *or*, under
    :mod:`repro.incremental` maintenance, until the update session retires
    a cluster id appearing in their signature (``invalidate_clusters``).
    Re-running the exchange from scratch (a new engine) must still start
    from an empty cache.

    ``max_programs`` / ``max_decisions`` bound each layer; ``None`` (the
    default) keeps the historical unbounded behavior.  Eviction is LRU
    and answer-neutral.  An optional ``metrics``
    (:class:`~repro.obs.metrics.Metrics`) registry receives eviction
    counters so long-lived processes can watch cache pressure.
    """

    def __init__(
        self,
        max_programs: int | None = None,
        max_decisions: int | None = None,
    ) -> None:
        if max_programs is not None and max_programs < 1:
            raise ValueError(f"max_programs must be >= 1, got {max_programs}")
        if max_decisions is not None and max_decisions < 1:
            raise ValueError(f"max_decisions must be >= 1, got {max_decisions}")
        self.max_programs = max_programs
        self.max_decisions = max_decisions
        # One lock for both layers and the counters: lookups mutate the
        # dicts too (LRU delete + re-insert), so readers and writers must
        # exclude each other.  Never held while calling out — the metrics
        # registry has its own lock and is incremented outside ours.
        self._lock = threading.Lock()
        # Python dicts preserve insertion order; LRU recency is maintained
        # by deleting + re-inserting on every touch, and eviction pops the
        # oldest entry (next(iter(...))).
        self._programs: dict[ProgramKey, frozenset[Fact]] = {}
        self._decisions: dict[
            tuple[frozenset[int], str, str, DecisionKey], bool
        ] = {}
        self.stats = CacheStats()
        self.metrics = None  # optional repro.obs Metrics registry

    # ---------------------------------------------------- program layer

    def lookup_program(self, key: ProgramKey) -> frozenset[Fact] | None:
        with self._lock:
            accepted = self._programs.get(key)
            if accepted is None:
                self.stats.program_misses += 1
            else:
                self.stats.program_hits += 1
                if self.max_programs is not None:
                    # Refresh recency (move to the back of the dict).
                    del self._programs[key]
                    self._programs[key] = accepted
        return accepted

    def store_program(self, key: ProgramKey, accepted: Iterable[Fact]) -> None:
        value = frozenset(accepted)
        evicted = False
        with self._lock:
            if key in self._programs:
                del self._programs[key]
            self._programs[key] = value
            if (
                self.max_programs is not None
                and len(self._programs) > self.max_programs
            ):
                self._programs.pop(next(iter(self._programs)))
                self.stats.program_evictions += 1
                evicted = True
        if evicted and self.metrics is not None:
            self.metrics.inc("cache_program_evictions_total")

    # --------------------------------------------------- decision layer

    def lookup_decision(
        self,
        signature: frozenset[int],
        encoding: str,
        mode: str,
        key: DecisionKey,
    ) -> bool | None:
        full_key = (signature, encoding, mode, key)
        with self._lock:
            verdict = self._decisions.get(full_key)
            if verdict is None:
                self.stats.decision_misses += 1
            else:
                self.stats.decision_hits += 1
                if self.max_decisions is not None:
                    del self._decisions[full_key]
                    self._decisions[full_key] = verdict
        return verdict

    def store_decision(
        self,
        signature: frozenset[int],
        encoding: str,
        mode: str,
        key: DecisionKey,
        accepted: bool,
    ) -> None:
        full_key = (signature, encoding, mode, key)
        evicted = False
        with self._lock:
            if full_key in self._decisions:
                del self._decisions[full_key]
            self._decisions[full_key] = accepted
            if (
                self.max_decisions is not None
                and len(self._decisions) > self.max_decisions
            ):
                self._decisions.pop(next(iter(self._decisions)))
                self.stats.decision_evictions += 1
                evicted = True
        if evicted and self.metrics is not None:
            self.metrics.inc("cache_decision_evictions_total")

    # -------------------------------------------------- invalidation

    def invalidate_clusters(self, cluster_ids: Iterable[int]) -> int:
        """Drop every entry whose signature meets ``cluster_ids``.

        Called by :mod:`repro.incremental` with the ids of clusters an
        update retired (touched clusters get fresh ids).  Entries whose
        signature is disjoint from the retired set describe clusters whose
        repair structure is object-identical after the update, so they
        stay valid and survive.  Returns the number of entries dropped.
        """
        retired = frozenset(cluster_ids)
        if not retired:
            return 0
        with self._lock:
            dead_programs = [
                key for key in self._programs if not retired.isdisjoint(key[0])
            ]
            for key in dead_programs:
                del self._programs[key]
            dead_decisions = [
                key
                for key in self._decisions
                if not retired.isdisjoint(key[0])
            ]
            for key in dead_decisions:
                del self._decisions[key]
            dropped = len(dead_programs) + len(dead_decisions)
            self.stats.invalidated += dropped
        if self.metrics is not None and dropped:
            self.metrics.inc("cache_invalidated_entries_total", dropped)
        return dropped

    # ------------------------------------------------------------ misc

    def clear(self) -> None:
        with self._lock:
            self._programs.clear()
            self._decisions.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._programs) + len(self._decisions)
