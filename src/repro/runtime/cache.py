"""Cross-query caching for the segmentary query phase.

Two layers, both exact (never approximate — a hit returns precisely what a
fresh solve would have returned):

**Signature-program cache.**  Keyed by
``(signature, encoding, mode, frozenset(query_groundings))`` — the complete
input of one per-signature program.  A warm engine answering the same query
again (the pattern of ``run_query_suite`` and the Table 3 suite) hits this
layer and skips program construction *and* solving.

**Per-cluster decision memo.**  Keyed by ``(signature, encoding, mode)`` →
``{focus-support structure → accepted?}``.  A candidate's acceptance
depends only on the repair core of its signature's clusters and on its
support sets restricted to the focus (safe facts are represented by *true*
and drop out) — not on the query's name or answer tuple.  Two different
queries whose candidates project onto the same focus-support structure
therefore share decisions; the memo is coarser than the program cache and
hits across queries that are merely structurally similar.  Validity rests
on cluster independence (Definition 8): query atoms never feed back into
the repair core, so each candidate is decided independently within its
signature program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.relational.instance import Fact

#: A candidate's supports restricted to the focus: a set of support sets.
DecisionKey = frozenset[frozenset[Fact]]
#: The full input of one signature program.
ProgramKey = tuple[
    frozenset[int], str, str, frozenset[tuple[Fact, tuple[Fact, ...]]]
]


def decision_key(
    supports: Iterable[tuple[Fact, ...]], safe: set[Fact]
) -> DecisionKey:
    """The focus-support structure of one candidate (memo key)."""
    return frozenset(
        frozenset(fact for fact in support if fact not in safe)
        for support in supports
    )


def program_key(
    signature: frozenset[int],
    encoding: str,
    mode: str,
    query_groundings: Iterable[tuple[Fact, tuple[Fact, ...]]],
) -> ProgramKey:
    """The cache key of one signature program."""
    return (signature, encoding, mode, frozenset(query_groundings))


@dataclass
class CacheStats:
    """Cumulative hit/miss counters (lifetime of the cache object)."""

    program_hits: int = 0
    program_misses: int = 0
    decision_hits: int = 0
    decision_misses: int = 0


class SignatureProgramCache:
    """The two cache layers plus their counters; one per warm engine.

    Entries are valid for the lifetime of one exchange phase: all keys
    embed the signature (cluster indexes), whose meaning is fixed by the
    engine's :class:`~repro.xr.envelope.EnvelopeAnalysis`.  Re-running the
    exchange (a new engine) must start from an empty cache.
    """

    def __init__(self) -> None:
        self._programs: dict[ProgramKey, frozenset[Fact]] = {}
        self._decisions: dict[tuple[frozenset[int], str, str],
                              dict[DecisionKey, bool]] = {}
        self.stats = CacheStats()

    # ---------------------------------------------------- program layer

    def lookup_program(self, key: ProgramKey) -> frozenset[Fact] | None:
        accepted = self._programs.get(key)
        if accepted is None:
            self.stats.program_misses += 1
        else:
            self.stats.program_hits += 1
        return accepted

    def store_program(self, key: ProgramKey, accepted: Iterable[Fact]) -> None:
        self._programs[key] = frozenset(accepted)

    # --------------------------------------------------- decision layer

    def lookup_decision(
        self,
        signature: frozenset[int],
        encoding: str,
        mode: str,
        key: DecisionKey,
    ) -> bool | None:
        verdict = self._decisions.get((signature, encoding, mode), {}).get(key)
        if verdict is None:
            self.stats.decision_misses += 1
        else:
            self.stats.decision_hits += 1
        return verdict

    def store_decision(
        self,
        signature: frozenset[int],
        encoding: str,
        mode: str,
        key: DecisionKey,
        accepted: bool,
    ) -> None:
        self._decisions.setdefault((signature, encoding, mode), {})[key] = accepted

    # ------------------------------------------------------------ misc

    def clear(self) -> None:
        self._programs.clear()
        self._decisions.clear()

    def __len__(self) -> int:
        return len(self._programs) + sum(
            len(entry) for entry in self._decisions.values()
        )
