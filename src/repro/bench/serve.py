"""Load-test harness for the serving tier (``repro bench --serve``).

Serving numbers are first-class alongside the solve benchmarks: per
genomics scenario, ``clients`` threads hammer ``POST /query`` over
keep-alive connections for ``duration`` seconds after a ``warmup``
period, and the artifact records

- **p50 / p99 latency** — the 50th/99th percentiles of per-request
  wall-clock (connection reuse included, connect excluded), over the
  requests *started after* the warmup cutoff;
- **sustained QPS** — measured-window completions divided by the
  measured duration;
- error accounting: ``degraded`` (200 with ``degraded: true`` — the SLO
  layer working as designed, **not** an error), ``rejected`` (429
  admission sheds), and ``errors`` (everything else: non-200, bad JSON,
  transport failures).

Two modes:

- **in-process** (default): each scenario boots its own
  :class:`~repro.serve.ReproServer` on an ephemeral port, runs the
  clients, and shuts it down — the BENCH_PR9.json path;
- **remote** (``url=...``): hammer an externally-booted server (the CI
  smoke job boots ``repro serve`` as a real subprocess and points the
  harness at it; scenario loading is then the server's business).

The client is stdlib ``http.client`` — same no-new-deps rule as the
server.
"""

from __future__ import annotations

import http.client
import json
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable
from urllib.parse import urlparse

from repro.bench.micro import parse_scenario_name
from repro.bench.reporting import format_table
from repro.genomics.instances import build_instance
from repro.genomics.queries import query_text_by_name
from repro.genomics.schema import genome_mapping
from repro.reduction.reduce import reduce_mapping
from repro.serve.http import ReproServer
from repro.serve.service import QueryService, ServiceConfig

#: Default grid: one scenario per size at the paper's 3 % suspect rate.
SERVE_SCENARIOS: tuple[str, ...] = ("S3", "M3", "L3")

#: Default query mix: a join (ep2) and a big projection (xr2).
SERVE_QUERIES: tuple[str, ...] = ("ep2", "xr2")


@dataclass
class _ClientTally:
    """One client thread's raw observations."""

    latencies_s: list[float] = field(default_factory=list)
    completed: int = 0
    degraded: int = 0
    rejected: int = 0
    errors: int = 0


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _client_loop(
    host: str,
    port: int,
    path_prefix: str,
    bodies: list[bytes],
    start_barrier: threading.Barrier,
    measure_from: list[float],
    stop_at: list[float],
    tally: _ClientTally,
    offset: int,
) -> None:
    connection = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        start_barrier.wait()
        index = offset  # stagger the round-robin so the mix interleaves
        while time.monotonic() < stop_at[0]:
            body = bodies[index % len(bodies)]
            index += 1
            started = time.monotonic()
            measured = started >= measure_from[0]
            try:
                connection.request(
                    "POST",
                    path_prefix + "/query",
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                payload = response.read()
                status = response.status
            except Exception:
                if measured:
                    tally.errors += 1
                # A broken keep-alive connection poisons every later
                # request on it; reconnect and continue.
                connection.close()
                connection = http.client.HTTPConnection(
                    host, port, timeout=30.0
                )
                continue
            if not measured:
                continue
            elapsed = time.monotonic() - started
            if status == 200:
                tally.completed += 1
                tally.latencies_s.append(elapsed)
                try:
                    if json.loads(payload).get("degraded"):
                        tally.degraded += 1
                except json.JSONDecodeError:
                    tally.errors += 1
            elif status == 429:
                tally.rejected += 1
            else:
                tally.errors += 1
    finally:
        connection.close()


def hammer(
    host: str,
    port: int,
    clients: int,
    duration: float,
    warmup: float,
    queries: tuple[str, ...],
    path_prefix: str = "",
) -> dict:
    """Run the client fleet against one server; returns the metrics row."""
    bodies = [
        json.dumps({"query": query_text_by_name(name)}).encode("utf-8")
        for name in queries
    ]
    tallies = [_ClientTally() for _ in range(clients)]
    barrier = threading.Barrier(clients + 1)
    # Boxed so every thread reads the post-barrier values.
    measure_from = [0.0]
    stop_at = [0.0]
    threads = [
        threading.Thread(
            target=_client_loop,
            args=(host, port, path_prefix, bodies, barrier,
                  measure_from, stop_at, tallies[i], i),
            name=f"bench-client-{i}",
            daemon=True,
        )
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    now = time.monotonic()
    measure_from[0] = now + warmup
    stop_at[0] = now + warmup + duration
    barrier.wait()
    for thread in threads:
        thread.join()

    latencies = sorted(
        value for tally in tallies for value in tally.latencies_s
    )
    completed = sum(tally.completed for tally in tallies)
    return {
        "clients": clients,
        "duration_s": duration,
        "warmup_s": warmup,
        "queries": list(queries),
        "requests": completed,
        "degraded": sum(tally.degraded for tally in tallies),
        "rejected": sum(tally.rejected for tally in tallies),
        "errors": sum(tally.errors for tally in tallies),
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
        "qps": round(completed / duration, 2) if duration > 0 else 0.0,
    }


def run_serve_bench(
    scenarios: tuple[str, ...] | list[str] | None = None,
    clients: int = 8,
    duration: float = 5.0,
    warmup: float = 1.0,
    queries: tuple[str, ...] = SERVE_QUERIES,
    url: str | None = None,
    jobs: int = 1,
    log: Callable[[str], None] | None = None,
) -> dict:
    """Run the load test and return the artifact payload.

    With ``url`` the fleet targets an external server (one row, keyed
    ``"remote"``); otherwise each scenario gets its own in-process
    server on an ephemeral port.
    """
    payload: dict = {
        "kind": "repro-serve-benchmark",
        "clients": clients,
        "duration_s": duration,
        "warmup_s": warmup,
        "queries": list(queries),
        "scenarios": {},
    }
    if url is not None:
        parsed = urlparse(url)
        if parsed.hostname is None or parsed.port is None:
            raise ValueError(f"url must include host and port, got {url!r}")
        row = hammer(
            parsed.hostname, parsed.port, clients, duration, warmup, queries,
            path_prefix=parsed.path.rstrip("/"),
        )
        payload["scenarios"]["remote"] = row
        if log is not None:
            log(_row_line("remote", row))
        return payload

    if scenarios is None:
        scenarios = SERVE_SCENARIOS
    reduced = reduce_mapping(genome_mapping())
    for name in scenarios:
        profile = parse_scenario_name(name)
        instance = build_instance(profile).instance
        service = QueryService(
            reduced,
            instance,
            ServiceConfig(
                jobs=jobs,
                max_inflight=max(8, clients),
                max_queue=max(16, clients),
            ),
        )
        server = ReproServer(("127.0.0.1", 0), service)
        thread = threading.Thread(
            target=server.serve_forever, name=f"bench-serve-{name}",
            daemon=True,
        )
        thread.start()
        try:
            host, port = server.server_address[:2]
            row = hammer(host, port, clients, duration, warmup, queries)
        finally:
            server.shutdown()
            thread.join(timeout=10.0)
            server.server_close()
            service.close()
        row["profile"] = {
            "name": name,
            "transcripts": profile.transcripts,
            "suspect_rate": profile.suspect_fraction,
        }
        payload["scenarios"][name] = row
        if log is not None:
            log(_row_line(name, row))
    return payload


def _row_line(name: str, row: dict) -> str:
    return (
        f"{name:>6}: {row['requests']} req  qps {row['qps']:.1f}  "
        f"p50 {row['p50_ms']:.1f}ms  p99 {row['p99_ms']:.1f}ms  "
        f"degraded {row['degraded']}  rejected {row['rejected']}  "
        f"errors {row['errors']}"
    )


def format_serve_table(payload: dict) -> str:
    """Render a serve-benchmark payload as an aligned table."""
    rows = [
        [
            name,
            row["requests"],
            f"{row['qps']:.1f}",
            f"{row['p50_ms']:.1f}",
            f"{row['p99_ms']:.1f}",
            row["degraded"],
            row["rejected"],
            row["errors"],
        ]
        for name, row in payload["scenarios"].items()
    ]
    return format_table(
        ["scenario", "requests", "qps", "p50[ms]", "p99[ms]",
         "degraded", "rejected", "errors"],
        rows,
        title=(
            f"serve load test: {payload['clients']} client(s), "
            f"{payload['duration_s']:g}s measured after "
            f"{payload['warmup_s']:g}s warmup"
        ),
    )
