"""Plain-text table and series formatting, plus JSON benchmark artifacts.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the output aligned and diff-friendly.
:func:`write_benchmark_json` writes machine-readable artifacts in the
style of ``pytest-benchmark``'s ``--benchmark-json`` (a ``machine_info``
header plus a payload), used by the micro-benchmarks to seed the perf
trajectory (``BENCH_PR3.json``).
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Any, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str,
    points: Sequence[tuple[object, float]],
    unit: str = "s",
) -> str:
    """Render one figure series as ``name: x=y`` pairs (one per point)."""
    body = "  ".join(f"{x}={y:.3f}{unit}" for x, y in points)
    return f"{name}: {body}"


def machine_info() -> dict[str, str]:
    """The machine/context header embedded in every JSON artifact.

    Mirrors pytest-benchmark's ``machine_info`` so downstream tooling can
    treat both artifact families uniformly.  Timings from different
    machines are not comparable — consumers should check this header.
    """
    return {
        "python_implementation": platform.python_implementation(),
        "python_version": platform.python_version(),
        "machine": platform.machine(),
        "system": platform.system(),
        "release": platform.release(),
        "processor": platform.processor(),
    }


def write_benchmark_json(
    path: str | Path, payload: dict[str, Any], *, indent: int = 2
) -> Path:
    """Write ``payload`` as a benchmark artifact with a machine header.

    The artifact is ``{"machine_info": ..., **payload}``, serialized with
    sorted keys so repeated runs produce byte-stable diffs (modulo the
    timing values themselves).
    """
    path = Path(path)
    document = {"machine_info": machine_info(), **payload}
    path.write_text(json.dumps(document, indent=indent, sort_keys=True) + "\n")
    return path


def read_benchmark_json(path: str | Path) -> dict[str, Any]:
    """Load an artifact previously written by :func:`write_benchmark_json`."""
    return json.loads(Path(path).read_text())


def print_flush(message: str) -> None:
    """A ``log`` callback that prints and flushes (for long-running runs)."""
    print(message, file=sys.stdout, flush=True)
