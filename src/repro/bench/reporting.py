"""Plain-text table and series formatting for benchmark output.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str,
    points: Sequence[tuple[object, float]],
    unit: str = "s",
) -> str:
    """Render one figure series as ``name: x=y`` pairs (one per point)."""
    body = "  ".join(f"{x}={y:.3f}{unit}" for x, y in points)
    return f"{name}: {body}"
