"""Benchmark harness: instance caching, timing, and paper-style reporting."""

from repro.bench.runner import (
    BenchmarkContext,
    QueryResult,
    run_query_suite,
)
from repro.bench.reporting import format_series, format_table

__all__ = [
    "BenchmarkContext",
    "QueryResult",
    "run_query_suite",
    "format_series",
    "format_table",
]
