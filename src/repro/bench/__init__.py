"""Benchmark harness: instance caching, timing, and paper-style reporting."""

from repro.bench.runner import (
    BenchmarkContext,
    QueryResult,
    run_query_suite,
)
from repro.bench.ab import (
    AB_QUERIES,
    AB_SCENARIOS,
    format_ab_table,
    run_solve_ab,
)
from repro.bench.micro import (
    MICRO_QUERIES,
    MICRO_RATES,
    MICRO_SIZES,
    MICRO_TPCH_CELLS,
    STRATEGY_STAGES,
    compare_payloads,
    format_micro_table,
    micro_scenario_names,
    run_micro,
    run_micro_scenario,
    run_tpch_micro_scenario,
)
from repro.bench.reporting import (
    format_series,
    format_table,
    machine_info,
    read_benchmark_json,
    write_benchmark_json,
)

__all__ = [
    "BenchmarkContext",
    "QueryResult",
    "run_query_suite",
    "AB_QUERIES",
    "AB_SCENARIOS",
    "format_ab_table",
    "run_solve_ab",
    "MICRO_QUERIES",
    "MICRO_RATES",
    "MICRO_SIZES",
    "MICRO_TPCH_CELLS",
    "STRATEGY_STAGES",
    "compare_payloads",
    "format_micro_table",
    "micro_scenario_names",
    "run_micro",
    "run_micro_scenario",
    "run_tpch_micro_scenario",
    "format_series",
    "format_table",
    "machine_info",
    "read_benchmark_json",
    "write_benchmark_json",
]
