"""Benchmark execution helpers.

``BenchmarkContext`` memoizes the expensive shared artifacts (the reduced
genome mapping, generated instances, warm segmentary engines) across
benchmark functions within one pytest session, so each table/figure bench
only pays for what it measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.genomics.instances import INSTANCE_PROFILES, build_instance
from repro.genomics.generator import GeneratedInstance
from repro.genomics.queries import query_by_name
from repro.genomics.schema import genome_mapping
from repro.obs.recorder import Recorder
from repro.reduction.reduce import ReducedMapping, reduce_mapping
from repro.runtime.budget import SolveBudget
from repro.xr.monolithic import MonolithicEngine
from repro.xr.segmentary import SegmentaryEngine


@dataclass
class QueryResult:
    """One (engine, instance, query) measurement."""

    query: str
    seconds: float
    answers: int


@dataclass
class BenchmarkContext:
    """Session-wide cache of reduced mapping, instances, and engines.

    ``jobs``, ``cache``, ``budget``, and ``obs`` are forwarded to every
    engine this context builds (warm engines are memoized per profile, so
    one context measures one runtime configuration).  Benchmarks that set
    a ``budget`` must report degradation (``stats.timeouts``) alongside
    timings — a degraded measurement is not comparable to an exact one.
    Likewise, a context with a live ``obs`` recorder produces *traced*
    measurements, excluded from timing baselines (see EXPERIMENTS.md).
    """

    jobs: int = 1
    cache: bool = True
    budget: SolveBudget | None = None
    obs: Recorder | None = None
    _reduced: ReducedMapping | None = None
    _instances: dict[str, GeneratedInstance] = field(default_factory=dict)
    _segmentary: dict[str, SegmentaryEngine] = field(default_factory=dict)

    def reduced_mapping(self) -> ReducedMapping:
        if self._reduced is None:
            self._reduced = reduce_mapping(genome_mapping())
        return self._reduced

    def instance(self, profile: str) -> GeneratedInstance:
        if profile not in self._instances:
            self._instances[profile] = build_instance(INSTANCE_PROFILES[profile])
        return self._instances[profile]

    def segmentary_engine(self, profile: str) -> SegmentaryEngine:
        """A segmentary engine with its exchange phase already run."""
        if profile not in self._segmentary:
            engine = SegmentaryEngine(
                self.reduced_mapping(),
                self.instance(profile).instance,
                jobs=self.jobs,
                cache=self.cache,
                budget=self.budget,
                obs=self.obs,
            )
            engine.exchange()
            self._segmentary[profile] = engine
        return self._segmentary[profile]

    def close(self) -> None:
        """Shut down any executor worker pools held by warm engines."""
        for engine in self._segmentary.values():
            engine.close()

    def __enter__(self) -> "BenchmarkContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def monolithic_engine(self, profile: str) -> MonolithicEngine:
        """A fresh monolithic engine (no shared state: the monolithic cost
        model pays for everything per query)."""
        return MonolithicEngine(
            self.reduced_mapping(),
            self.instance(profile).instance,
            budget=self.budget,
            obs=self.obs,
        )


def run_query_suite(
    engine: MonolithicEngine | SegmentaryEngine,
    query_names: list[str],
) -> list[QueryResult]:
    """Time each named Table 3 query on an engine."""
    results = []
    for name in query_names:
        query = query_by_name(name)
        started = time.perf_counter()
        answers = engine.answer(query)
        results.append(
            QueryResult(
                query=name,
                seconds=time.perf_counter() - started,
                answers=len(answers),
            )
        )
    return results
