"""Micro-benchmarks for the deterministic hot paths.

Three measured stages, per genomics scenario (size × suspect rate):

- **exchange build** — the query-independent exchange phase, split into
  chase / grounding enumeration / violation detection / index construction
  (:func:`~repro.xr.exchange.build_exchange_data` stage timings) plus the
  envelope analysis (:func:`~repro.xr.envelope.analyze_envelopes`);
- **program build** — per-signature program construction in the query
  phase (``QueryPhaseStats.build_seconds`` over a fixed query subset,
  caches disabled so construction is actually exercised);
- **solve** — stable-model solving of the built programs
  (``QueryPhaseStats.solve_seconds``), measured under **both** solve
  strategies: the default incremental family path and the legacy
  per-signature reference path, with the per-strategy medians and their
  ratio emitted as the ``solve_strategy_s`` series (the PR 8 solve-phase
  trajectory; ``repro bench --ab solve`` is the focused harness);
- **incremental** — one single-tuple delta (retract + re-insert of a
  suspect source fact, the cluster-touching worst case) applied through
  :class:`~repro.incremental.UpdateSession`, against the full re-exchange
  baseline; the reported ``speedup`` is the PR 7 acceptance number;
- **exchange strategy** — the exchange phase re-measured under **both**
  chase strategies (set-at-a-time ``batch`` vs the per-tuple reference),
  interleaved so scheduler drift hits both alike, with the per-strategy
  medians over the strategy-dependent stages (chase + groundings +
  violations) and their ratio emitted as ``exchange_strategy_s`` (the
  PR 10 acceptance number); the two runs' exchange data is asserted
  bit-identical before the ratio is reported.

Scenario names are either genomics grid cells (``"M9"``) or TPC-H grid
cells (``"tpch-sf0.01-r0.2"``, see :mod:`repro.scenarios.tpch`).  TPC-H
rows carry the exchange and exchange-strategy stages only — the genomics
query/solve/incremental stages are tied to the genomics query set.  Every
row embeds a ``meta`` object (scenario family, exchange strategy, and the
stage labels actually observed in that run) so artifacts stay
self-describing as stages evolve.

The paper's practicality claim (§5–§6) rests on the first two stages
being PTIME-cheap so the NP-hard solving dominates; these benchmarks
watch exactly that split.  Scenarios are the S/M/L genomics sizes crossed
with the paper's 0/3/9/20 % suspect rates.  Each stage reports the
*median* over ``repeats`` fresh runs (medians are robust to one-off
scheduler noise; the paper reports medians too).

``python -m repro bench --micro`` runs this and can emit a JSON artifact
via :func:`repro.bench.reporting.write_benchmark_json`; the committed
``BENCH_PR3.json`` pairs one pre-optimization artifact with one
post-optimization artifact (see ``benchmarks/README.md``).
"""

from __future__ import annotations

import gc
import statistics
import time
from typing import Callable

from repro.bench.reporting import format_table
from repro.genomics.instances import InstanceProfile, build_instance
from repro.genomics.queries import query_by_name
from repro.genomics.schema import genome_mapping
from repro.obs.recorder import Recorder
from repro.reduction.reduce import ReducedMapping, reduce_mapping
from repro.scenarios.tpch import parse_tpch_name, tpch_scenario
from repro.xr.envelope import analyze_envelopes
from repro.xr.exchange import build_exchange_data
from repro.xr.segmentary import SegmentaryEngine

#: Transcript counts of the micro-benchmark size steps (matching the
#: S3/M3/L3 profiles of :mod:`repro.genomics.instances`).
MICRO_SIZES: dict[str, int] = {"S": 18, "M": 40, "L": 100}

#: Suspect rates of the paper's Figure 3/4 sweep.
MICRO_RATES: tuple[float, ...] = (0.0, 0.03, 0.09, 0.20)

#: Query subset exercised by the query-phase stages: a source-source join
#: (ep2), a projection over the biggest target relation (xr2), and a
#: self-join (xr4).  Small enough to keep the benchmark runnable at L,
#: varied enough to build programs of every signature shape.
MICRO_QUERIES: tuple[str, ...] = ("ep2", "xr2", "xr4")

#: TPC-H cells appended to the default grid: two SF 0.01 cells (clean and
#: 20 % injected) plus one larger cell so the batch-vs-tuple ratio is
#: measured away from fixed-cost territory.
MICRO_TPCH_CELLS: tuple[str, ...] = (
    "tpch-sf0.01-r0",
    "tpch-sf0.01-r0.2",
    "tpch-sf0.03-r0.2",
)

#: Exchange stages whose cost depends on the chase strategy.  Interning,
#: fact-index, and envelope construction are shared code on both paths;
#: the ``exchange_strategy_s`` ratio is computed over these stages only.
STRATEGY_STAGES: tuple[str, ...] = ("chase", "groundings", "violations")


def micro_scenario_names(
    sizes: dict[str, int] | None = None,
    rates: tuple[float, ...] | None = None,
    tpch_cells: tuple[str, ...] | None = None,
) -> list[str]:
    """The default scenario grid: genomics cells then TPC-H cells, e.g.
    ``["S0", "S3", ..., "L20", "tpch-sf0.01-r0", ...]``."""
    sizes = MICRO_SIZES if sizes is None else sizes
    rates = MICRO_RATES if rates is None else rates
    tpch_cells = MICRO_TPCH_CELLS if tpch_cells is None else tpch_cells
    return [
        f"{size}{int(round(rate * 100))}" for size in sizes for rate in rates
    ] + list(tpch_cells)


def parse_scenario_name(name: str) -> InstanceProfile:
    """Turn ``"M9"`` into the matching :class:`InstanceProfile`."""
    size = name[0].upper()
    if size not in MICRO_SIZES:
        raise ValueError(f"unknown size {size!r}; choose from {sorted(MICRO_SIZES)}")
    try:
        rate = int(name[1:]) / 100.0
    except ValueError:
        raise ValueError(f"bad scenario name {name!r}; expected e.g. 'M9'") from None
    return InstanceProfile(name, MICRO_SIZES[size], rate)


def _median(values: list[float]) -> float:
    return statistics.median(values) if values else 0.0


def _stage_labels(runs: list[dict[str, float]]) -> list[str]:
    """The stage labels a set of timing runs actually produced, in
    first-seen order.  Derived per run rather than hardcoded so payloads
    stay honest when the exchange pipeline grows or drops a stage."""
    labels: list[str] = []
    for run in runs:
        for key in run:
            if key not in labels:
                labels.append(key)
    return labels


def _measure_exchange(
    gav,
    instance,
    repeats: int,
    obs: Recorder | None,
    strategy: str,
) -> tuple[list[dict[str, float]], object, object]:
    """The shared exchange-stage measurement loop (genomics and TPC-H)."""
    exchange_runs: list[dict[str, float]] = []
    data = None
    analysis = None
    for _ in range(max(1, repeats)):
        timings: dict[str, float] = {}
        started = time.perf_counter()
        data = build_exchange_data(
            gav, instance, timings=timings, obs=obs, strategy=strategy
        )
        built_at = time.perf_counter()
        analysis = analyze_envelopes(data)
        done = time.perf_counter()
        timings["envelope"] = done - built_at
        timings["total"] = done - started
        timings["build_total"] = built_at - started
        exchange_runs.append(timings)
    assert data is not None and analysis is not None
    return exchange_runs, data, analysis


def _exchange_strategy_series(gav, instance, repeats: int, label: str) -> dict:
    """Per-strategy exchange-phase medians and their ratio.

    Strategies are interleaved within each repeat so clock drift and
    scheduler noise hit both alike, and the ratio is taken over the
    strategy-dependent stages (:data:`STRATEGY_STAGES`) — the shared
    interning/index/envelope costs would otherwise dilute it on small
    instances.  The two strategies' exchange data must be bit-identical;
    a mismatch is a correctness bug, not a benchmark artifact.
    """
    per: dict[str, list[float]] = {"batch": [], "tuple": []}
    datas: dict[str, object] = {}
    for strategy in per:  # warm-up, excluded from the medians
        datas[strategy] = build_exchange_data(gav, instance, strategy=strategy)
    # A fragmented/large live heap from earlier stages slows the
    # allocation-heavy batch path disproportionately; start clean.
    gc.collect()
    for _ in range(max(1, repeats)):
        for strategy in per:
            timings: dict[str, float] = {}
            datas[strategy] = build_exchange_data(
                gav, instance, timings=timings, strategy=strategy
            )
            per[strategy].append(
                sum(timings.get(stage, 0.0) for stage in STRATEGY_STAGES)
            )
    batch_data, tuple_data = datas["batch"], datas["tuple"]
    for field in ("chased", "groundings", "violations", "fact_ids"):
        assert getattr(batch_data, field) == getattr(tuple_data, field), (
            f"exchange-strategy {field} mismatch on {label}"
        )
    batch = _median(per["batch"])
    tuple_ = _median(per["tuple"])
    return {
        "stages": list(STRATEGY_STAGES),
        "batch": round(batch, 6),
        "tuple": round(tuple_, 6),
        "speedup": round(tuple_ / batch, 2) if batch > 0 else float("inf"),
    }


def run_micro_scenario(
    name: str,
    reduced: ReducedMapping | None = None,
    repeats: int = 3,
    queries: tuple[str, ...] = MICRO_QUERIES,
    obs: Recorder | None = None,
    exchange_strategy: str = "batch",
) -> dict:
    """Measure one genomics scenario; returns the per-stage median payload.

    With a live ``obs`` recorder the run is *traced* — per-phase spans and
    work counters are recorded alongside the timings, at the cost of
    instrumentation overhead.  Traced numbers are for drill-down, not for
    timing baselines (EXPERIMENTS.md).
    """
    profile = parse_scenario_name(name)
    if reduced is None:
        reduced = reduce_mapping(genome_mapping())
    instance = build_instance(profile).instance

    exchange_runs, data, analysis = _measure_exchange(
        reduced.gav, instance, repeats, obs, exchange_strategy
    )
    # Measure the strategy series while the heap still looks like the
    # exchange stage's — the solve/incremental stages below leave enough
    # live garbage to skew an allocation-sensitive comparison.
    strategy_series = _exchange_strategy_series(
        reduced.gav, instance, repeats, name
    )
    counts = {
        "source_facts": len(instance),
        "chased_facts": len(data.chased),
        "groundings": len(data.groundings),
        "violations": len(data.violations),
        "clusters": len(analysis.clusters),
        "suspect_source_facts": len(analysis.suspect_source),
    }

    query_runs: list[dict[str, float]] = []
    answers: dict[str, int] = {}
    programs_solved = 0
    for _ in range(max(1, repeats)):
        # A fresh engine per repeat, seeded with the measured exchange
        # artifacts (caches off: program build and solving must actually
        # run — a warm cache would measure dictionary lookups instead).
        engine = SegmentaryEngine(reduced, instance, cache=False, obs=obs)
        engine.data = data
        engine.analysis = analysis
        run = {"program_build": 0.0, "solve": 0.0, "query_total": 0.0}
        programs_solved = 0
        for query_name in queries:
            result, stats = engine.answer_with_stats(query_by_name(query_name))
            answers[query_name] = len(result)
            run["program_build"] += stats.build_seconds
            run["solve"] += stats.solve_seconds
            run["query_total"] += stats.seconds
            programs_solved += stats.programs_solved
        engine.close()
        query_runs.append(run)

    # Solve-strategy series (PR 8): re-run the query phase under the
    # legacy per-signature strategy so every BENCH_*.json artifact carries
    # the per-strategy solve comparison.  The loop above measured the
    # default (incremental) strategy; answers must agree exactly.
    legacy_solve_runs: list[float] = []
    for _ in range(max(1, repeats)):
        engine = SegmentaryEngine(
            reduced, instance, cache=False, obs=obs,
            solve_strategy="per-signature",
        )
        engine.data = data
        engine.analysis = analysis
        legacy_solve = 0.0
        for query_name in queries:
            result, stats = engine.answer_with_stats(query_by_name(query_name))
            assert len(result) == answers[query_name], (
                f"solve-strategy answer mismatch on {name}/{query_name}"
            )
            legacy_solve += stats.solve_seconds
        engine.close()
        legacy_solve_runs.append(legacy_solve)

    # Stage labels come from the timing dicts themselves (a hardcoded
    # label tuple silently zeroed any stage the exchange pipeline renamed
    # or added after it was written).
    stages = _stage_labels(exchange_runs)
    exchange_medians = {
        key: _median([run.get(key, 0.0) for run in exchange_runs])
        for key in stages
    }
    query_medians = {
        key: _median([run[key] for run in query_runs])
        for key in ("program_build", "solve", "query_total")
    }
    incremental_solve = query_medians["solve"]
    per_signature_solve = _median(legacy_solve_runs)
    solve_strategies = {
        "incremental": round(incremental_solve, 6),
        "per_signature": round(per_signature_solve, 6),
        "speedup": (
            round(per_signature_solve / incremental_solve, 2)
            if incremental_solve > 0
            else float("inf")
        ),
    }

    # Incremental stage: a fresh engine + update session per repeat (the
    # session mutates the exchange state in place, so the measured
    # artifacts above are not reused), timing a single-tuple retract and
    # its re-insert.  A suspect fact is the worst case — it touches a
    # cluster and forces envelope recomputation and cache invalidation.
    from repro.incremental import Delta

    delta_runs: list[float] = []
    for _ in range(max(1, repeats)):
        engine = SegmentaryEngine(reduced, instance.copy(), cache=False, obs=obs)
        session = engine.update_session()
        suspects = sorted(engine.analysis.suspect_source, key=repr)
        target = suspects[0] if suspects else sorted(instance, key=repr)[0]
        started = time.perf_counter()
        session.apply(Delta(retracts=frozenset({target})))
        session.apply(Delta(inserts=frozenset({target})))
        delta_runs.append((time.perf_counter() - started) / 2)
        engine.close()
    single_delta = _median(delta_runs)
    incremental = {
        "single_delta": single_delta,
        "full_exchange": exchange_medians["total"],
        "speedup": (
            round(exchange_medians["total"] / single_delta, 2)
            if single_delta > 0
            else float("inf")
        ),
    }

    return {
        "profile": {
            "name": name,
            "transcripts": profile.transcripts,
            "suspect_rate": profile.suspect_fraction,
        },
        "meta": {
            "scenario_family": "genomics",
            "exchange_strategy": exchange_strategy,
            "stages": stages,
        },
        "counts": counts,
        "exchange_s": exchange_medians,
        "exchange_strategy_s": strategy_series,
        "query_s": query_medians,
        "solve_strategy_s": solve_strategies,
        "incremental_s": incremental,
        "programs_solved": programs_solved,
        "answers": answers,
    }


def run_tpch_micro_scenario(
    name: str,
    repeats: int = 3,
    obs: Recorder | None = None,
    exchange_strategy: str = "batch",
) -> dict:
    """Measure one TPC-H grid cell (``"tpch-sf0.01-r0.2"``).

    TPC-H rows carry the exchange stage and the batch-vs-tuple
    ``exchange_strategy_s`` series; the query/solve/incremental stages
    are genomics-specific and absent here (consumers must treat them as
    optional — :func:`format_micro_table` and :func:`compare_payloads`
    do).
    """
    scale, ratio = parse_tpch_name(name)
    scenario = tpch_scenario(scale, ratio, seed=0)
    reduced = reduce_mapping(scenario.mapping)
    instance = scenario.instance

    exchange_runs, data, analysis = _measure_exchange(
        reduced.gav, instance, repeats, obs, exchange_strategy
    )
    stages = _stage_labels(exchange_runs)
    exchange_medians = {
        key: _median([run.get(key, 0.0) for run in exchange_runs])
        for key in stages
    }
    return {
        "profile": {
            "name": name,
            "scale": scale,
            "ratio": ratio,
            "seed": scenario.seed,
        },
        "meta": {
            "scenario_family": "tpch",
            "exchange_strategy": exchange_strategy,
            "stages": stages,
        },
        "counts": {
            "source_facts": len(instance),
            "injected_facts": len(scenario.injected),
            "chased_facts": len(data.chased),
            "groundings": len(data.groundings),
            "violations": len(data.violations),
            "clusters": len(analysis.clusters),
            "suspect_source_facts": len(analysis.suspect_source),
        },
        "exchange_s": exchange_medians,
        "exchange_strategy_s": _exchange_strategy_series(
            reduced.gav, instance, repeats, name
        ),
    }


def run_micro(
    scenarios: list[str] | None = None,
    repeats: int = 3,
    queries: tuple[str, ...] = MICRO_QUERIES,
    log: Callable[[str], None] | None = None,
    obs: Recorder | None = None,
    exchange_strategy: str = "batch",
) -> dict:
    """Run the micro-benchmark grid and return the artifact payload."""
    if scenarios is None:
        scenarios = micro_scenario_names()
    reduced = reduce_mapping(genome_mapping())
    results: dict[str, dict] = {}
    for name in scenarios:
        started = time.perf_counter()
        if name.startswith("tpch-"):
            results[name] = run_tpch_micro_scenario(
                name, repeats=repeats, obs=obs,
                exchange_strategy=exchange_strategy,
            )
        else:
            results[name] = run_micro_scenario(
                name, reduced=reduced, repeats=repeats, queries=queries,
                obs=obs, exchange_strategy=exchange_strategy,
            )
        if log is not None:
            row = results[name]
            parts = [f"exchange {row['exchange_s']['total']:.3f}s"]
            query_s = row.get("query_s")
            if query_s is not None:
                parts.append(f"program-build {query_s['program_build']:.3f}s")
                parts.append(f"solve {query_s['solve']:.3f}s")
            strategy_s = row.get("exchange_strategy_s")
            if strategy_s is not None:
                parts.append(f"batch/tuple {strategy_s['speedup']:.2f}x")
            log(
                f"{name:>4}: " + "  ".join(parts)
                + f"  ({time.perf_counter() - started:.1f}s wall)"
            )
    return {
        "kind": "repro-micro-benchmark",
        "repeats": repeats,
        "queries": list(queries),
        "exchange_strategy": exchange_strategy,
        "scenarios": results,
    }


def format_micro_table(payload: dict) -> str:
    """Render a micro-benchmark payload as an aligned table."""
    rows = []
    for name, row in payload["scenarios"].items():
        incremental = row.get("incremental_s")  # absent in pre-PR7 payloads
        strategies = row.get("solve_strategy_s")  # absent in pre-PR8 payloads
        exchange_strategies = row.get("exchange_strategy_s")  # pre-PR10
        query_s = row.get("query_s")  # absent on TPC-H rows
        rows.append(
            [
                name,
                row["counts"]["source_facts"],
                row["counts"]["groundings"],
                row["counts"]["suspect_source_facts"],
                f"{row['exchange_s']['total']:.3f}",
                f"{exchange_strategies['speedup']:.1f}x"
                if exchange_strategies else "-",
                f"{query_s['program_build']:.3f}" if query_s else "-",
                f"{query_s['solve']:.3f}" if query_s else "-",
                f"{strategies['speedup']:.1f}x" if strategies else "-",
                f"{incremental['single_delta']:.4f}" if incremental else "-",
                f"{incremental['speedup']:.1f}x" if incremental else "-",
            ]
        )
    return format_table(
        ["scenario", "facts", "groundings", "suspects",
         "exchange[s]", "batch", "build[s]", "solve[s]", "strategy",
         "1-delta[s]", "incr"],
        rows,
        title=f"micro-benchmark medians over {payload['repeats']} repeat(s)",
    )


def compare_payloads(before: dict, after: dict) -> dict:
    """Per-scenario speedups (before/after, >1 = faster) for the stages
    the acceptance criteria track."""
    speedups: dict[str, dict[str, float]] = {}
    for name, after_row in after["scenarios"].items():
        before_row = before["scenarios"].get(name)
        if before_row is None:
            continue
        entry: dict[str, float] = {}
        pairs = [
            ("exchange", before_row["exchange_s"]["total"],
             after_row["exchange_s"]["total"]),
        ]
        before_query = before_row.get("query_s")
        after_query = after_row.get("query_s")
        if before_query is not None and after_query is not None:
            pairs.extend([
                ("program_build", before_query["program_build"],
                 after_query["program_build"]),
                ("solve", before_query["solve"], after_query["solve"]),
                (
                    "exchange_plus_build",
                    before_row["exchange_s"]["total"]
                    + before_query["program_build"],
                    after_row["exchange_s"]["total"]
                    + after_query["program_build"],
                ),
            ])
        for stage, before_s, after_s in pairs:
            entry[stage] = round(before_s / after_s, 3) if after_s > 0 else float("inf")
        speedups[name] = entry
    return speedups
