"""Micro-benchmarks for the deterministic hot paths.

Three measured stages, per genomics scenario (size × suspect rate):

- **exchange build** — the query-independent exchange phase, split into
  chase / grounding enumeration / violation detection / index construction
  (:func:`~repro.xr.exchange.build_exchange_data` stage timings) plus the
  envelope analysis (:func:`~repro.xr.envelope.analyze_envelopes`);
- **program build** — per-signature program construction in the query
  phase (``QueryPhaseStats.build_seconds`` over a fixed query subset,
  caches disabled so construction is actually exercised);
- **solve** — stable-model solving of the built programs
  (``QueryPhaseStats.solve_seconds``), measured under **both** solve
  strategies: the default incremental family path and the legacy
  per-signature reference path, with the per-strategy medians and their
  ratio emitted as the ``solve_strategy_s`` series (the PR 8 solve-phase
  trajectory; ``repro bench --ab solve`` is the focused harness);
- **incremental** — one single-tuple delta (retract + re-insert of a
  suspect source fact, the cluster-touching worst case) applied through
  :class:`~repro.incremental.UpdateSession`, against the full re-exchange
  baseline; the reported ``speedup`` is the PR 7 acceptance number.

The paper's practicality claim (§5–§6) rests on the first two stages
being PTIME-cheap so the NP-hard solving dominates; these benchmarks
watch exactly that split.  Scenarios are the S/M/L genomics sizes crossed
with the paper's 0/3/9/20 % suspect rates.  Each stage reports the
*median* over ``repeats`` fresh runs (medians are robust to one-off
scheduler noise; the paper reports medians too).

``python -m repro bench --micro`` runs this and can emit a JSON artifact
via :func:`repro.bench.reporting.write_benchmark_json`; the committed
``BENCH_PR3.json`` pairs one pre-optimization artifact with one
post-optimization artifact (see ``benchmarks/README.md``).
"""

from __future__ import annotations

import statistics
import time
from typing import Callable

from repro.bench.reporting import format_table
from repro.genomics.instances import InstanceProfile, build_instance
from repro.genomics.queries import query_by_name
from repro.genomics.schema import genome_mapping
from repro.obs.recorder import Recorder
from repro.reduction.reduce import ReducedMapping, reduce_mapping
from repro.xr.envelope import analyze_envelopes
from repro.xr.exchange import build_exchange_data
from repro.xr.segmentary import SegmentaryEngine

#: Transcript counts of the micro-benchmark size steps (matching the
#: S3/M3/L3 profiles of :mod:`repro.genomics.instances`).
MICRO_SIZES: dict[str, int] = {"S": 18, "M": 40, "L": 100}

#: Suspect rates of the paper's Figure 3/4 sweep.
MICRO_RATES: tuple[float, ...] = (0.0, 0.03, 0.09, 0.20)

#: Query subset exercised by the query-phase stages: a source-source join
#: (ep2), a projection over the biggest target relation (xr2), and a
#: self-join (xr4).  Small enough to keep the benchmark runnable at L,
#: varied enough to build programs of every signature shape.
MICRO_QUERIES: tuple[str, ...] = ("ep2", "xr2", "xr4")


def micro_scenario_names(
    sizes: dict[str, int] | None = None,
    rates: tuple[float, ...] | None = None,
) -> list[str]:
    """The default scenario grid, e.g. ``["S0", "S3", ..., "L20"]``."""
    sizes = MICRO_SIZES if sizes is None else sizes
    rates = MICRO_RATES if rates is None else rates
    return [
        f"{size}{int(round(rate * 100))}" for size in sizes for rate in rates
    ]


def parse_scenario_name(name: str) -> InstanceProfile:
    """Turn ``"M9"`` into the matching :class:`InstanceProfile`."""
    size = name[0].upper()
    if size not in MICRO_SIZES:
        raise ValueError(f"unknown size {size!r}; choose from {sorted(MICRO_SIZES)}")
    try:
        rate = int(name[1:]) / 100.0
    except ValueError:
        raise ValueError(f"bad scenario name {name!r}; expected e.g. 'M9'") from None
    return InstanceProfile(name, MICRO_SIZES[size], rate)


def _median(values: list[float]) -> float:
    return statistics.median(values) if values else 0.0


def run_micro_scenario(
    name: str,
    reduced: ReducedMapping | None = None,
    repeats: int = 3,
    queries: tuple[str, ...] = MICRO_QUERIES,
    obs: Recorder | None = None,
) -> dict:
    """Measure one scenario; returns the per-stage median timing payload.

    With a live ``obs`` recorder the run is *traced* — per-phase spans and
    work counters are recorded alongside the timings, at the cost of
    instrumentation overhead.  Traced numbers are for drill-down, not for
    timing baselines (EXPERIMENTS.md).
    """
    profile = parse_scenario_name(name)
    if reduced is None:
        reduced = reduce_mapping(genome_mapping())
    instance = build_instance(profile).instance

    exchange_runs: list[dict[str, float]] = []
    counts: dict[str, int] = {}
    data = None
    analysis = None
    for _ in range(max(1, repeats)):
        timings: dict[str, float] = {}
        started = time.perf_counter()
        data = build_exchange_data(reduced.gav, instance, timings=timings, obs=obs)
        built_at = time.perf_counter()
        analysis = analyze_envelopes(data)
        done = time.perf_counter()
        timings["envelope"] = done - built_at
        timings["total"] = done - started
        timings["build_total"] = built_at - started
        exchange_runs.append(timings)
    assert data is not None and analysis is not None
    counts = {
        "source_facts": len(instance),
        "chased_facts": len(data.chased),
        "groundings": len(data.groundings),
        "violations": len(data.violations),
        "clusters": len(analysis.clusters),
        "suspect_source_facts": len(analysis.suspect_source),
    }

    query_runs: list[dict[str, float]] = []
    answers: dict[str, int] = {}
    programs_solved = 0
    for _ in range(max(1, repeats)):
        # A fresh engine per repeat, seeded with the measured exchange
        # artifacts (caches off: program build and solving must actually
        # run — a warm cache would measure dictionary lookups instead).
        engine = SegmentaryEngine(reduced, instance, cache=False, obs=obs)
        engine.data = data
        engine.analysis = analysis
        run = {"program_build": 0.0, "solve": 0.0, "query_total": 0.0}
        programs_solved = 0
        for query_name in queries:
            result, stats = engine.answer_with_stats(query_by_name(query_name))
            answers[query_name] = len(result)
            run["program_build"] += stats.build_seconds
            run["solve"] += stats.solve_seconds
            run["query_total"] += stats.seconds
            programs_solved += stats.programs_solved
        engine.close()
        query_runs.append(run)

    # Solve-strategy series (PR 8): re-run the query phase under the
    # legacy per-signature strategy so every BENCH_*.json artifact carries
    # the per-strategy solve comparison.  The loop above measured the
    # default (incremental) strategy; answers must agree exactly.
    legacy_solve_runs: list[float] = []
    for _ in range(max(1, repeats)):
        engine = SegmentaryEngine(
            reduced, instance, cache=False, obs=obs,
            solve_strategy="per-signature",
        )
        engine.data = data
        engine.analysis = analysis
        legacy_solve = 0.0
        for query_name in queries:
            result, stats = engine.answer_with_stats(query_by_name(query_name))
            assert len(result) == answers[query_name], (
                f"solve-strategy answer mismatch on {name}/{query_name}"
            )
            legacy_solve += stats.solve_seconds
        engine.close()
        legacy_solve_runs.append(legacy_solve)

    exchange_medians = {
        key: _median([run.get(key, 0.0) for run in exchange_runs])
        for key in ("chase", "groundings", "violations", "index",
                    "envelope", "build_total", "total")
    }
    query_medians = {
        key: _median([run[key] for run in query_runs])
        for key in ("program_build", "solve", "query_total")
    }
    incremental_solve = query_medians["solve"]
    per_signature_solve = _median(legacy_solve_runs)
    solve_strategies = {
        "incremental": round(incremental_solve, 6),
        "per_signature": round(per_signature_solve, 6),
        "speedup": (
            round(per_signature_solve / incremental_solve, 2)
            if incremental_solve > 0
            else float("inf")
        ),
    }

    # Incremental stage: a fresh engine + update session per repeat (the
    # session mutates the exchange state in place, so the measured
    # artifacts above are not reused), timing a single-tuple retract and
    # its re-insert.  A suspect fact is the worst case — it touches a
    # cluster and forces envelope recomputation and cache invalidation.
    from repro.incremental import Delta

    delta_runs: list[float] = []
    for _ in range(max(1, repeats)):
        engine = SegmentaryEngine(reduced, instance.copy(), cache=False, obs=obs)
        session = engine.update_session()
        suspects = sorted(engine.analysis.suspect_source, key=repr)
        target = suspects[0] if suspects else sorted(instance, key=repr)[0]
        started = time.perf_counter()
        session.apply(Delta(retracts=frozenset({target})))
        session.apply(Delta(inserts=frozenset({target})))
        delta_runs.append((time.perf_counter() - started) / 2)
        engine.close()
    single_delta = _median(delta_runs)
    incremental = {
        "single_delta": single_delta,
        "full_exchange": exchange_medians["total"],
        "speedup": (
            round(exchange_medians["total"] / single_delta, 2)
            if single_delta > 0
            else float("inf")
        ),
    }

    return {
        "profile": {
            "name": name,
            "transcripts": profile.transcripts,
            "suspect_rate": profile.suspect_fraction,
        },
        "counts": counts,
        "exchange_s": exchange_medians,
        "query_s": query_medians,
        "solve_strategy_s": solve_strategies,
        "incremental_s": incremental,
        "programs_solved": programs_solved,
        "answers": answers,
    }


def run_micro(
    scenarios: list[str] | None = None,
    repeats: int = 3,
    queries: tuple[str, ...] = MICRO_QUERIES,
    log: Callable[[str], None] | None = None,
    obs: Recorder | None = None,
) -> dict:
    """Run the micro-benchmark grid and return the artifact payload."""
    if scenarios is None:
        scenarios = micro_scenario_names()
    reduced = reduce_mapping(genome_mapping())
    results: dict[str, dict] = {}
    for name in scenarios:
        started = time.perf_counter()
        results[name] = run_micro_scenario(
            name, reduced=reduced, repeats=repeats, queries=queries, obs=obs
        )
        if log is not None:
            row = results[name]
            log(
                f"{name:>4}: exchange {row['exchange_s']['total']:.3f}s  "
                f"program-build {row['query_s']['program_build']:.3f}s  "
                f"solve {row['query_s']['solve']:.3f}s  "
                f"({time.perf_counter() - started:.1f}s wall)"
            )
    return {
        "kind": "repro-micro-benchmark",
        "repeats": repeats,
        "queries": list(queries),
        "scenarios": results,
    }


def format_micro_table(payload: dict) -> str:
    """Render a micro-benchmark payload as an aligned table."""
    rows = []
    for name, row in payload["scenarios"].items():
        incremental = row.get("incremental_s")  # absent in pre-PR7 payloads
        strategies = row.get("solve_strategy_s")  # absent in pre-PR8 payloads
        rows.append(
            [
                name,
                row["counts"]["source_facts"],
                row["counts"]["groundings"],
                row["counts"]["suspect_source_facts"],
                f"{row['exchange_s']['total']:.3f}",
                f"{row['query_s']['program_build']:.3f}",
                f"{row['query_s']['solve']:.3f}",
                f"{strategies['speedup']:.1f}x" if strategies else "-",
                f"{incremental['single_delta']:.4f}" if incremental else "-",
                f"{incremental['speedup']:.1f}x" if incremental else "-",
            ]
        )
    return format_table(
        ["scenario", "facts", "groundings", "suspects",
         "exchange[s]", "build[s]", "solve[s]", "strategy",
         "1-delta[s]", "incr"],
        rows,
        title=f"micro-benchmark medians over {payload['repeats']} repeat(s)",
    )


def compare_payloads(before: dict, after: dict) -> dict:
    """Per-scenario speedups (before/after, >1 = faster) for the stages
    the acceptance criteria track."""
    speedups: dict[str, dict[str, float]] = {}
    for name, after_row in after["scenarios"].items():
        before_row = before["scenarios"].get(name)
        if before_row is None:
            continue
        entry: dict[str, float] = {}
        pairs = [
            ("exchange", before_row["exchange_s"]["total"],
             after_row["exchange_s"]["total"]),
            ("program_build", before_row["query_s"]["program_build"],
             after_row["query_s"]["program_build"]),
            ("solve", before_row["query_s"]["solve"],
             after_row["query_s"]["solve"]),
            (
                "exchange_plus_build",
                before_row["exchange_s"]["total"]
                + before_row["query_s"]["program_build"],
                after_row["exchange_s"]["total"]
                + after_row["query_s"]["program_build"],
            ),
        ]
        for stage, before_s, after_s in pairs:
            entry[stage] = round(before_s / after_s, 3) if after_s > 0 else float("inf")
        speedups[name] = entry
    return speedups
