"""A/B benchmark: per-signature vs incremental-family solve strategies.

``python -m repro bench --ab solve`` runs both solve strategies of
:class:`~repro.xr.segmentary.SegmentaryEngine` over the M/L genomics
grid under identical conditions — same exchange artifacts, same query
subset, same budgets — and reports per-scenario and aggregate solve-phase
speedups.  The per-signature strategy is the *reference implementation*:
simple, per-group engines with no clause reuse, kept as the ground truth
the differential fuzzer checks the incremental path against.  The
incremental strategy merges each cluster family onto one
:class:`~repro.asp.stable.StableModelEngine` (compact generator
encoding, selector-guarded steering, learned-clause carryover).

Method notes (EXPERIMENTS.md has the full write-up):

- The exchange phase runs **once** per scenario and both strategies are
  seeded with the same artifacts, so only the query phase differs.
- Answers are compared for equality on every run; a mismatch raises —
  a speedup over wrong answers is not a speedup.
- Per-strategy numbers are the **best of** ``repeats`` runs, not the
  median: the quantity of interest is the cost of the work itself, and
  the minimum is the standard robust estimator for that under one-sided
  scheduler noise.  The aggregate is Σ per-signature solve seconds over
  Σ incremental solve seconds across the scenario's query subset.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.bench.micro import parse_scenario_name
from repro.bench.reporting import format_table
from repro.genomics.instances import build_instance
from repro.genomics.queries import query_by_name
from repro.genomics.schema import genome_mapping
from repro.reduction.reduce import ReducedMapping, reduce_mapping
from repro.xr.envelope import analyze_envelopes
from repro.xr.exchange import build_exchange_data
from repro.xr.segmentary import SegmentaryEngine

#: Default scenario grid for the solve A/B: the M/L sizes at the paper's
#: ≥10 % suspect rates, where solving dominates query latency and the
#: acceptance criteria live.  (S scenarios and rate-0 scenarios solve in
#: microseconds; their A/B ratio is timer noise.)
AB_SCENARIOS: tuple[str, ...] = ("M10", "M20", "L10", "L20")

#: Query subset: the signature-heavy pair of the micro grid.  ``xr4``
#: is omitted because it grounds to zero signatures on the genomics
#: schema — both strategies solve nothing.
AB_QUERIES: tuple[str, ...] = ("ep2", "xr2")

STRATEGIES: tuple[str, ...] = ("per-signature", "incremental")


def _measure_strategy(
    reduced: ReducedMapping,
    instance,
    data,
    analysis,
    strategy: str,
    queries: tuple[str, ...],
) -> tuple[dict[str, float], dict[str, frozenset]]:
    """One cold run of every query under ``strategy``.

    Returns per-stage seconds and the answer sets (for cross-strategy
    equality checking).  A fresh engine per query keeps runs cold: no
    cache, no warm solver state crossing query boundaries.
    """
    seconds = {"solve": 0.0, "build": 0.0, "total": 0.0}
    answers: dict[str, frozenset] = {}
    for name in queries:
        with SegmentaryEngine(
            reduced, instance, cache=False, solve_strategy=strategy
        ) as engine:
            engine.data = data
            engine.analysis = analysis
            result, stats = engine.answer_with_stats(query_by_name(name))
        seconds["solve"] += stats.solve_seconds
        seconds["build"] += stats.build_seconds
        seconds["total"] += stats.seconds
        answers[name] = result
    return seconds, answers


def run_solve_ab(
    scenarios: list[str] | None = None,
    repeats: int = 3,
    queries: tuple[str, ...] = AB_QUERIES,
    log: Callable[[str], None] | None = None,
) -> dict:
    """Run the solve-strategy A/B and return the artifact payload.

    Per scenario the payload records, for each strategy, the best-of-
    ``repeats`` solve/build/total seconds, plus the solve-phase speedup
    (per-signature / incremental, >1 = incremental faster) and the answer
    sizes.  ``answers_identical`` is asserted per run and recorded.
    """
    if scenarios is None:
        scenarios = list(AB_SCENARIOS)
    reduced = reduce_mapping(genome_mapping())
    results: dict[str, dict] = {}
    agg = {name: 0.0 for name in STRATEGIES}
    for scenario in scenarios:
        started = time.perf_counter()
        profile = parse_scenario_name(scenario)
        instance = build_instance(profile).instance
        data = build_exchange_data(reduced.gav, instance)
        analysis = analyze_envelopes(data)

        best: dict[str, dict[str, float]] = {}
        reference_answers = None
        for _ in range(max(1, repeats)):
            for strategy in STRATEGIES:
                seconds, answers = _measure_strategy(
                    reduced, instance, data, analysis, strategy, queries
                )
                if reference_answers is None:
                    reference_answers = answers
                elif answers != reference_answers:
                    raise AssertionError(
                        f"answer mismatch on {scenario} under {strategy}: "
                        f"{ {q: len(a) for q, a in answers.items()} } vs "
                        f"{ {q: len(a) for q, a in reference_answers.items()} }"
                    )
                slot = best.setdefault(strategy, dict(seconds))
                for key, value in seconds.items():
                    slot[key] = min(slot[key], value)
        assert reference_answers is not None
        for strategy in STRATEGIES:
            agg[strategy] += best[strategy]["solve"]
        incremental_solve = best["incremental"]["solve"]
        speedup = (
            round(best["per-signature"]["solve"] / incremental_solve, 2)
            if incremental_solve > 0
            else float("inf")
        )
        results[scenario] = {
            "profile": {
                "name": scenario,
                "transcripts": profile.transcripts,
                "suspect_rate": profile.suspect_fraction,
            },
            "strategies": {name: best[name] for name in STRATEGIES},
            "solve_speedup": speedup,
            "answers": {q: len(a) for q, a in reference_answers.items()},
            "answers_identical": True,
        }
        if log is not None:
            log(
                f"{scenario:>4}: per-signature "
                f"{best['per-signature']['solve']:.3f}s  incremental "
                f"{incremental_solve:.3f}s  speedup {speedup:.2f}x  "
                f"({time.perf_counter() - started:.1f}s wall)"
            )
    aggregate = (
        round(agg["per-signature"] / agg["incremental"], 2)
        if agg["incremental"] > 0
        else float("inf")
    )
    return {
        "kind": "repro-solve-ab",
        "repeats": repeats,
        "queries": list(queries),
        "scenarios": results,
        "aggregate": {
            "per_signature_solve_s": round(agg["per-signature"], 4),
            "incremental_solve_s": round(agg["incremental"], 4),
            "solve_speedup": aggregate,
        },
    }


def format_ab_table(payload: dict) -> str:
    """Render a solve-A/B payload as an aligned table."""
    rows = []
    for name, row in payload["scenarios"].items():
        strategies = row["strategies"]
        rows.append(
            [
                name,
                f"{row['profile']['suspect_rate']:.0%}",
                f"{strategies['per-signature']['solve']:.3f}",
                f"{strategies['incremental']['solve']:.3f}",
                f"{row['solve_speedup']:.2f}x",
                "yes" if row["answers_identical"] else "NO",
            ]
        )
    aggregate = payload["aggregate"]
    rows.append(
        [
            "Σ",
            "",
            f"{aggregate['per_signature_solve_s']:.3f}",
            f"{aggregate['incremental_solve_s']:.3f}",
            f"{aggregate['solve_speedup']:.2f}x",
            "",
        ]
    )
    return format_table(
        ["scenario", "suspects", "per-sig[s]", "incr[s]", "speedup", "same"],
        rows,
        title=(
            f"solve-strategy A/B, best of {payload['repeats']} repeat(s) "
            f"over {','.join(payload['queries'])}"
        ),
    )
