"""Homomorphisms between instances.

A homomorphism ``h`` from instance ``I`` to instance ``I'`` maps the active
domain of ``I`` to that of ``I'``, is the identity on constants, and maps
every fact of ``I`` to a fact of ``I'``.  Universal solutions are exactly
the solutions that admit a homomorphism into every solution; the test suite
uses this module to validate the chase.
"""

from __future__ import annotations

from typing import Any

from repro.relational.instance import Fact, Instance
from repro.relational.terms import is_constant_value


def find_homomorphism(
    source: Instance, target: Instance
) -> dict[Any, Any] | None:
    """Find a homomorphism from ``source`` into ``target``, or ``None``.

    Backtracking search over the facts of ``source``, most-constrained
    (fewest candidate images) first.
    """
    facts = sorted(
        source,
        key=lambda f: len(target.facts_of(f.relation)),
    )
    mapping: dict[Any, Any] = {}

    def candidates(fact: Fact) -> list[Fact]:
        # Probe the target index with the most selective determined position.
        for pos, value in enumerate(fact.args):
            if is_constant_value(value):
                return target.lookup(fact.relation, pos, value)
            if value in mapping:
                return target.lookup(fact.relation, pos, mapping[value])
        return list(target.facts_of(fact.relation))

    def extend(index: int) -> bool:
        if index == len(facts):
            return True
        fact = facts[index]
        for image in candidates(fact):
            if len(image.args) != len(fact.args):
                continue
            added: list[Any] = []
            ok = True
            for value, image_value in zip(fact.args, image.args):
                if is_constant_value(value):
                    if value != image_value:
                        ok = False
                        break
                elif value in mapping:
                    if mapping[value] != image_value:
                        ok = False
                        break
                else:
                    mapping[value] = image_value
                    added.append(value)
            if ok and extend(index + 1):
                return True
            for value in added:
                del mapping[value]
        return False

    if extend(0):
        # Fill in identity on constants for completeness of the returned map.
        for value in source.active_domain():
            if is_constant_value(value):
                mapping.setdefault(value, value)
        return mapping
    return None


def is_homomorphic_to(source: Instance, target: Instance) -> bool:
    """True if there is a homomorphism from ``source`` into ``target``."""
    return find_homomorphism(source, target) is not None
