"""Facts and instances.

An instance is identified with its (finite) set of facts, per Section 2 of
the paper.  The implementation keeps a per-relation extension plus lazily
built hash indexes on ``(relation, position)`` so that the chase, the query
evaluator, and the grounder can all perform index nested-loop joins.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator

from repro.relational.terms import is_null_value


class Fact:
    """A fact ``R(a1, ..., ak)``: a relation name and a tuple of values.

    Values are raw Python objects (see :mod:`repro.relational.terms`):
    constants are plain hashables, nulls are :class:`~repro.relational.terms.Null`,
    skolem values are :class:`~repro.relational.terms.SkolemValue`.
    """

    __slots__ = ("relation", "args", "_hash")

    def __init__(self, relation: str, args: Iterable[Hashable]):
        self.relation = relation
        self.args = tuple(args)
        self._hash = hash((relation, self.args))

    def __repr__(self) -> str:
        inner = ",".join(repr(a) for a in self.args)
        return f"{self.relation}({inner})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Fact)
            and self._hash == other._hash
            and self.relation == other.relation
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Rebuild through __init__ so _hash is recomputed on unpickle:
        # str hashes are salted per interpreter, so a pickled hash would be
        # stale in a spawn-started worker process.
        return (Fact, (self.relation, self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    def has_nulls(self) -> bool:
        """True if any argument is a labelled null or skolem value."""
        return any(is_null_value(a) for a in self.args)


class Instance:
    """A finite database instance: a set of facts with join indexes.

    Supports the set-of-facts view used throughout the paper (sub-instances
    are subsets, restriction keeps only some relations) and provides indexed
    lookups for evaluation:

    - ``facts_of(R)`` — the extension of relation ``R``;
    - ``lookup(R, pos, value)`` — all ``R``-facts with ``value`` at ``pos``.

    Indexes are built lazily on first use and invalidated on mutation of the
    corresponding relation.
    """

    __slots__ = ("_extensions", "_indexes", "_size")

    def __init__(self, facts: Iterable[Fact] = ()):
        self._extensions: dict[str, set[Fact]] = {}
        # (relation, position) -> value -> list[Fact]
        self._indexes: dict[tuple[str, int], dict[Any, list[Fact]]] = {}
        self._size = 0
        for fact in facts:
            self.add(fact)

    # ------------------------------------------------------------- mutation

    def add(self, fact: Fact) -> bool:
        """Add a fact; returns True if it was not already present."""
        ext = self._extensions.get(fact.relation)
        if ext is None:
            ext = set()
            self._extensions[fact.relation] = ext
        if fact in ext:
            return False
        ext.add(fact)
        self._size += 1
        for pos in range(len(fact.args)):
            index = self._indexes.get((fact.relation, pos))
            if index is not None:
                index.setdefault(fact.args[pos], []).append(fact)
        return True

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Add many facts; returns the number actually added."""
        return sum(1 for fact in facts if self.add(fact))

    def discard(self, fact: Fact) -> bool:
        """Remove a fact if present; returns True if it was present."""
        ext = self._extensions.get(fact.relation)
        if ext is None or fact not in ext:
            return False
        ext.remove(fact)
        self._size -= 1
        # Drop affected indexes rather than surgically removing entries.
        for pos in range(len(fact.args)):
            self._indexes.pop((fact.relation, pos), None)
        return True

    # -------------------------------------------------------------- queries

    def __contains__(self, fact: Fact) -> bool:
        ext = self._extensions.get(fact.relation)
        return ext is not None and fact in ext

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Fact]:
        for ext in self._extensions.values():
            yield from ext

    def __bool__(self) -> bool:
        return self._size > 0

    def facts_of(self, relation: str) -> set[Fact]:
        """The extension of ``relation`` (a live set; do not mutate)."""
        return self._extensions.get(relation, set())

    def relations(self) -> set[str]:
        """Names of relations with at least one fact."""
        return {name for name, ext in self._extensions.items() if ext}

    def lookup(self, relation: str, position: int, value: Any) -> list[Fact]:
        """All facts of ``relation`` with ``value`` at ``position`` (indexed)."""
        key = (relation, position)
        index = self._indexes.get(key)
        if index is None:
            index = {}
            for fact in self._extensions.get(relation, ()):
                index.setdefault(fact.args[position], []).append(fact)
            self._indexes[key] = index
        return index.get(value, [])

    def active_domain(self) -> set[Any]:
        """All values occurring in facts of this instance."""
        domain: set[Any] = set()
        for fact in self:
            domain.update(fact.args)
        return domain

    # ------------------------------------------------------ set-like algebra

    def copy(self) -> "Instance":
        return Instance(self)

    def restrict(self, relation_names: Iterable[str]) -> "Instance":
        """The sub-instance containing only facts over the given relations."""
        wanted = set(relation_names)
        out = Instance()
        for name in wanted:
            out.add_all(self._extensions.get(name, ()))
        return out

    def union(self, other: "Instance") -> "Instance":
        out = self.copy()
        out.add_all(other)
        return out

    def difference(self, other: "Instance") -> "Instance":
        return Instance(fact for fact in self if fact not in other)

    def intersection(self, other: "Instance") -> "Instance":
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        return Instance(fact for fact in small if fact in large)

    def issubset(self, other: "Instance") -> bool:
        return all(fact in other for fact in self)

    def as_frozenset(self) -> frozenset[Fact]:
        return frozenset(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return len(self) == len(other) and self.issubset(other)

    def __repr__(self) -> str:
        if self._size <= 8:
            inner = ", ".join(sorted(repr(f) for f in self))
            return f"Instance({{{inner}}})"
        return f"Instance(<{self._size} facts over {len(self.relations())} relations>)"
