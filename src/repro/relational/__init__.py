"""Relational foundation: terms, schemas, facts, instances, and queries.

This subpackage provides the basic model-theoretic vocabulary used throughout
the library, following Section 2 ("Preliminaries") of the paper:

- values are drawn from two disjoint infinite sets, ``Const`` and ``Nulls``
  (plus *skolem terms*, which the GLAV-to-GAV reduction of Theorem 1 treats
  as constants);
- an instance is a finite set of facts over a schema;
- conjunctive queries and unions of conjunctive queries are evaluated with an
  index-backed backtracking join.
"""

from repro.relational.terms import (
    Const,
    Null,
    SkolemValue,
    Variable,
    fresh_null,
    is_constant_value,
    is_null_value,
    reset_null_counter,
)
from repro.relational.schema import RelationSymbol, Schema
from repro.relational.instance import Fact, Instance
from repro.relational.queries import (
    Atom,
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    evaluate,
    evaluate_constants_only,
)
from repro.relational.homomorphism import find_homomorphism, is_homomorphic_to

__all__ = [
    "Const",
    "Null",
    "SkolemValue",
    "Variable",
    "fresh_null",
    "is_constant_value",
    "is_null_value",
    "reset_null_counter",
    "RelationSymbol",
    "Schema",
    "Fact",
    "Instance",
    "Atom",
    "ConjunctiveQuery",
    "UnionOfConjunctiveQueries",
    "evaluate",
    "evaluate_constants_only",
    "find_homomorphism",
    "is_homomorphic_to",
]
