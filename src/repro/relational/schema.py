"""Schemas: finite sets of relation symbols with designated arities."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


class RelationSymbol:
    """A relation symbol with a name, an arity, and optional attribute names.

    Attribute names are purely documentation (they make the genomics schema
    readable); positional indices are what the engine uses.
    """

    __slots__ = ("name", "arity", "attributes")

    def __init__(
        self,
        name: str,
        arity: int,
        attributes: Sequence[str] | None = None,
    ):
        if arity < 0:
            raise ValueError(f"arity must be non-negative, got {arity}")
        if attributes is not None and len(attributes) != arity:
            raise ValueError(
                f"{name}: {len(attributes)} attribute names for arity {arity}"
            )
        self.name = name
        self.arity = arity
        self.attributes = tuple(attributes) if attributes is not None else None

    def __repr__(self) -> str:
        return f"{self.name}/{self.arity}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RelationSymbol)
            and self.name == other.name
            and self.arity == other.arity
        )

    def __hash__(self) -> int:
        return hash((self.name, self.arity))


class Schema:
    """A finite set of relation symbols, indexed by name."""

    __slots__ = ("_relations",)

    def __init__(self, relations: Iterable[RelationSymbol] = ()):
        self._relations: dict[str, RelationSymbol] = {}
        for rel in relations:
            self.add(rel)

    def add(self, relation: RelationSymbol) -> None:
        existing = self._relations.get(relation.name)
        if existing is not None and existing.arity != relation.arity:
            raise ValueError(
                f"relation {relation.name} redeclared with arity "
                f"{relation.arity} (was {existing.arity})"
            )
        self._relations[relation.name] = relation

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> RelationSymbol:
        return self._relations[name]

    def get(self, name: str) -> RelationSymbol | None:
        return self._relations.get(name)

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> set[str]:
        return set(self._relations)

    def arity(self, name: str) -> int:
        return self._relations[name].arity

    def union(self, other: "Schema") -> "Schema":
        """The union of two schemas; arities must agree on shared names."""
        merged = Schema(self)
        for rel in other:
            merged.add(rel)
        return merged

    def is_disjoint_from(self, other: "Schema") -> bool:
        return not (self.names() & other.names())

    def __repr__(self) -> str:
        rels = ", ".join(sorted(repr(r) for r in self))
        return f"Schema({rels})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self._relations == other._relations
