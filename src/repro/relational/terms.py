"""Terms and values.

The paper fixes two disjoint infinite sets: ``Const`` (constants) and
``Nulls`` (labelled nulls).  Instances range over ``Const ∪ Nulls``; source
instances contain no nulls.  Queries and dependencies additionally use
first-order *variables*.

This module represents all three, plus *skolem values* — ground terms of the
form ``f(v1, ..., vk)`` that the GLAV-to-GAV reduction (Theorem 1) uses to
stand for the labelled nulls created by the chase.  From the point of view of
a GAV chase, a skolem value behaves like an ordinary value (it can be joined
on and indexed), but like a null it can be equated with other values without
causing an equality-generating dependency to fail.

Design notes
------------
Values stored inside facts are plain Python objects:

- a constant is any hashable, non-``Null``/non-``SkolemValue`` object
  (typically ``str`` or ``int``);
- a null is a :class:`Null` instance;
- a skolem value is a :class:`SkolemValue` instance.

Representing constants as raw Python values keeps instances compact and fast
to hash, which matters for the chase and the grounder.  :class:`Const` exists
for contexts that need an explicit term object (query atoms, dependency
atoms), where a raw string would be ambiguous with a variable name.
"""

from __future__ import annotations

import itertools
from typing import Any, Hashable


class Variable:
    """A first-order variable, used in queries and dependencies.

    Variables are compared by name: two ``Variable("x")`` objects are equal.
    The hash is computed once: variables serve as binding-dict keys in the
    innermost loops of the chase and the grounder.
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        self.name = name
        self._hash = hash(("var", name))

    def __repr__(self) -> str:
        return f"?{self.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Rebuild through __init__ so _hash is recomputed on unpickle
        # (str hashes are salted per interpreter; see Fact.__reduce__).
        return (Variable, (self.name,))


class Const:
    """An explicit constant term wrapping a raw Python value.

    Used in atoms (query bodies, dependency bodies/heads) to distinguish the
    constant ``"a"`` from the variable ``a``.  Inside instances, the *raw*
    value is stored, not the wrapper.
    """

    __slots__ = ("value",)

    def __init__(self, value: Hashable):
        self.value = value

    def __repr__(self) -> str:
        return f"{self.value!r}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("const", self.value))


class Null:
    """A labelled null, created by the chase for existential variables.

    Nulls are compared by identity of their label.  Use :func:`fresh_null`
    to create a globally fresh one.
    """

    __slots__ = ("label", "_hash")

    def __init__(self, label: int | str):
        self.label = label
        self._hash = hash(("null", label))

    def __repr__(self) -> str:
        return f"N{self.label}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Null) and self.label == other.label

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Rebuild through __init__ so _hash is recomputed on unpickle.
        return (Null, (self.label,))


class SkolemValue:
    """A ground skolem term ``f(v1, ..., vk)``.

    Produced by the GLAV-to-GAV reduction: each existential variable ``y`` of
    a tgd ``σ`` gives rise to a skolem function ``f_{σ,y}`` applied to the
    frontier (universally quantified, exported) variables of ``σ``.  Skolem
    values are hashable and can be nested (weak acyclicity bounds the nesting
    depth).
    """

    __slots__ = ("function", "args", "_hash")

    def __init__(self, function: str, args: tuple[Any, ...]):
        self.function = function
        self.args = args
        self._hash = hash(("skolem", function, args))

    def __repr__(self) -> str:
        inner = ",".join(repr(a) for a in self.args)
        return f"{self.function}({inner})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SkolemValue)
            and self._hash == other._hash
            and self.function == other.function
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Rebuild through __init__ so _hash is recomputed on unpickle
        # (str hashes are salted per interpreter; see Fact.__reduce__).
        return (SkolemValue, (self.function, self.args))

    def depth(self) -> int:
        """Nesting depth of this skolem term (a flat term has depth 1)."""
        inner = 0
        for arg in self.args:
            if isinstance(arg, SkolemValue):
                inner = max(inner, arg.depth())
        return 1 + inner


_null_counter = itertools.count(1)


def fresh_null() -> Null:
    """Return a globally fresh labelled null."""
    return Null(next(_null_counter))


def reset_null_counter() -> None:
    """Reset the fresh-null counter (for reproducible tests only)."""
    global _null_counter
    _null_counter = itertools.count(1)


def is_null_value(value: Any) -> bool:
    """True if ``value`` is a labelled null or a skolem value.

    Both kinds of value may be equated with anything by an egd without
    causing a chase failure; only two distinct *constants* clash.
    """
    return isinstance(value, (Null, SkolemValue))


def is_constant_value(value: Any) -> bool:
    """True if ``value`` is a constant (i.e. not a null or skolem value)."""
    return not isinstance(value, (Null, SkolemValue))
