"""Conjunctive queries, unions of conjunctive queries, and their evaluation.

Evaluation is a backtracking index nested-loop join: at every step the atom
with the most bound variables (and the smallest candidate set) is expanded
next, using the instance's hash indexes.  The same matcher drives the chase
and the grounder, so it is written as a reusable generator over bindings.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.relational.instance import Fact, Instance
from repro.relational.terms import Const, Variable, is_constant_value

Term = Any  # Variable | Const | SkolemTerm (dependencies.skolem)


class Atom:
    """A relational atom ``R(t1, ..., tk)`` with variable/constant terms."""

    __slots__ = ("relation", "terms", "_hash")

    def __init__(self, relation: str, terms: Iterable[Term]):
        self.relation = relation
        self.terms = tuple(terms)
        self._hash = hash((relation, self.terms))

    def __repr__(self) -> str:
        inner = ",".join(repr(t) for t in self.terms)
        return f"{self.relation}({inner})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and self._hash == other._hash
            and self.relation == other.relation
            and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return self._hash

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> set[Variable]:
        return {t for t in self.terms if isinstance(t, Variable)}

    def substitute(self, binding: dict[Variable, Any]) -> Fact:
        """Instantiate this atom into a fact under a total binding."""
        args = []
        for term in self.terms:
            if isinstance(term, Variable):
                args.append(binding[term])
            elif isinstance(term, Const):
                args.append(term.value)
            else:
                raise TypeError(f"cannot ground term {term!r}")
        return Fact(self.relation, args)


class _AtomMatcher:
    """One join level, compiled for a fixed set of already-bound variables.

    Compilation classifies every term position once — the indexed probe,
    required-value checks (constants and bound variables), equality joins
    between repeated fresh variables, and the positions each fresh variable
    binds — so the per-fact loop is plain tuple indexing with no isinstance
    dispatch and no dict copy on failure.
    """

    __slots__ = (
        "relation", "arity", "probe_pos", "probe_const", "probe_var",
        "const_checks", "var_checks", "same", "binders",
    )

    def __init__(self, atom: Atom, bound_vars: set[Variable]):
        self.relation = atom.relation
        self.arity = len(atom.terms)
        # Indexed probe: first position holding a constant or bound variable.
        self.probe_pos = -1
        self.probe_const: Any = None
        self.probe_var: Variable | None = None
        self.const_checks: list[tuple[int, Any]] = []
        self.var_checks: list[tuple[int, Variable]] = []
        self.same: list[tuple[int, int]] = []  # position == earlier position
        self.binders: list[tuple[Variable, int]] = []  # fresh var <- position
        first_of: dict[Variable, int] = {}
        for pos, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                if term in bound_vars:
                    if self.probe_pos < 0:
                        self.probe_pos, self.probe_var = pos, term
                    else:
                        self.var_checks.append((pos, term))
                else:
                    earlier = first_of.get(term)
                    if earlier is None:
                        first_of[term] = pos
                        self.binders.append((term, pos))
                    else:
                        self.same.append((pos, earlier))
            elif isinstance(term, Const):
                if self.probe_pos < 0:
                    self.probe_pos, self.probe_const = pos, term.value
                else:
                    self.const_checks.append((pos, term.value))
            else:
                raise TypeError(f"unexpected term in body atom: {term!r}")

    def matches(
        self, instance: Instance, binding: dict[Variable, Any]
    ) -> Iterator[dict[Variable, Any]]:
        """Yield extensions of ``binding`` matching the atom in ``instance``.

        ``binding`` must bind (at least) the ``bound_vars`` the matcher was
        compiled for, and no other variable of the atom.
        """
        if self.probe_var is not None:
            candidates: Iterable[Fact] = instance.lookup(
                self.relation, self.probe_pos, binding[self.probe_var]
            )
        elif self.probe_pos >= 0:
            candidates = instance.lookup(
                self.relation, self.probe_pos, self.probe_const
            )
        else:
            candidates = instance.facts_of(self.relation)
        # The index lookup guarantees equality at the probe position.
        checks = self.const_checks
        if self.var_checks:
            checks = checks + [(pos, binding[var]) for pos, var in self.var_checks]
        arity = self.arity
        same = self.same
        binders = self.binders
        for fact in candidates:
            args = fact.args
            if len(args) != arity:
                continue
            matched = True
            for pos, required in checks:
                if args[pos] != required:
                    matched = False
                    break
            if not matched:
                continue
            for pos, earlier in same:
                if args[pos] != args[earlier]:
                    matched = False
                    break
            if not matched:
                continue
            local = dict(binding)
            for var, pos in binders:
                local[var] = args[pos]
            yield local


class CompiledJoin:
    """A planned, compiled index nested-loop join.

    Compile once per (atom list, bound-variable set), then run
    :meth:`bindings` for every seed binding with exactly that key set —
    the chase does this per (rule, pivot-atom) across all rounds, instead
    of re-planning and re-classifying terms for every delta fact.
    """

    __slots__ = ("matchers",)

    def __init__(
        self,
        instance: Instance,
        atoms: Sequence[Atom],
        bound_vars: set[Variable],
    ):
        order = plan_join_order(instance, atoms, set(bound_vars))
        bound = set(bound_vars)
        self.matchers: list[_AtomMatcher] = []
        for atom in order:
            self.matchers.append(_AtomMatcher(atom, bound))
            bound |= atom.variables()

    def bindings(
        self, instance: Instance, binding: dict[Variable, Any]
    ) -> Iterator[dict[Variable, Any]]:
        """All extensions of ``binding`` satisfying every atom (explicit
        backtracking stack, no recursion)."""
        matchers = self.matchers
        if not matchers:
            yield dict(binding)
            return
        depth = len(matchers)
        stack: list[Iterator[dict[Variable, Any]]] = [
            matchers[0].matches(instance, binding)
        ]
        while stack:
            extended = next(stack[-1], None)
            if extended is None:
                stack.pop()
                continue
            if len(stack) == depth:
                yield extended
            else:
                stack.append(matchers[len(stack)].matches(instance, extended))


def plan_join_order(
    instance: Instance,
    atoms: Sequence[Atom],
    bound_vars: set[Variable],
) -> list[Atom]:
    """Greedy join order: most bound/constant terms first, small relations
    breaking ties.  The order depends only on *which* variables are bound,
    never on their values, so one plan serves the whole enumeration.
    """
    remaining = list(atoms)
    sizes = {
        atom.relation: len(instance.facts_of(atom.relation)) for atom in atoms
    }
    bound = set(bound_vars)
    order: list[Atom] = []
    while remaining:
        best_index = 0
        best_key: tuple[int, int] | None = None
        for index, atom in enumerate(remaining):
            bound_terms = sum(
                1
                for t in atom.terms
                if isinstance(t, Const) or (isinstance(t, Variable) and t in bound)
            )
            key = (-bound_terms, sizes[atom.relation])
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        chosen = remaining.pop(best_index)
        order.append(chosen)
        bound |= chosen.variables()
    return order


def match_atoms(
    instance: Instance,
    atoms: Sequence[Atom],
    binding: dict[Variable, Any] | None = None,
) -> Iterator[dict[Variable, Any]]:
    """Yield all bindings satisfying every atom in ``atoms`` over ``instance``.

    Index nested-loop join along a greedily planned atom order, with an
    explicit backtracking stack (no recursion, no per-level re-sorting).
    """
    if binding is None:
        binding = {}
    if not atoms:
        yield dict(binding)
        return
    join = CompiledJoin(instance, atoms, set(binding))
    yield from join.bindings(instance, binding)


class ConjunctiveQuery:
    """A conjunctive query ``q(x) :- A1, ..., An [, s != t, ...]``.

    ``head_vars`` lists the answer variables (possibly empty, for a Boolean
    query).  Optional ``inequalities`` are pairs of terms required to be
    distinct — used internally by dependency machinery; plain paper queries
    have none.
    """

    __slots__ = ("name", "head_vars", "body", "inequalities")

    def __init__(
        self,
        head_vars: Sequence[Variable],
        body: Sequence[Atom],
        inequalities: Sequence[tuple[Term, Term]] = (),
        name: str = "q",
    ):
        self.name = name
        self.head_vars = tuple(head_vars)
        self.body = tuple(body)
        self.inequalities = tuple(inequalities)
        body_vars = set().union(*(a.variables() for a in body)) if body else set()
        missing = [v for v in self.head_vars if v not in body_vars]
        if missing:
            raise ValueError(f"unsafe query: head variables {missing} not in body")

    def variables(self) -> set[Variable]:
        out: set[Variable] = set()
        for atom in self.body:
            out |= atom.variables()
        return out

    def is_boolean(self) -> bool:
        return not self.head_vars

    def __repr__(self) -> str:
        head = ",".join(v.name for v in self.head_vars)
        body = ", ".join(repr(a) for a in self.body)
        return f"{self.name}({head}) :- {body}"


class UnionOfConjunctiveQueries:
    """A union of conjunctive queries with a shared head signature."""

    __slots__ = ("name", "disjuncts")

    def __init__(self, disjuncts: Sequence[ConjunctiveQuery], name: str = "q"):
        if not disjuncts:
            raise ValueError("a UCQ needs at least one disjunct")
        widths = {len(d.head_vars) for d in disjuncts}
        if len(widths) != 1:
            raise ValueError(f"disjuncts disagree on head width: {widths}")
        self.name = name
        self.disjuncts = tuple(disjuncts)

    @property
    def head_width(self) -> int:
        return len(self.disjuncts[0].head_vars)

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.disjuncts)

    def __repr__(self) -> str:
        return " ∨ ".join(repr(d) for d in self.disjuncts)


def _binding_satisfies_inequalities(
    cq: ConjunctiveQuery, binding: dict[Variable, Any]
) -> bool:
    for left, right in cq.inequalities:
        lval = binding[left] if isinstance(left, Variable) else left.value
        rval = binding[right] if isinstance(right, Variable) else right.value
        if lval == rval:
            return False
    return True


def evaluate(
    query: ConjunctiveQuery | UnionOfConjunctiveQueries, instance: Instance
) -> set[tuple]:
    """All answers ``q(I)`` of ``query`` on ``instance`` (tuples of values)."""
    if isinstance(query, UnionOfConjunctiveQueries):
        answers: set[tuple] = set()
        for disjunct in query:
            answers |= evaluate(disjunct, instance)
        return answers

    answers = set()
    for binding in match_atoms(instance, query.body):
        if not _binding_satisfies_inequalities(query, binding):
            continue
        answers.add(tuple(binding[v] for v in query.head_vars))
    return answers


def evaluate_constants_only(
    query: ConjunctiveQuery | UnionOfConjunctiveQueries, instance: Instance
) -> set[tuple]:
    """The null-free answers ``q↓(I)``: answers whose values are all constants."""
    return {
        row
        for row in evaluate(query, instance)
        if all(is_constant_value(v) for v in row)
    }
