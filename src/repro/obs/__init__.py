"""Structured observability: phase-level tracing, metrics, exporters.

The paper's empirical story (§5–§6) is about *where time goes* — exchange
vs. program build vs. solving — and the aggregate numbers in
``QueryPhaseStats`` cannot attribute it.  This package is the first-class
measurement layer, in the tradition of the grounder/solver statistics of
clasp/gringo and DLV:

- :mod:`repro.obs.tracing` — nested :class:`Span` trees on the monotonic
  clock, produced by a thread-safe :class:`Tracer`; spans serialize to
  plain data so pool workers can ship their solve spans back through the
  executor result channel;
- :mod:`repro.obs.metrics` — a deterministic :class:`Metrics` registry
  (counters, gauges, fixed-bucket histograms);
- :mod:`repro.obs.recorder` — :class:`Recorder` bundles one tracer and
  one registry; :data:`NOOP_RECORDER` is the default everywhere, keeping
  the uninstrumented hot path within noise of an unbuilt tree;
- :mod:`repro.obs.export` — the JSON trace document (with a structural
  validator) and a flat Prometheus-style text format.

Everything is stdlib-only; nothing in this package imports the rest of
``repro``, so any layer may import it freely.

Usage::

    from repro.obs import Recorder
    from repro.obs.export import write_trace_json, write_prometheus

    obs = Recorder.create()
    with SegmentaryEngine(mapping, instance, obs=obs) as engine:
        engine.answer(query)
    write_trace_json("trace.json", obs)
    write_prometheus("metrics.prom", obs.metrics)
"""

from repro.obs.export import (
    TRACE_SCHEMA_VERSION,
    spans_from_document,
    to_prometheus,
    trace_document,
    validate_trace_document,
    write_prometheus,
    write_trace_json,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Metrics,
    NoopMetrics,
    NOOP_METRICS,
)
from repro.obs.recorder import NOOP_RECORDER, Recorder
from repro.obs.tracing import (
    NoopTracer,
    NOOP_TRACER,
    Span,
    Tracer,
    validate_span_tree,
)

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "Metrics",
    "NOOP_METRICS",
    "NOOP_RECORDER",
    "NOOP_TRACER",
    "NoopMetrics",
    "NoopTracer",
    "Recorder",
    "Span",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "spans_from_document",
    "to_prometheus",
    "trace_document",
    "validate_trace_document",
    "validate_span_tree",
    "write_prometheus",
    "write_trace_json",
]
