"""Exporters: trace documents (JSON) and flat Prometheus-style text.

The JSON trace document is the single artifact ``repro query --trace``
emits and the CI smoke validates::

    {
      "kind": "repro-trace",
      "version": 1,
      "spans": [ {"name": ..., "start": ..., "end": ...,
                  "tags": {...}, "counters": {...}, "children": [...]}, ... ],
      "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}
    }

:func:`validate_trace_document` checks the schema structurally (types,
required keys, start/end sanity, histogram cell arithmetic) and returns a
list of problems, so tests and CI can assert emptiness with a readable
failure.  :func:`spans_from_document` rebuilds :class:`~repro.obs.tracing.Span`
trees, giving exporter → parser round-trips.

The Prometheus text format follows the exposition conventions (``# TYPE``
comments, ``_total`` counters as written, histogram ``_bucket{le=...}`` /
``_sum`` / ``_count`` series) without claiming full openmetrics
compliance — it is flat, greppable, and diffable, which is what the
benchmarks need.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.metrics import Metrics, NoopMetrics
from repro.obs.recorder import Recorder
from repro.obs.tracing import Span, validate_span_tree

#: Bumped when the document layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1

TRACE_KIND = "repro-trace"


def trace_document(obs: Recorder) -> dict[str, Any]:
    """The plain-data trace document of one recorder."""
    return {
        "kind": TRACE_KIND,
        "version": TRACE_SCHEMA_VERSION,
        "spans": [span.to_dict() for span in obs.tracer.finished],
        "metrics": obs.metrics.as_dict(),
    }


def write_trace_json(path: str | Path, obs: Recorder, *, indent: int = 2) -> Path:
    """Serialize the recorder's trace document to ``path``."""
    path = Path(path)
    path.write_text(
        json.dumps(trace_document(obs), indent=indent, sort_keys=True) + "\n"
    )
    return path


def spans_from_document(document: dict[str, Any]) -> list[Span]:
    """Rebuild the span trees of a trace document (round-trip parser)."""
    return [Span.from_dict(payload) for payload in document.get("spans", ())]


# ------------------------------------------------------------- validation


def _check_span(payload: Any, path: str, problems: list[str]) -> None:
    if not isinstance(payload, dict):
        problems.append(f"{path}: span is not an object")
        return
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{path}: missing or empty span name")
        name = "?"
    label = f"{path}/{name}"
    for key in ("start", "end"):
        if not isinstance(payload.get(key), (int, float)):
            problems.append(f"{label}: {key} is not a number")
    if not isinstance(payload.get("tags", {}), dict):
        problems.append(f"{label}: tags is not an object")
    counters = payload.get("counters", {})
    if not isinstance(counters, dict):
        problems.append(f"{label}: counters is not an object")
    else:
        for key, value in counters.items():
            if not isinstance(value, int):
                problems.append(f"{label}: counter {key}={value!r} not an int")
    children = payload.get("children", [])
    if not isinstance(children, list):
        problems.append(f"{label}: children is not a list")
        return
    for index, child in enumerate(children):
        _check_span(child, f"{label}[{index}]", problems)


def validate_trace_document(document: Any) -> list[str]:
    """Structural problems of a trace document (empty list = valid).

    Beyond plain JSON-shape checks, every span tree is run through
    :func:`~repro.obs.tracing.validate_span_tree`, so a document that
    parses but violates the nesting/monotonicity invariants still fails.
    """
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["document is not an object"]
    if document.get("kind") != TRACE_KIND:
        problems.append(f"kind is {document.get('kind')!r}, expected {TRACE_KIND!r}")
    if document.get("version") != TRACE_SCHEMA_VERSION:
        problems.append(
            f"version is {document.get('version')!r}, "
            f"expected {TRACE_SCHEMA_VERSION}"
        )
    spans = document.get("spans")
    if not isinstance(spans, list):
        problems.append("spans is not a list")
        spans = []
    for index, payload in enumerate(spans):
        _check_span(payload, f"spans[{index}]", problems)
    if not problems:
        for index, payload in enumerate(spans):
            for issue in validate_span_tree(Span.from_dict(payload)):
                problems.append(f"spans[{index}]{issue}")
    metrics = document.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("metrics is not an object")
        return problems
    for family in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(family), dict):
            problems.append(f"metrics.{family} is not an object")
    for name, value in metrics.get("counters", {}).items():
        if not isinstance(value, int) or value < 0:
            problems.append(f"metrics.counters.{name}={value!r} invalid")
    for name, data in metrics.get("histograms", {}).items():
        if not isinstance(data, dict):
            problems.append(f"metrics.histograms.{name} is not an object")
            continue
        boundaries = data.get("boundaries")
        counts = data.get("counts")
        if not isinstance(boundaries, list) or not isinstance(counts, list):
            problems.append(f"metrics.histograms.{name}: malformed cells")
            continue
        if len(counts) != len(boundaries) + 1:
            problems.append(
                f"metrics.histograms.{name}: {len(counts)} cells for "
                f"{len(boundaries)} boundaries (want boundaries+1)"
            )
        if sum(counts) != data.get("count"):
            problems.append(
                f"metrics.histograms.{name}: cells sum to {sum(counts)} "
                f"but count is {data.get('count')}"
            )
    return problems


# ------------------------------------------------------------- prometheus


def _format_value(value: float) -> str:
    """Prometheus sample values: integers render bare, floats as repr."""
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus(metrics: Metrics | NoopMetrics | dict[str, Any]) -> str:
    """Flat Prometheus-style exposition text of a metrics registry.

    Deterministic: families sorted by name, histogram buckets in boundary
    order, one trailing newline.
    """
    payload = (
        metrics if isinstance(metrics, dict) else metrics.as_dict()
    )
    lines: list[str] = []
    for name, value in sorted(payload.get("counters", {}).items()):
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_value(value)}")
    for name, value in sorted(payload.get("gauges", {}).items()):
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(value)}")
    for name, data in sorted(payload.get("histograms", {}).items()):
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for boundary, count in zip(data["boundaries"], data["counts"]):
            cumulative += count
            lines.append(
                f'{name}_bucket{{le="{_format_value(boundary)}"}} {cumulative}'
            )
        cumulative += data["counts"][-1]
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{name}_sum {_format_value(data['sum'])}")
        lines.append(f"{name}_count {data['count']}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(
    path: str | Path, metrics: Metrics | NoopMetrics | dict[str, Any]
) -> Path:
    """Write the Prometheus exposition text to ``path``."""
    path = Path(path)
    path.write_text(to_prometheus(metrics))
    return path
