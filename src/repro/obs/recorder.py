"""The Recorder: one handle bundling a tracer and a metrics registry.

Everything instrumentable in the pipeline accepts an optional
``obs: Recorder``; the default is :data:`NOOP_RECORDER`, whose tracer and
metrics are the shared no-op singletons, so uninstrumented code pays a
few attribute reads and nothing else.  ``Recorder.create()`` builds a
live pair; ``recorder.enabled`` is the one flag instrumented call sites
branch on when real work (building a task trace, exporting worker spans)
would otherwise be wasted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import Metrics, NoopMetrics, NOOP_METRICS
from repro.obs.tracing import NoopTracer, Tracer, NOOP_TRACER


@dataclass
class Recorder:
    """A tracer plus a metrics registry, carried through the pipeline."""

    tracer: Tracer | NoopTracer = field(default_factory=Tracer)
    metrics: Metrics | NoopMetrics = field(default_factory=Metrics)

    @property
    def enabled(self) -> bool:
        """True when at least one side actually records."""
        return bool(self.tracer.enabled or self.metrics.enabled)

    @classmethod
    def create(cls) -> "Recorder":
        """A live recorder (fresh tracer + fresh registry)."""
        return cls()


#: The shared do-nothing recorder; the default `obs` everywhere.
NOOP_RECORDER = Recorder(tracer=NOOP_TRACER, metrics=NOOP_METRICS)
