"""Nested-span tracing on the monotonic clock.

A :class:`Span` is one timed region of the pipeline — name, monotonic
start/end (``time.perf_counter``), string-keyed tags, integer counters,
and child spans.  A :class:`Tracer` hands out spans as context managers
and maintains proper nesting per thread (each thread has its own span
stack; finished root spans are collected under a lock, so one tracer can
serve concurrent query phases).

Spans cross the process boundary as plain data: :meth:`Span.to_dict` /
:meth:`Span.from_dict` round-trip the whole tree through JSON-compatible
dicts, which is how pool workers ship their solve spans back through the
executor result channel (:class:`~repro.runtime.executor.SolveOutcome`).
A reattached remote tree is tagged ``clock="remote"`` because its
timestamps come from another process's clock epoch — wall-clock *durations*
are meaningful, absolute offsets against the parent are not (see
:func:`validate_span_tree`).

The default everywhere is :data:`NOOP_TRACER`: a tracer whose spans are a
shared do-nothing context manager, so the uninstrumented hot path pays one
method call and no allocation per would-be span.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterator

#: Tag value marking a span subtree deserialized from another process.
REMOTE_CLOCK = "remote"

#: Slack for float accumulation when checking duration invariants.
_EPSILON = 1e-9


class Span:
    """One timed region: name, monotonic start/end, tags, counters, children."""

    __slots__ = ("name", "start", "end", "tags", "counters", "children")

    def __init__(
        self,
        name: str,
        start: float = 0.0,
        end: float = 0.0,
        tags: dict[str, Any] | None = None,
        counters: dict[str, int] | None = None,
        children: list["Span"] | None = None,
    ):
        self.name = name
        self.start = start
        self.end = end
        self.tags = tags if tags is not None else {}
        self.counters = counters if counters is not None else {}
        self.children = children if children is not None else []

    @property
    def duration(self) -> float:
        """Wall-clock seconds from start to end (0 while still open)."""
        return max(0.0, self.end - self.start)

    @property
    def is_remote(self) -> bool:
        return self.tags.get("clock") == REMOTE_CLOCK

    def tag(self, key: str, value: Any) -> None:
        self.tags[key] = value

    def count(self, key: str, amount: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    # ----------------------------------------------------- serialization

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible plain-data form of the whole subtree."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "tags": dict(self.tags),
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Span":
        return cls(
            name=payload["name"],
            start=float(payload["start"]),
            end=float(payload["end"]),
            tags=dict(payload.get("tags", {})),
            counters={
                key: int(value)
                for key, value in payload.get("counters", {}).items()
            },
            children=[
                cls.from_dict(child) for child in payload.get("children", ())
            ],
        )

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration:.6f}s, "
            f"{len(self.children)} child(ren))"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Span):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:  # spans are mutable; identity hashing
        return id(self)


class _SpanHandle:
    """The context manager :meth:`Tracer.span` returns (one per entry)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc) -> None:
        self._tracer._pop(self._span)


class Tracer:
    """Produces properly-nested spans; thread-safe collection.

    Each thread keeps its own open-span stack (``threading.local``), so
    concurrent callers nest independently; finished *root* spans from all
    threads land in one shared list guarded by a lock.
    """

    #: Distinguishes live tracers from :class:`NoopTracer` without an
    #: isinstance check on the hot path.
    enabled = True

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._finished: list[Span] = []

    # ------------------------------------------------------------ stack

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        span.start = time.perf_counter()
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.end = time.perf_counter()
        stack = self._stack()
        if not stack or stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order; open stack: "
                f"{[s.name for s in stack]}"
            )
        stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._finished.append(span)

    # -------------------------------------------------------- interface

    def span(self, name: str, **tags: Any) -> _SpanHandle:
        """A context manager opening a span named ``name``.

        Tags passed as keyword arguments are set at creation; more can be
        added through the yielded span's :meth:`Span.tag`.
        """
        return _SpanHandle(self, Span(name, tags=dict(tags) if tags else None))

    def current(self) -> Span | None:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def attach(self, payload: dict[str, Any] | Span) -> Span:
        """Attach a deserialized (remote) span tree under the current span.

        The tree is tagged ``clock="remote"``: its timestamps come from a
        different process's monotonic epoch and must not be compared to
        the local timeline.  With no span open, the tree becomes a root.
        """
        span = payload if isinstance(payload, Span) else Span.from_dict(payload)
        span.tags.setdefault("clock", REMOTE_CLOCK)
        parent = self.current()
        if parent is not None:
            parent.children.append(span)
        else:
            with self._lock:
                self._finished.append(span)
        return span

    @property
    def finished(self) -> list[Span]:
        """A snapshot of the finished root spans (collection order)."""
        with self._lock:
            return list(self._finished)

    def reset(self) -> None:
        """Drop all finished spans (open spans are unaffected)."""
        with self._lock:
            self._finished.clear()


class _NoopSpan:
    """Shared do-nothing span/context-manager for the uninstrumented path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def tag(self, key: str, value: Any) -> None:
        pass

    def count(self, key: str, amount: int = 1) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """API-compatible tracer that records nothing and allocates nothing."""

    enabled = False

    def span(self, name: str, **tags: Any) -> _NoopSpan:
        return _NOOP_SPAN

    def current(self) -> None:
        return None

    def attach(self, payload: Any) -> None:
        return None

    @property
    def finished(self) -> list[Span]:
        return []

    def reset(self) -> None:
        pass


#: The shared default tracer: safe to pass everywhere, never records.
NOOP_TRACER = NoopTracer()


def validate_span_tree(span: Span) -> list[str]:
    """Structural invariants of one span tree; returns human-readable
    problems (empty list = valid).

    Checked for every span: ``end >= start`` and non-negative counters.
    Checked for locally-clocked spans only (remote subtrees carry a
    foreign monotonic epoch): children lie within the parent interval,
    siblings do not overlap (same-thread spans obey stack discipline),
    and child durations sum to at most the parent duration.
    """
    problems: list[str] = []

    def visit(node: Span, path: str) -> None:
        label = f"{path}/{node.name}"
        if node.end < node.start - _EPSILON:
            problems.append(f"{label}: end {node.end} before start {node.start}")
        for key, value in node.counters.items():
            if not isinstance(value, int) or value < 0:
                problems.append(f"{label}: counter {key}={value!r} invalid")
        local_children = [c for c in node.children if not c.is_remote]
        previous_end = None
        child_total = 0.0
        for child in local_children:
            child_total += child.duration
            if child.start < node.start - _EPSILON or (
                child.end > node.end + _EPSILON
            ):
                problems.append(
                    f"{label}: child {child.name!r} [{child.start}, {child.end}] "
                    f"outside parent [{node.start}, {node.end}]"
                )
            if previous_end is not None and child.start < previous_end - _EPSILON:
                problems.append(
                    f"{label}: child {child.name!r} starts before its "
                    "predecessor ended (same-thread spans must not overlap)"
                )
            previous_end = max(previous_end or child.end, child.end)
        if child_total > node.duration + _EPSILON:
            problems.append(
                f"{label}: child durations sum to {child_total} > "
                f"parent duration {node.duration}"
            )
        for child in node.children:
            visit(child, label)

    visit(span, "")
    return problems
