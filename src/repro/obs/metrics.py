"""A small metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints, in order:

- **deterministic output** — metrics are exported sorted by name, and
  histograms use *fixed* bucket boundaries supplied at creation (no
  dynamic rebucketing), so two runs that perform the same work export the
  same document modulo the measured values themselves;
- **thread-safe** — one registry may be shared by concurrent query
  phases; every mutation takes the registry's lock (instrumented runs
  only — the :data:`NOOP_METRICS` default never locks);
- **dependency-free** — stdlib only, like the rest of :mod:`repro.obs`.

Counters are integers and monotonically non-decreasing; gauges are floats
holding the last value set; histograms count observations into
``le``-style cumulative-exportable buckets plus a sum and a count
(the Prometheus histogram data model).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable

#: Default histogram boundaries, in seconds, chosen for solve times: the
#: segmentary engine's per-signature programs cluster well under 1s.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
)


class Counter:
    """A monotonically non-decreasing integer."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """The last value set (a float)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is higher (peak tracking)."""
        with self._lock:
            if value > self.value:
                self.value = float(value)


class Histogram:
    """Fixed-boundary histogram (Prometheus data model).

    ``boundaries`` are the inclusive upper edges of the finite buckets;
    one implicit ``+Inf`` bucket catches the rest.  ``counts[i]`` is the
    number of observations in bucket ``i`` (non-cumulative internally;
    exporters accumulate for ``le`` semantics).
    """

    __slots__ = ("name", "boundaries", "counts", "sum", "count", "_lock")

    def __init__(
        self, name: str, boundaries: Iterable[float], lock: threading.Lock
    ):
        edges = tuple(float(b) for b in boundaries)
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError(
                f"histogram {name}: boundaries must be strictly increasing "
                f"and non-empty, got {edges}"
            )
        self.name = name
        self.boundaries = edges
        self.counts = [0] * (len(edges) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        index = bisect_left(self.boundaries, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1


class Metrics:
    """A named registry of counters, gauges, and histograms.

    Instruments are created on first access and live for the registry's
    lifetime; re-requesting a name returns the same instrument (with a
    kind or boundary mismatch raising ``ValueError`` — silent aliasing
    would corrupt exports).
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not kind and name in family:
                raise ValueError(f"metric {name!r} already exists with another kind")

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    self._check_unique(name, self._counters)
                    instrument = Counter(name, self._lock)
                    self._counters[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.get(name)
                if instrument is None:
                    self._check_unique(name, self._gauges)
                    instrument = Gauge(name, self._lock)
                    self._gauges[name] = instrument
        return instrument

    def histogram(
        self, name: str, boundaries: Iterable[float] = DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    self._check_unique(name, self._histograms)
                    instrument = Histogram(name, boundaries, self._lock)
                    self._histograms[name] = instrument
        elif instrument.boundaries != tuple(float(b) for b in boundaries):
            raise ValueError(
                f"histogram {name!r} re-requested with different boundaries"
            )
        return instrument

    def inc(self, name: str, amount: int = 1) -> None:
        """Convenience: ``counter(name).inc(amount)``."""
        self.counter(name).inc(amount)

    # ---------------------------------------------------------- export

    def as_dict(self) -> dict[str, Any]:
        """Deterministic plain-data form: kinds, then names, sorted."""
        with self._lock:
            return {
                "counters": {
                    name: c.value
                    for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.value for name, g in sorted(self._gauges.items())
                },
                "histograms": {
                    name: {
                        "boundaries": list(h.boundaries),
                        "counts": list(h.counts),
                        "sum": h.sum,
                        "count": h.count,
                    }
                    for name, h in sorted(self._histograms.items())
                },
            }

    def counter_values(self) -> dict[str, int]:
        """Just the counters (the deterministic core used by golden tests)."""
        with self._lock:
            return {
                name: c.value for name, c in sorted(self._counters.items())
            }

    def merge(self, other: "Metrics | dict[str, Any]") -> None:
        """Fold another registry (or its ``as_dict``) into this one.

        Counters and histogram cells add; gauges keep the maximum (the
        only order-independent combination).  Used to aggregate per-run
        registries into one report.
        """
        payload = other.as_dict() if isinstance(other, Metrics) else other
        for name, value in payload.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name).max(value)
        for name, data in payload.get("histograms", {}).items():
            histogram = self.histogram(name, data["boundaries"])
            with self._lock:
                for index, count in enumerate(data["counts"]):
                    histogram.counts[index] += count
                histogram.sum += data["sum"]
                histogram.count += data["count"]


class _NoopInstrument:
    """One shared object standing in for every no-op instrument."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NOOP_INSTRUMENT = _NoopInstrument()


class NoopMetrics:
    """API-compatible registry that records nothing."""

    enabled = False

    def counter(self, name: str) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def gauge(self, name: str) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def histogram(self, name: str, boundaries: Any = None) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def as_dict(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def counter_values(self) -> dict[str, int]:
        return {}

    def merge(self, other: Any) -> None:
        pass


#: The shared default registry: safe to pass everywhere, never records.
NOOP_METRICS = NoopMetrics()
