"""Command-line interface.

Mirrors the paper implementation's inputs — a schema mapping as text, a
source instance, and queries — without writing any Python::

    python -m repro answer  -m mapping.txt -d data.txt -q "q(x) :- T(x, y)."
    python -m repro answer  -m mapping.txt -d data.txt -q "..." --updates updates.txt
    python -m repro repairs -m mapping.txt -d data.txt --limit 5
    python -m repro check   -m mapping.txt -d data.txt
    python -m repro fuzz    --seeds 200 --shrink
    python -m repro fuzz    --seeds 100 --updates 20

``answer`` prints the XR-Certain answers (or XR-Possible with
``--possible``); with ``--updates`` it first replays a stream of source
inserts/retracts through the incremental maintenance layer
(:mod:`repro.incremental`) and answers against the updated state.
``repairs`` enumerates exchange-repair solutions; ``check`` runs the
exchange phase and reports violations, clusters, and the suspect/safe
split; ``fuzz`` runs a differential campaign across every engine
configuration (with ``--updates N``: an update-workload campaign
comparing incremental maintenance against from-scratch re-exchange at
every step) and exits non-zero on any disagreement.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.obs import Recorder, write_prometheus, write_trace_json
from repro.parser import parse_instance, parse_mapping, parse_program
from repro.runtime.budget import NO_BUDGET, SolveBudget
from repro.xr.monolithic import MonolithicEngine
from repro.xr.segmentary import SegmentaryEngine
from repro.xr.solutions import xr_solutions


def _load(arguments) -> tuple:
    with open(arguments.mapping) as handle:
        mapping = parse_mapping(handle.read())
    with open(arguments.data) as handle:
        instance = parse_instance(handle.read())
    return mapping, instance


def _recorder_from(arguments) -> Recorder | None:
    """A live recorder when ``--trace`` or ``--metrics`` was given."""
    if getattr(arguments, "trace", None) or getattr(arguments, "metrics", None):
        return Recorder.create()
    return None


def _write_observability(arguments, obs: Recorder | None) -> None:
    if obs is None:
        return
    if arguments.trace:
        path = write_trace_json(arguments.trace, obs)
        print(f"% trace written to {path}")
    if arguments.metrics:
        path = write_prometheus(arguments.metrics, obs.metrics)
        print(f"% metrics written to {path}")


def _budget_from(arguments) -> SolveBudget:
    if not (arguments.deadline or arguments.task_timeout or arguments.retries):
        return NO_BUDGET
    return SolveBudget(
        deadline=arguments.deadline,
        task_timeout=arguments.task_timeout,
        max_retries=arguments.retries,
    )


def _command_answer(arguments) -> int:
    mapping, instance = _load(arguments)
    query = parse_program(arguments.query)
    budget = _budget_from(arguments)
    updates = None
    if getattr(arguments, "updates", None):
        if arguments.method != "segmentary":
            print(
                "--updates requires the segmentary method (incremental "
                "maintenance lives on the segmentary engine)",
                file=sys.stderr,
            )
            return 2
        from repro.incremental import parse_update_stream

        with open(arguments.updates) as handle:
            updates = parse_update_stream(handle.read())
    # A configured budget implies degraded answers are acceptable: that is
    # the point of setting one.  Without a budget nothing can time out and
    # the flag is irrelevant.
    allow_partial = not budget.is_null
    mode = "possible" if arguments.possible else "certain"
    kind = "XR-Possible" if arguments.possible else "XR-Certain"
    obs = _recorder_from(arguments)
    started = time.perf_counter()
    degraded = False
    unknown: set = set()
    phase_note = None
    if arguments.method == "monolithic":
        engine = MonolithicEngine(
            mapping, instance, budget=budget, obs=obs,
            exchange_strategy=arguments.exchange_strategy,
        )
        if arguments.possible:
            answers = engine.possible_answers(query, allow_partial=allow_partial)
        else:
            answers = engine.answer(query, allow_partial=allow_partial)
        degraded = engine.last_stats.degraded
        unknown = engine.last_stats.unknown_candidates
    else:
        with SegmentaryEngine(
            mapping, instance, jobs=arguments.jobs, budget=budget, obs=obs,
            solve_strategy=arguments.solve_strategy,
            exchange_strategy=arguments.exchange_strategy,
        ) as engine:
            if updates is not None:
                session = engine.update_session()
                reports = session.apply_stream(updates)
                totals = session.stats
                print(
                    f"% applied {len(reports)} update step(s) "
                    f"({totals.noop_deltas} no-op) in "
                    f"{totals.seconds:.3f}s: "
                    f"{totals.clusters_touched} cluster(s) touched, "
                    f"{totals.clusters_retired} retired, "
                    f"{totals.cache_invalidated} cache entr(ies) "
                    f"invalidated"
                )
            answers, stats = engine.answer_with_stats(
                query, mode=mode, allow_partial=allow_partial
            )
        degraded = stats.degraded
        unknown = stats.unknown_candidates
        if stats.programs_solved or stats.cache_hits or stats.timeouts:
            phase_note = (
                f"% query phase: {stats.programs_solved} program(s) solved "
                f"via {stats.executor} executor, {stats.cache_hits} cache "
                f"hit(s), {stats.solve_seconds:.2f}s solving"
            )
            if stats.timeouts or stats.retries:
                phase_note += (
                    f", {stats.timeouts} timeout(s), {stats.retries} retry(ies)"
                )
    elapsed = time.perf_counter() - started
    print(f"% {kind} answers ({arguments.method}, {elapsed:.2f}s)")
    if phase_note:
        print(phase_note)
    if degraded:
        relation = "excluded from" if mode == "certain" else "included in"
        print(
            f"% DEGRADED: budget exhausted; {len(unknown)} candidate(s) "
            f"undecided and conservatively {relation} the answers below"
        )
        for row in sorted(unknown, key=repr):
            inner = ", ".join(repr(value) for value in row)
            print(f"% unknown: {query.name}({inner})")
    if not answers:
        print("% (none)")
    for row in sorted(answers, key=repr):
        inner = ", ".join(repr(value) for value in row)
        print(f"{query.name}({inner}).")
    _write_observability(arguments, obs)
    return 0


def _command_repairs(arguments) -> int:
    mapping, instance = _load(arguments)
    count = 0
    for solution in xr_solutions(mapping, instance, limit=arguments.limit):
        count += 1
        print(f"% repair {count}: {solution.deleted} source fact(s) deleted")
        for fact in sorted(solution.source_repair, key=repr):
            print(f"  {fact!r}.")
    if count == 0:
        print("% no repairs (empty instance)")
    return 0


def _command_check(arguments) -> int:
    mapping, instance = _load(arguments)
    with SegmentaryEngine(mapping, instance) as engine:
        stats = engine.exchange()
    print(f"source facts:        {stats.source_facts}")
    print(f"chased facts:        {stats.chased_facts}")
    print(f"egd violations:      {stats.violations}")
    print(f"violation clusters:  {stats.clusters}")
    print(f"suspect source facts: {stats.suspect_source_facts}")
    print(f"safe source facts:    {stats.safe_source_facts}")
    if stats.violations:
        print("status: INCONSISTENT (queries answered under XR-Certain semantics)")
        return 1
    print("status: consistent")
    return 0


def _command_fuzz(arguments) -> int:
    from dataclasses import replace

    from repro.fuzz import DEFAULT_CONFIG, close_shared_executor, run_fuzz

    config = replace(
        DEFAULT_CONFIG,
        profile=arguments.profile,
        max_facts=arguments.max_facts,
        conflict_rate=arguments.conflict_rate,
        use_oracle=not arguments.no_oracle,
        check_parallel=not arguments.no_parallel,
        check_faults=arguments.faults,
        exchange_strategy=arguments.exchange_strategy,
    )
    if arguments.updates:
        from repro.fuzz import run_update_fuzz

        summary = run_update_fuzz(
            seeds=arguments.seeds,
            start=arguments.start,
            steps=arguments.updates,
            config=config,
            jobs=arguments.jobs,
            shrink=arguments.shrink,
            corpus_dir=arguments.corpus,
            log=print,
        )
        mode_note = f"update streams × {arguments.updates} step(s)"
    else:
        summary = run_fuzz(
            seeds=arguments.seeds,
            start=arguments.start,
            config=config,
            jobs=arguments.jobs,
            shrink=arguments.shrink,
            corpus_dir=arguments.corpus,
            log=print,
        )
        close_shared_executor()
        mode_note = config.profile
    print(
        f"% {summary.seeds} seed(s) from {summary.start} "
        f"({mode_note}), {summary.seconds:.1f}s, "
        f"{len(summary.failures)} failure(s)"
    )
    for failure in summary.failures:
        print(f"%% seed {failure.seed}: " + "; ".join(failure.discrepancies))
        text = failure.shrunk_text or failure.scenario_text
        print(text, end="" if text.endswith("\n") else "\n")
    return 0 if summary.ok else 1


def _command_serve(arguments) -> int:
    from repro.serve import QueryService, ServiceConfig, run_serve

    if arguments.scenario:
        if arguments.mapping or arguments.data:
            print("--scenario and -m/-d are mutually exclusive",
                  file=sys.stderr)
            return 2
        from repro.bench.micro import parse_scenario_name
        from repro.genomics.instances import build_instance
        from repro.genomics.schema import genome_mapping
        from repro.reduction.reduce import reduce_mapping

        mapping = reduce_mapping(genome_mapping())
        instance = build_instance(
            parse_scenario_name(arguments.scenario)
        ).instance
        print(f"% loaded genomics scenario {arguments.scenario} "
              f"({len(instance)} source facts)")
    elif arguments.mapping and arguments.data:
        mapping, instance = _load(arguments)
    else:
        print("pass --scenario NAME or both -m/--mapping and -d/--data",
              file=sys.stderr)
        return 2
    config = ServiceConfig(
        jobs=arguments.jobs,
        solve_strategy=arguments.solve_strategy,
        deadline=arguments.deadline,
        task_timeout=arguments.task_timeout,
        max_retries=arguments.retries,
        max_inflight=arguments.max_inflight,
        max_queue=arguments.max_queue,
        queue_timeout=arguments.queue_timeout,
    )
    started = time.perf_counter()
    service = QueryService(mapping, instance, config)
    exchange = service.engine.exchange_stats
    print(f"% exchange materialized in {time.perf_counter() - started:.2f}s "
          f"({exchange.chased_facts} chased facts, "
          f"{exchange.clusters} cluster(s))")
    return run_serve(service, host=arguments.host, port=arguments.port)


def _command_bench(arguments) -> int:
    from repro.bench.micro import (
        MICRO_QUERIES,
        format_micro_table,
        run_micro,
    )
    from repro.bench.reporting import print_flush, write_benchmark_json

    if arguments.serve:
        from repro.bench.serve import (
            SERVE_QUERIES,
            SERVE_SCENARIOS,
            format_serve_table,
            run_serve_bench,
        )

        scenarios = (
            tuple(arguments.scenarios.split(","))
            if arguments.scenarios else SERVE_SCENARIOS
        )
        queries = (
            tuple(arguments.queries.split(",")) if arguments.queries
            else SERVE_QUERIES
        )
        payload = run_serve_bench(
            scenarios=scenarios,
            clients=arguments.clients,
            duration=arguments.duration,
            warmup=arguments.warmup,
            queries=queries,
            url=arguments.url,
            jobs=arguments.jobs,
            log=print_flush,
        )
        print(format_serve_table(payload))
        if arguments.json:
            path = write_benchmark_json(arguments.json, payload)
            print(f"% artifact written to {path}")
        total_errors = sum(
            row["errors"] for row in payload["scenarios"].values()
        )
        if total_errors:
            print(f"% FAIL: {total_errors} non-degraded error(s)",
                  file=sys.stderr)
            return 1
        if arguments.qps_floor is not None:
            below = {
                name: row["qps"]
                for name, row in payload["scenarios"].items()
                if row["qps"] < arguments.qps_floor
            }
            if below:
                print(f"% FAIL: qps below floor {arguments.qps_floor}: "
                      f"{below}", file=sys.stderr)
                return 1
        return 0
    if arguments.ab:
        from repro.bench.ab import AB_QUERIES, format_ab_table, run_solve_ab

        scenarios = (
            arguments.scenarios.split(",") if arguments.scenarios else None
        )
        queries = (
            tuple(arguments.queries.split(",")) if arguments.queries
            else AB_QUERIES
        )
        payload = run_solve_ab(
            scenarios=scenarios,
            repeats=arguments.repeats,
            queries=queries,
            log=print_flush,
        )
        print(format_ab_table(payload))
        if arguments.json:
            path = write_benchmark_json(arguments.json, payload)
            print(f"% artifact written to {path}")
        return 0
    if not arguments.micro:
        print("nothing to do: pass --micro or --ab solve (paper-style "
              "tables live in benchmarks/, run them with pytest)",
              file=sys.stderr)
        return 2
    scenarios = arguments.scenarios.split(",") if arguments.scenarios else None
    queries = (
        tuple(arguments.queries.split(",")) if arguments.queries
        else MICRO_QUERIES
    )
    obs = _recorder_from(arguments)
    payload = run_micro(
        scenarios=scenarios,
        repeats=arguments.repeats,
        queries=queries,
        log=print_flush,
        obs=obs,
        exchange_strategy=arguments.exchange_strategy,
    )
    print(format_micro_table(payload))
    if arguments.json:
        path = write_benchmark_json(arguments.json, payload)
        print(f"% artifact written to {path}")
    _write_observability(arguments, obs)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XR-Certain query answering in data exchange "
        "(ten Cate, Halpert, Kolaitis, EDBT 2016).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def common(sub):
        sub.add_argument("-m", "--mapping", required=True,
                         help="schema mapping file (SOURCE/TARGET + rules)")
        sub.add_argument("-d", "--data", required=True,
                         help="source instance file (ground facts)")

    def observability(sub):
        sub.add_argument("--trace", metavar="PATH",
                         help="record nested phase spans and write the "
                         "JSON trace document to PATH (adds overhead; "
                         "answers are unchanged)")
        sub.add_argument("--metrics", metavar="PATH",
                         help="record work counters and write "
                         "Prometheus-style text to PATH")

    answer = commands.add_parser(
        "answer", aliases=["query"], help="answer a target query"
    )
    common(answer)
    answer.add_argument("-q", "--query", required=True,
                        help='query text, e.g. "q(x) :- T(x, y)."')
    answer.add_argument("--method", choices=("segmentary", "monolithic"),
                        default="segmentary")
    answer.add_argument("--possible", action="store_true",
                        help="brave (XR-Possible) instead of certain answers")
    answer.add_argument("--updates", metavar="PATH",
                        help="replay an update stream (lines '+Fact.' / "
                        "'-Fact.', blank-line-separated steps) through the "
                        "incremental maintenance layer before answering "
                        "(segmentary method only)")
    answer.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for signature solving "
                        "(segmentary method only; default 1 = in-process)")
    answer.add_argument("--solve-strategy",
                        choices=("per-signature", "incremental"),
                        default="incremental",
                        help="query-phase solve strategy (segmentary "
                        "method only): 'incremental' (default) decides "
                        "each cluster family on one shared solver with "
                        "learned-clause reuse; 'per-signature' is the "
                        "legacy one-engine-per-signature reference path")
    answer.add_argument("--exchange-strategy", choices=("batch", "tuple"),
                        default="batch",
                        help="exchange evaluation path: 'batch' (default) "
                        "runs the chase/groundings/violations as "
                        "set-at-a-time operators; 'tuple' is the "
                        "tuple-at-a-time reference path")
    answer.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget for the whole query; on "
                        "expiry undecided candidates are reported unknown "
                        "instead of solved (degraded answers)")
    answer.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-signature-program solve budget "
                        "(segmentary) / whole-solve budget (monolithic)")
    answer.add_argument("--retries", type=int, default=0, metavar="N",
                        help="re-dispatch attempts for tasks whose worker "
                        "process crashed (default 0)")
    observability(answer)
    answer.set_defaults(run=_command_answer)

    repairs = commands.add_parser("repairs", help="enumerate XR-solutions")
    common(repairs)
    repairs.add_argument("--limit", type=int, default=10)
    repairs.set_defaults(run=_command_repairs)

    check = commands.add_parser("check", help="exchange-phase consistency report")
    common(check)
    check.set_defaults(run=_command_check)

    fuzz = commands.add_parser(
        "fuzz", help="differential fuzzing across all engine configurations"
    )
    fuzz.add_argument("--seeds", type=int, default=100, metavar="N",
                      help="number of consecutive seeds to run (default 100)")
    fuzz.add_argument("--start", type=int, default=0, metavar="SEED",
                      help="first seed (default 0)")
    fuzz.add_argument("--profile",
                      choices=("mixed", "freeform", "ibench", "tpch"),
                      default="mixed", help="scenario generator profile")
    fuzz.add_argument("--exchange-strategy", choices=("batch", "tuple"),
                      default="batch",
                      help="exchange evaluation path every engine in the "
                      "matrix runs on; the opposite path is always "
                      "cross-checked by a dedicated axis (default batch)")
    fuzz.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="worker processes for the campaign (default 1)")
    fuzz.add_argument("--shrink", action="store_true",
                      help="delta-debug failures down to minimal repros")
    fuzz.add_argument("--corpus", metavar="DIR",
                      help="write failing repros into DIR for replay")
    fuzz.add_argument("--max-facts", type=int, default=8, metavar="N",
                      help="max source facts per scenario (default 8)")
    fuzz.add_argument("--conflict-rate", type=float, default=0.6,
                      metavar="RATE", help="constant-collision bias in [0, 1] "
                      "(higher = more egd conflicts; default 0.6)")
    fuzz.add_argument("--no-oracle", action="store_true",
                      help="skip the Definition 1 oracle (faster, weaker)")
    fuzz.add_argument("--no-parallel", action="store_true",
                      help="skip the parallel-executor engine axis")
    fuzz.add_argument("--updates", type=int, default=0, metavar="STEPS",
                      help="update-workload mode: per seed, generate a "
                      "STEPS-step random insert/retract stream and check "
                      "incremental maintenance against from-scratch "
                      "re-exchange at every step (answers, clusters, "
                      "envelopes)")
    fuzz.add_argument("--faults", action="store_true",
                      help="also inject seeded worker crashes/hangs per "
                      "scenario and check recovery + degradation "
                      "invariants (repro.fuzz.faults)")
    fuzz.set_defaults(run=_command_fuzz)

    serve = commands.add_parser(
        "serve", help="long-lived HTTP query service over one scenario"
    )
    serve.add_argument("-m", "--mapping",
                       help="schema mapping file (SOURCE/TARGET + rules)")
    serve.add_argument("-d", "--data",
                       help="source instance file (ground facts)")
    serve.add_argument("--scenario", metavar="S3",
                       help="serve a genomics micro-benchmark scenario "
                       "(size letter + suspect percent) instead of -m/-d")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port (default 8080; 0 = ephemeral)")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for signature solving "
                       "(default 1 = in-process)")
    serve.add_argument("--solve-strategy",
                       choices=("per-signature", "incremental"),
                       default="incremental",
                       help="query-phase solve strategy (default "
                       "incremental)")
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="per-request wall-clock ceiling; over-deadline "
                       "requests degrade (unknown candidates surfaced) "
                       "instead of failing")
    serve.add_argument("--task-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-signature-program solve ceiling")
    serve.add_argument("--retries", type=int, default=0, metavar="N",
                       help="re-dispatch attempts after worker crashes "
                       "(default 0)")
    serve.add_argument("--max-inflight", type=int, default=8, metavar="N",
                       help="concurrent query executions admitted "
                       "(default 8)")
    serve.add_argument("--max-queue", type=int, default=16, metavar="N",
                       help="requests allowed to wait for a slot; beyond "
                       "this, immediate 429 (default 16)")
    serve.add_argument("--queue-timeout", type=float, default=2.0,
                       metavar="SECONDS",
                       help="max wait for an execution slot before 429 "
                       "(default 2.0)")
    serve.set_defaults(run=_command_serve)

    bench = commands.add_parser(
        "bench", help="micro-benchmarks of the deterministic hot paths"
    )
    bench.add_argument("--micro", action="store_true",
                       help="run the exchange/program-build/solve "
                       "micro-benchmark grid")
    bench.add_argument("--ab", choices=("solve",), metavar="solve",
                       help="A/B the per-signature vs incremental solve "
                       "strategies under identical artifacts/budgets "
                       "(answers cross-checked; default grid M10,M20,"
                       "L10,L20 over ep2,xr2)")
    bench.add_argument("--scenarios", metavar="S0,M9,...",
                       help="comma-separated scenario names: genomics cells "
                       "(size letter + suspect percent) and/or TPC-H cells "
                       "(tpch-sfS-rR); default: S/M/L × 0/3/9/20 plus the "
                       "small TPC-H cells")
    bench.add_argument("--exchange-strategy", choices=("batch", "tuple"),
                       default="batch",
                       help="chase/grounding/violation engine for the "
                       "measured exchange stage (the batch-vs-tuple series "
                       "always measures both; default batch)")
    bench.add_argument("--repeats", type=int, default=3, metavar="N",
                       help="repeats per scenario; medians are reported "
                       "(default 3)")
    bench.add_argument("--queries", metavar="ep2,xr2,...",
                       help="comma-separated Table 3 query names for the "
                       "query-phase stages (default ep2,xr2,xr4)")
    bench.add_argument("--json", metavar="PATH",
                       help="write the artifact payload to PATH")
    bench.add_argument("--serve", action="store_true",
                       help="load-test the serving tier: N client threads "
                       "over the genomics grid, p50/p99 latency + "
                       "sustained QPS (BENCH_PR9.json)")
    bench.add_argument("--clients", type=int, default=8, metavar="N",
                       help="concurrent client threads for --serve "
                       "(default 8)")
    bench.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="server-side worker processes for --serve "
                       "(default 1)")
    bench.add_argument("--duration", type=float, default=5.0,
                       metavar="SECONDS",
                       help="measured window per scenario for --serve "
                       "(default 5.0)")
    bench.add_argument("--warmup", type=float, default=1.0,
                       metavar="SECONDS",
                       help="warmup excluded from --serve percentiles "
                       "(default 1.0)")
    bench.add_argument("--url", metavar="http://HOST:PORT",
                       help="target an externally-booted server instead "
                       "of in-process ones (--serve only; CI smoke)")
    bench.add_argument("--qps-floor", type=float, default=None,
                       metavar="QPS",
                       help="exit non-zero when any --serve scenario "
                       "sustains less than this (CI enforcement)")
    observability(bench)
    bench.set_defaults(run=_command_bench)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    return arguments.run(arguments)


if __name__ == "__main__":
    sys.exit(main())
