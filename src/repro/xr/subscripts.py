"""Subscripted relation copies used by the Figure 1 program.

The program of Theorem 2 introduces, for each relation ``R``, the copies
``Rd`` ("deleted"), ``Rr`` ("remains"), and — for target relations — ``Ri``
("incidentally deleted").  We realize them with name suffixes on facts.
"""

from __future__ import annotations

from repro.relational.instance import Fact

SUB_DELETED = "__d"
SUB_REMAINS = "__r"
SUB_INCIDENTAL = "__i"

_ALL_SUFFIXES = (SUB_DELETED, SUB_REMAINS, SUB_INCIDENTAL)


def deleted(fact: Fact) -> Fact:
    """The ``Rd`` copy of a fact."""
    return Fact(fact.relation + SUB_DELETED, fact.args)


def remains(fact: Fact) -> Fact:
    """The ``Rr`` copy of a fact."""
    return Fact(fact.relation + SUB_REMAINS, fact.args)


def incidental(fact: Fact) -> Fact:
    """The ``Ri`` copy of a fact."""
    return Fact(fact.relation + SUB_INCIDENTAL, fact.args)


def base_relation(relation: str) -> str:
    """Strip a subscript suffix, if any."""
    for suffix in _ALL_SUFFIXES:
        if relation.endswith(suffix):
            return relation[: -len(suffix)]
    return relation


def is_subscripted(relation: str) -> bool:
    return any(relation.endswith(suffix) for suffix in _ALL_SUFFIXES)
