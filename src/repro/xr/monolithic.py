"""The monolithic engine (Sections 4–5).

One large disjunctive logic program per query: the full Figure 1 grounding
over the entire instance, plus the query rules, handed to the stable-model
solver for cautious reasoning.  As the paper's experiments show, the cost of
the exchange is embedded in every single query — this engine exists both as
the reference implementation of Theorem 2 / Corollary 1 and as the baseline
the segmentary engine is measured against.

Resource governance mirrors the segmentary engine, with a coarser grain:
there is only one program, so when a configured
:class:`~repro.runtime.SolveBudget` cuts its solve off, *every*
solver-decided candidate becomes unknown at once.  With ``allow_partial``
the engine still returns something sound — the trivially-certain answers
(an under-approximation) in certain mode, all candidate answers (an
over-approximation) in possible mode — and lists the undecided candidates
in ``last_stats.unknown_candidates``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.asp.reasoning import brave_consequences, cautious_consequences
from repro.dependencies.mapping import SchemaMapping
from repro.obs.recorder import NOOP_RECORDER, Recorder
from repro.reduction.reduce import ReducedMapping, reduce_mapping
from repro.relational.instance import Instance
from repro.relational.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.runtime.budget import NO_BUDGET, SolveBudget, SolveBudgetExceeded
from repro.xr.exchange import build_exchange_data
from repro.xr.program import build_xr_program
from repro.xr.queries import answers_from_facts, ground_query


@dataclass
class MonolithicStats:
    """Size and degradation diagnostics of the last program solved."""

    atoms: int = 0
    rules: int = 0
    candidates: int = 0
    # Budget degradation (empty/False without a configured budget).
    degraded: bool = False
    unknown_candidates: set[tuple] = field(default_factory=set)

    def copy(self) -> "MonolithicStats":
        """An independent deep copy (no shared mutable containers)."""
        return replace(
            self, unknown_candidates=set(self.unknown_candidates)
        )


class MonolithicEngine:
    """XR-Certain query answering with a single program per query.

    Accepts any ``glav+(wa-glav, egd)`` schema mapping; the Theorem 1
    reduction is applied internally.  Every :meth:`answer` call performs the
    full pipeline (reduction output is cached; the chase and the program are
    rebuilt per query — the monolithic cost model of the paper).
    """

    def __init__(
        self,
        mapping: SchemaMapping | ReducedMapping,
        instance: Instance,
        encoding: str = "repair",
        budget: SolveBudget | None = None,
        obs: Recorder | None = None,
        exchange_strategy: str = "batch",
    ):
        if isinstance(mapping, ReducedMapping):
            self.reduced = mapping
        else:
            self.reduced = reduce_mapping(mapping)
        self.instance = instance
        self.encoding = encoding
        if exchange_strategy not in ("batch", "tuple"):
            raise ValueError(
                f"unknown exchange strategy {exchange_strategy!r}; choose "
                "'batch' or 'tuple'"
            )
        self.exchange_strategy = exchange_strategy
        self.budget = budget if budget is not None else NO_BUDGET
        self.obs = obs if obs is not None else NOOP_RECORDER
        self._last_stats = MonolithicStats()

    @property
    def last_stats(self) -> MonolithicStats:
        """Diagnostics of the most recent query, as an independent copy.

        Published in a single assignment per query (never mutated in place
        after publication) and handed out as fresh copies, so a caller
        holding one can never see it change under a later query — and
        can't corrupt the engine's snapshot by mutating it either.
        """
        return self._last_stats.copy()

    @last_stats.setter
    def last_stats(self, stats: MonolithicStats) -> None:
        self._last_stats = stats.copy()

    def answer(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        allow_partial: bool = False,
    ) -> set[tuple]:
        """The XR-Certain answers to ``query`` (a set of constant tuples)."""
        return self._answer(query, mode="certain", allow_partial=allow_partial)

    def possible_answers(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        allow_partial: bool = False,
    ) -> set[tuple]:
        """The XR-Possible answers: tuples holding in *some* XR-solution.

        The brave counterpart of XR-Certain — the union instead of the
        intersection over exchange-repair solutions.
        """
        return self._answer(query, mode="possible", allow_partial=allow_partial)

    def _answer(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        mode: str,
        allow_partial: bool = False,
    ) -> set[tuple]:
        tracer, metrics = self.obs.tracer, self.obs.metrics
        with tracer.span("monolithic", mode=mode):
            with tracer.span("monolithic.build"):
                rewritten = self.reduced.rewrite(query)
                data = build_exchange_data(
                    self.reduced.gav,
                    self.instance,
                    obs=self.obs,
                    strategy=self.exchange_strategy,
                )
                query_groundings = ground_query(rewritten, data.chased)
                xr_program = build_xr_program(
                    data,
                    query_groundings=query_groundings,
                    encoding=self.encoding,
                )

            stats = MonolithicStats(
                atoms=xr_program.program.num_atoms,
                rules=len(xr_program.program),
                candidates=len(xr_program.query_atoms),
            )
            if metrics.enabled:
                metrics.inc("monolithic_programs_total")
                metrics.inc("monolithic_atoms_total", stats.atoms)
                metrics.inc("monolithic_rules_total", stats.rules)
                metrics.inc("monolithic_candidates_total", stats.candidates)

            if not xr_program.query_atoms:
                self._last_stats = stats.copy()
                return set()
            reason = (
                cautious_consequences
                if mode == "certain"
                else brave_consequences
            )
            deadline = self.budget.single_solve_deadline()
            try:
                with tracer.span("monolithic.solve"):
                    decided = reason(
                        xr_program.program,
                        xr_program.query_atoms.values(),
                        deadline=deadline,
                    )
            except SolveBudgetExceeded:
                if not allow_partial:
                    self._last_stats = stats.copy()
                    raise
                # The one big solve was cut off: every solver-decided
                # candidate is unknown.  Certain mode keeps only the sound
                # floor (trivially-certain candidates); possible mode
                # keeps the sound ceiling (all candidates).
                unknown = {
                    fact
                    for fact in xr_program.query_atoms
                    if fact not in xr_program.trivially_certain
                }
                stats.degraded = True
                stats.unknown_candidates = answers_from_facts(unknown)
                if metrics.enabled:
                    metrics.inc("budget_degraded_queries_total")
                accepted = set(xr_program.trivially_certain)
                if mode == "possible":
                    accepted |= unknown
                self._last_stats = stats.copy()
                return answers_from_facts(accepted)
            if decided is None:
                # No stable model means no XR-solution; cannot happen
                # because the empty sub-instance always has a solution,
                # but stay defensive.
                raise RuntimeError("the XR program has no stable model")
            accepted = {
                fact
                for fact, atom_id in xr_program.query_atoms.items()
                if atom_id in decided
            }
            accepted |= xr_program.trivially_certain
            self._last_stats = stats.copy()
            return answers_from_facts(accepted)
