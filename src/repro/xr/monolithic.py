"""The monolithic engine (Sections 4–5).

One large disjunctive logic program per query: the full Figure 1 grounding
over the entire instance, plus the query rules, handed to the stable-model
solver for cautious reasoning.  As the paper's experiments show, the cost of
the exchange is embedded in every single query — this engine exists both as
the reference implementation of Theorem 2 / Corollary 1 and as the baseline
the segmentary engine is measured against.

Resource governance mirrors the segmentary engine, with a coarser grain:
there is only one program, so when a configured
:class:`~repro.runtime.SolveBudget` cuts its solve off, *every*
solver-decided candidate becomes unknown at once.  With ``allow_partial``
the engine still returns something sound — the trivially-certain answers
(an under-approximation) in certain mode, all candidate answers (an
over-approximation) in possible mode — and lists the undecided candidates
in ``last_stats.unknown_candidates``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asp.reasoning import brave_consequences, cautious_consequences
from repro.dependencies.mapping import SchemaMapping
from repro.reduction.reduce import ReducedMapping, reduce_mapping
from repro.relational.instance import Instance
from repro.relational.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.runtime.budget import NO_BUDGET, SolveBudget, SolveBudgetExceeded
from repro.xr.exchange import build_exchange_data
from repro.xr.program import build_xr_program
from repro.xr.queries import answers_from_facts, ground_query


@dataclass
class MonolithicStats:
    """Size and degradation diagnostics of the last program solved."""

    atoms: int = 0
    rules: int = 0
    candidates: int = 0
    # Budget degradation (empty/False without a configured budget).
    degraded: bool = False
    unknown_candidates: set[tuple] = field(default_factory=set)


class MonolithicEngine:
    """XR-Certain query answering with a single program per query.

    Accepts any ``glav+(wa-glav, egd)`` schema mapping; the Theorem 1
    reduction is applied internally.  Every :meth:`answer` call performs the
    full pipeline (reduction output is cached; the chase and the program are
    rebuilt per query — the monolithic cost model of the paper).
    """

    def __init__(
        self,
        mapping: SchemaMapping | ReducedMapping,
        instance: Instance,
        encoding: str = "repair",
        budget: SolveBudget | None = None,
    ):
        if isinstance(mapping, ReducedMapping):
            self.reduced = mapping
        else:
            self.reduced = reduce_mapping(mapping)
        self.instance = instance
        self.encoding = encoding
        self.budget = budget if budget is not None else NO_BUDGET
        self.last_stats = MonolithicStats()

    def answer(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        allow_partial: bool = False,
    ) -> set[tuple]:
        """The XR-Certain answers to ``query`` (a set of constant tuples)."""
        return self._answer(query, mode="certain", allow_partial=allow_partial)

    def possible_answers(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        allow_partial: bool = False,
    ) -> set[tuple]:
        """The XR-Possible answers: tuples holding in *some* XR-solution.

        The brave counterpart of XR-Certain — the union instead of the
        intersection over exchange-repair solutions.
        """
        return self._answer(query, mode="possible", allow_partial=allow_partial)

    def _answer(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        mode: str,
        allow_partial: bool = False,
    ) -> set[tuple]:
        rewritten = self.reduced.rewrite(query)
        data = build_exchange_data(self.reduced.gav, self.instance)
        query_groundings = ground_query(rewritten, data.chased)
        xr_program = build_xr_program(
            data, query_groundings=query_groundings, encoding=self.encoding
        )

        self.last_stats = MonolithicStats(
            atoms=xr_program.program.num_atoms,
            rules=len(xr_program.program),
            candidates=len(xr_program.query_atoms),
        )

        if not xr_program.query_atoms:
            return set()
        reason = cautious_consequences if mode == "certain" else brave_consequences
        deadline = self.budget.single_solve_deadline()
        try:
            decided = reason(
                xr_program.program,
                xr_program.query_atoms.values(),
                deadline=deadline,
            )
        except SolveBudgetExceeded:
            if not allow_partial:
                raise
            # The one big solve was cut off: every solver-decided
            # candidate is unknown.  Certain mode keeps only the sound
            # floor (trivially-certain candidates); possible mode keeps
            # the sound ceiling (all candidates).
            unknown = {
                fact
                for fact in xr_program.query_atoms
                if fact not in xr_program.trivially_certain
            }
            self.last_stats.degraded = True
            self.last_stats.unknown_candidates = answers_from_facts(unknown)
            accepted = set(xr_program.trivially_certain)
            if mode == "possible":
                accepted |= unknown
            return answers_from_facts(accepted)
        if decided is None:
            # No stable model means no XR-solution; cannot happen because the
            # empty sub-instance always has a solution, but stay defensive.
            raise RuntimeError("the XR program has no stable model")
        accepted = {
            fact
            for fact, atom_id in xr_program.query_atoms.items()
            if atom_id in decided
        }
        accepted |= xr_program.trivially_certain
        return answers_from_facts(accepted)
