"""The monolithic engine (Sections 4–5).

One large disjunctive logic program per query: the full Figure 1 grounding
over the entire instance, plus the query rules, handed to the stable-model
solver for cautious reasoning.  As the paper's experiments show, the cost of
the exchange is embedded in every single query — this engine exists both as
the reference implementation of Theorem 2 / Corollary 1 and as the baseline
the segmentary engine is measured against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asp.reasoning import brave_consequences, cautious_consequences
from repro.dependencies.mapping import SchemaMapping
from repro.reduction.reduce import ReducedMapping, reduce_mapping
from repro.relational.instance import Instance
from repro.relational.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.xr.exchange import build_exchange_data
from repro.xr.program import build_xr_program
from repro.xr.queries import answers_from_facts, ground_query


@dataclass
class MonolithicStats:
    """Size diagnostics of the last program solved."""

    atoms: int = 0
    rules: int = 0
    candidates: int = 0


class MonolithicEngine:
    """XR-Certain query answering with a single program per query.

    Accepts any ``glav+(wa-glav, egd)`` schema mapping; the Theorem 1
    reduction is applied internally.  Every :meth:`answer` call performs the
    full pipeline (reduction output is cached; the chase and the program are
    rebuilt per query — the monolithic cost model of the paper).
    """

    def __init__(
        self,
        mapping: SchemaMapping | ReducedMapping,
        instance: Instance,
        encoding: str = "repair",
    ):
        if isinstance(mapping, ReducedMapping):
            self.reduced = mapping
        else:
            self.reduced = reduce_mapping(mapping)
        self.instance = instance
        self.encoding = encoding
        self.last_stats = MonolithicStats()

    def answer(
        self, query: ConjunctiveQuery | UnionOfConjunctiveQueries
    ) -> set[tuple]:
        """The XR-Certain answers to ``query`` (a set of constant tuples)."""
        return self._answer(query, mode="certain")

    def possible_answers(
        self, query: ConjunctiveQuery | UnionOfConjunctiveQueries
    ) -> set[tuple]:
        """The XR-Possible answers: tuples holding in *some* XR-solution.

        The brave counterpart of XR-Certain — the union instead of the
        intersection over exchange-repair solutions.
        """
        return self._answer(query, mode="possible")

    def _answer(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        mode: str,
    ) -> set[tuple]:
        rewritten = self.reduced.rewrite(query)
        data = build_exchange_data(self.reduced.gav, self.instance)
        query_groundings = ground_query(rewritten, data.chased)
        xr_program = build_xr_program(
            data, query_groundings=query_groundings, encoding=self.encoding
        )

        self.last_stats = MonolithicStats(
            atoms=xr_program.program.num_atoms,
            rules=len(xr_program.program),
            candidates=len(xr_program.query_atoms),
        )

        if not xr_program.query_atoms:
            return set()
        reason = cautious_consequences if mode == "certain" else brave_consequences
        decided = reason(xr_program.program, xr_program.query_atoms.values())
        if decided is None:
            # No stable model means no XR-solution; cannot happen because the
            # empty sub-instance always has a solution, but stay defensive.
            raise RuntimeError("the XR program has no stable model")
        accepted = {
            fact
            for fact, atom_id in xr_program.query_atoms.items()
            if atom_id in decided
        }
        accepted |= xr_program.trivially_certain
        return answers_from_facts(accepted)
