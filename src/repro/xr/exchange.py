"""Shared exchange computation: quasi-solution, groundings, violations.

Both engines start the same way (for a reduced ``gav+(gav, egd)`` mapping):

- chase the source instance with the tgds only — the **canonical
  quasi-solution** of Definition 2;
- enumerate every grounding of every tgd over the chased instance — these
  are the **support sets** of Definition 4;
- enumerate every grounded egd with a satisfied body, and mark as
  **violations** those whose equality fails (for constants-only egds, only
  clashes between two distinct constants count — skolem values stand for
  nulls, which the original chase would simply unify).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.chase.gav import enumerate_groundings, gav_chase
from repro.dependencies.egds import EGD
from repro.obs.recorder import NOOP_RECORDER, Recorder
from repro.dependencies.mapping import SchemaMapping
from repro.dependencies.tgds import TGD
from repro.relational.instance import Fact, Instance
from repro.relational.queries import match_atoms
from repro.relational.terms import Variable, is_constant_value


@dataclass(frozen=True)
class Violation:
    """A grounded egd with satisfied body and a failing equality."""

    egd: EGD
    body_facts: tuple[Fact, ...]
    lhs_value: object
    rhs_value: object

    def __repr__(self) -> str:
        return (
            f"Violation({self.egd.label}: {self.lhs_value!r} ≠ {self.rhs_value!r} "
            f"from {list(self.body_facts)})"
        )


@dataclass
class ExchangeData:
    """The query-independent exchange computation for a gav mapping.

    Besides the fact-level artifacts (chase, groundings, violations), the
    exchange data owns an **interned integer universe**: every chased fact
    gets a dense id, and all adjacency needed by the closures and program
    builders is precomputed as int-keyed arrays — ``groundings_by_head``
    (grounding indexes with the fact as head; support sets flowing
    *backward*), ``occurs_in_body`` (grounding indexes with the fact in
    the body; influence flowing *forward*), and ``violations_by_fact``.
    Downstream hot loops traverse these arrays instead of re-hashing
    :class:`Fact` tuples or rescanning the grounding/violation lists.
    """

    mapping: SchemaMapping
    source_instance: Instance
    chased: Instance  # I ∪ J: source facts plus the canonical quasi-solution
    groundings: list[tuple[TGD, tuple[Fact, ...], Fact]]
    violations: list[Violation]
    # fact -> indexes into `groundings` with the fact in the body (supports
    # flowing *forward*) and with the fact as the head (supports of the fact).
    supports_of: dict[Fact, list[int]] = field(default_factory=dict)
    occurs_in_body_of: dict[Fact, list[int]] = field(default_factory=dict)
    # ----------------------------------------------- interned universe
    # fact -> dense id (0-based) and its inverse.
    fact_ids: dict[Fact, int] = field(default_factory=dict)
    facts_by_id: list[Fact] = field(default_factory=list)
    # Per grounding: deduplicated body fact ids (first-occurrence order)
    # and the head fact id.
    grounding_bodies: list[tuple[int, ...]] = field(default_factory=list)
    grounding_heads: list[int] = field(default_factory=list)
    # fact id -> grounding indexes (head side / body side).
    groundings_by_head: list[list[int]] = field(default_factory=list)
    occurs_in_body: list[list[int]] = field(default_factory=list)
    # Per violation: deduplicated body fact ids; fact id -> violation idxs.
    violation_bodies: list[tuple[int, ...]] = field(default_factory=list)
    violations_by_fact: list[list[int]] = field(default_factory=list)
    # fact id -> True iff the fact belongs to a source relation.
    source_id_mask: list[bool] = field(default_factory=list)
    # Memoized per-fact forward closures (influence of a single fact);
    # shared by every program build over this exchange data.
    _influence_cache: dict[int, frozenset[int]] = field(default_factory=dict)
    _source_names: frozenset[str] = field(
        default_factory=frozenset, init=False, repr=False
    )

    def __post_init__(self) -> None:
        self._source_names = frozenset(self.mapping.source.names())

    @property
    def source_facts(self) -> set[Fact]:
        return set(self.source_instance)

    def target_facts(self) -> set[Fact]:
        source_names = self.mapping.source.names()
        return {f for f in self.chased if f.relation not in source_names}

    def quasi_solution(self) -> Instance:
        """The canonical quasi-solution (target restriction of the chase)."""
        return self.chased.restrict(self.mapping.target.names())

    # ------------------------------------------------- interning helpers

    def intern_fact(self, fact: Fact) -> int:
        """The id of ``fact``, extending the universe if it is new.

        Facts outside the chased instance (only seen when callers pass
        hand-built focus/safe sets) get fresh ids with empty adjacency, so
        membership tests against them behave like the old set-of-Fact
        code paths.
        """
        fact_id = self.fact_ids.get(fact)
        if fact_id is None:
            fact_id = len(self.facts_by_id)
            self.fact_ids[fact] = fact_id
            self.facts_by_id.append(fact)
            self.groundings_by_head.append([])
            self.occurs_in_body.append([])
            self.violations_by_fact.append([])
            self.source_id_mask.append(fact.relation in self._source_names)
        return fact_id

    def id_of(self, fact: Fact) -> int | None:
        return self.fact_ids.get(fact)

    def fact_of(self, fact_id: int) -> Fact:
        return self.facts_by_id[fact_id]

    def id_set(self, facts) -> set[int]:
        """Intern a collection of facts into a set of ids."""
        intern = self.intern_fact
        return {intern(fact) for fact in facts}

    def violation_body_ids(self, violation: Violation) -> tuple[int, ...]:
        """The deduplicated body fact ids of one violation."""
        return tuple(
            dict.fromkeys(self.intern_fact(f) for f in violation.body_facts)
        )

    def update_session(self, analysis=None, cache=None, obs=None):
        """An :class:`~repro.incremental.UpdateSession` over this data.

        Convenience constructor; see :mod:`repro.incremental` for the
        delta-chase and live cluster-maintenance machinery behind it.
        """
        from repro.incremental import UpdateSession

        return UpdateSession(self, analysis=analysis, cache=cache, obs=obs)

    def influence_ids_of(self, fact_id: int) -> frozenset[int]:
        """Forward closure of one fact through support sets, memoized.

        The per-suspect side chases of the repair program and the
        envelope influences both need these; caching them means each
        fact's closure is walked at most once per exchange.
        """
        cached = self._influence_cache.get(fact_id)
        if cached is not None:
            return cached
        influenced = {fact_id}
        frontier = [fact_id]
        occurs = self.occurs_in_body
        heads = self.grounding_heads
        while frontier:
            current = frontier.pop()
            for index in occurs[current]:
                head_id = heads[index]
                if head_id not in influenced:
                    influenced.add(head_id)
                    frontier.append(head_id)
        result = frozenset(influenced)
        self._influence_cache[fact_id] = result
        return result


def violation_key(
    violation: Violation,
) -> tuple[str, frozenset[Fact], frozenset]:
    """The canonical identity of a violation, independent of orientation.

    Symmetric bindings of one grounded egd (swapping the roles of the two
    offending values) describe the same violation; the key canonicalizes
    them so both :func:`find_violations` and the incremental violation
    maintenance of :mod:`repro.incremental` dedup identically.
    """
    if violation.egd.symmetric:
        # Canonicalize the two orientations of a symmetric egd
        # (e.g. EQ(a, b) vs EQ(b, a)) into one violation.
        key_body = frozenset(
            Fact(fact.relation, tuple(sorted(fact.args, key=repr)))
            for fact in violation.body_facts
        )
    else:
        key_body = frozenset(violation.body_facts)
    return (
        violation.egd.label,
        key_body,
        frozenset((violation.lhs_value, violation.rhs_value)),
    )


def grounded_egd_violation(
    egd: EGD, binding: dict[Variable, object]
) -> Violation | None:
    """The violation of one grounded egd body, or None if it is satisfied.

    For constants-only egds, only clashes between two distinct constants
    count — skolem values stand for nulls, which the original chase would
    simply unify.
    """
    lhs_value = binding[egd.lhs]
    rhs_value = (
        binding[egd.rhs] if isinstance(egd.rhs, Variable) else egd.rhs.value
    )
    if lhs_value == rhs_value:
        return None
    if egd.constants_only and not (
        is_constant_value(lhs_value) and is_constant_value(rhs_value)
    ):
        return None
    body_facts = tuple(atom.substitute(binding) for atom in egd.body)
    return Violation(egd, body_facts, lhs_value, rhs_value)


def canonicalize_violations(violations: list[Violation]) -> list[Violation]:
    """One canonical representative per :func:`violation_key`, sorted.

    Symmetric egds ground in two orientations and different evaluation
    strategies encounter them in different orders; keeping the repr-least
    representative (instead of the first encountered) and sorting the
    result makes the violation list a pure function of the violation *set*
    — the keystone of batch-vs-tuple bit-identity.
    """
    best: dict[tuple, tuple[str, Violation]] = {}
    for violation in violations:
        key = violation_key(violation)
        ranked = (repr(violation), violation)
        current = best.get(key)
        if current is None or ranked[0] < current[0]:
            best[key] = ranked
    return [
        violation
        for _text, violation in sorted(
            best.values(), key=lambda ranked: ranked[0]
        )
    ]


def find_violations(mapping: SchemaMapping, chased: Instance) -> list[Violation]:
    """All grounded-egd violations over the chased instance (Definition 5)."""
    violations: list[Violation] = []
    for egd in mapping.target_egds:
        for binding in match_atoms(chased, list(egd.body)):
            violation = grounded_egd_violation(egd, binding)
            if violation is not None:
                violations.append(violation)
    return canonicalize_violations(violations)


EXCHANGE_STRATEGIES = ("batch", "tuple")


def build_exchange_data(
    mapping: SchemaMapping,
    source_instance: Instance,
    timings: dict[str, float] | None = None,
    obs: Recorder | None = None,
    strategy: str = "batch",
) -> ExchangeData:
    """Chase, ground, and detect violations for a ``gav+(gav, egd)`` mapping.

    ``strategy`` selects the evaluation engine for the chase, grounding
    enumeration, and violation detection: ``"batch"`` (the default) runs
    the set-at-a-time operators of :mod:`repro.chase.batch`; ``"tuple"``
    is the original per-tuple nested-loop path, kept as the differential
    reference.  Both produce **bit-identical** exchange data: each
    computes the same unique least fixpoint / grounding set / violation
    set, and the lists and the interned id universe are put in canonical
    (sorted) order regardless of the evaluation order that found them.

    When ``timings`` is a dict, per-stage wall-clock seconds are recorded
    into it under ``chase`` / ``groundings`` / ``violations`` / ``index``
    (used by the micro-benchmarks; answer-neutral).  ``obs`` (a
    :class:`~repro.obs.Recorder`) additionally records one child span per
    stage plus the deterministic work counters (chase rounds, chased
    facts, groundings, violations) — equally answer-neutral.
    """
    if strategy not in EXCHANGE_STRATEGIES:
        raise ValueError(
            f"unknown exchange strategy {strategy!r}; "
            f"expected one of {EXCHANGE_STRATEGIES}"
        )
    if not mapping.is_gav_gav_egd():
        raise ValueError(
            "exchange data requires a gav+(gav, egd) mapping; "
            "run reduce_mapping first"
        )
    if obs is None:
        obs = NOOP_RECORDER
    tracer, metrics = obs.tracer, obs.metrics
    clock = time.perf_counter
    tgds = list(mapping.all_tgds())
    chase_stats: dict[str, int] | None = {} if metrics.enabled else None
    started = clock()
    if strategy == "batch":
        from repro.chase.batch import (
            batch_chase,
            enumerate_groundings_batch,
            find_violations_batch,
        )

        with tracer.span("exchange.chase"):
            chased = batch_chase(source_instance, tgds, stats=chase_stats)
        chased_at = clock()
        with tracer.span("exchange.groundings"):
            groundings = list(enumerate_groundings_batch(tgds, chased))
        grounded_at = clock()
        with tracer.span("exchange.violations"):
            violations = canonicalize_violations(
                find_violations_batch(mapping.target_egds, chased)
            )
        violations_at = clock()
    else:
        with tracer.span("exchange.chase"):
            chased = gav_chase(source_instance, tgds, stats=chase_stats)
        chased_at = clock()
        with tracer.span("exchange.groundings"):
            groundings = list(enumerate_groundings(tgds, chased))
        grounded_at = clock()
        with tracer.span("exchange.violations"):
            violations = find_violations(mapping, chased)
        violations_at = clock()
    data = ExchangeData(
        mapping=mapping,
        source_instance=source_instance,
        chased=chased,
        groundings=groundings,
        violations=violations,
    )
    with tracer.span("exchange.index"):
        # Canonical grounding order: rule position, then head/body reprs.
        # Violations are already canonical (canonicalize_violations); the
        # chased facts are interned in sorted order by _build_fact_indexes.
        # After this, every list and id in the exchange data is a pure
        # function of the computed *sets* — strategy-independent.
        rule_positions = {id(rule): index for index, rule in enumerate(tgds)}
        fact_reprs: dict[Fact, str] = {}

        def _repr_of(fact: Fact) -> str:
            text = fact_reprs.get(fact)
            if text is None:
                text = fact_reprs[fact] = repr(fact)
            return text

        groundings.sort(
            key=lambda grounding: (
                rule_positions[id(grounding[0])],
                _repr_of(grounding[2]),
                tuple(_repr_of(fact) for fact in grounding[1]),
            )
        )
        _build_fact_indexes(data)
    if timings is not None:
        indexed_at = clock()
        timings["chase"] = chased_at - started
        timings["groundings"] = grounded_at - chased_at
        timings["violations"] = violations_at - grounded_at
        timings["index"] = indexed_at - violations_at
    if chase_stats is not None:
        metrics.counter("exchange_chase_rounds_total").inc(
            chase_stats.get("rounds", 0)
        )
        metrics.counter("exchange_chase_derived_facts_total").inc(
            chase_stats.get("derived_facts", 0)
        )
        metrics.counter("exchange_source_facts_total").inc(len(source_instance))
        metrics.counter("exchange_chased_facts_total").inc(len(chased))
        metrics.counter("exchange_groundings_total").inc(len(groundings))
        metrics.counter("exchange_violations_total").inc(len(violations))
    return data


def _build_fact_indexes(data: ExchangeData) -> None:
    """Intern the chased facts and build every int-keyed adjacency index.

    One pass over the chase, one over the groundings, one over the
    violations; everything downstream (closures, envelopes, program
    builders) then works on dense ids.  The legacy fact-keyed
    ``supports_of`` / ``occurs_in_body_of`` views are populated from the
    same pass for external callers.
    """
    intern = data.intern_fact
    # Sorted interning gives fresh builds a canonical id universe (the
    # same for every evaluation strategy); on a rebuild the ids already
    # exist and interning is an order-insensitive no-op lookup.
    for fact in sorted(data.chased, key=repr):
        intern(fact)

    groundings_by_head = data.groundings_by_head
    occurs_in_body = data.occurs_in_body
    supports_of = data.supports_of
    occurs_in_body_of = data.occurs_in_body_of
    # The fact-keyed views *alias* the id-keyed rows (same list objects),
    # so the incremental mutators below keep both in sync with one write.
    for index, (_rule, body_facts, head_fact) in enumerate(data.groundings):
        head_id = intern(head_fact)
        body_ids = tuple(dict.fromkeys(intern(f) for f in body_facts))
        data.grounding_bodies.append(body_ids)
        data.grounding_heads.append(head_id)
        groundings_by_head[head_id].append(index)
        supports_of[head_fact] = groundings_by_head[head_id]
        for body_id in body_ids:
            occurs_in_body[body_id].append(index)
            occurs_in_body_of[data.facts_by_id[body_id]] = occurs_in_body[
                body_id
            ]

    violations_by_fact = data.violations_by_fact
    for index, violation in enumerate(data.violations):
        body_ids = tuple(
            dict.fromkeys(intern(f) for f in violation.body_facts)
        )
        data.violation_bodies.append(body_ids)
        for body_id in body_ids:
            violations_by_fact[body_id].append(index)


def rebuild_fact_indexes(data: ExchangeData) -> None:
    """Re-derive every adjacency index from the current fact-level state.

    Used by :mod:`repro.incremental` after a delta mutates ``chased`` /
    ``groundings`` / ``violations`` in place.  Fact ids are **stable**:
    ``fact_ids`` / ``facts_by_id`` are kept (retracted facts keep their id
    with empty adjacency rows), so every id-keyed artifact computed before
    the delta — cluster envelopes, signatures, cache keys — remains
    meaningful afterwards.  One linear pass over groundings + violations;
    no joins are re-run.
    """
    for rows in (
        data.groundings_by_head,
        data.occurs_in_body,
        data.violations_by_fact,
    ):
        for row in rows:
            row.clear()
    data.grounding_bodies.clear()
    data.grounding_heads.clear()
    data.violation_bodies.clear()
    data.supports_of.clear()
    data.occurs_in_body_of.clear()
    data._influence_cache.clear()
    _build_fact_indexes(data)


def remove_groundings(data: ExchangeData, positions: set[int]) -> None:
    """Remove groundings by position, maintaining every adjacency index.

    Swap-remove: the hole left by a removed grounding is filled with the
    list's last element, whose (single) position change is patched into
    the per-fact rows — O(delta × row-size) instead of a full rebuild.
    Grounding order is not meaningful (every consumer treats the list as
    a set), so the reordering is invisible.  Positions are processed in
    descending order, which keeps the swap source out of the removal set.
    """
    groundings = data.groundings
    bodies = data.grounding_bodies
    heads = data.grounding_heads
    by_head = data.groundings_by_head
    occurs = data.occurs_in_body
    for index in sorted(positions, reverse=True):
        by_head[heads[index]].remove(index)
        for body_id in bodies[index]:
            occurs[body_id].remove(index)
        last = len(groundings) - 1
        if index != last:
            groundings[index] = groundings[last]
            bodies[index] = bodies[last]
            heads[index] = heads[last]
            row = by_head[heads[index]]
            row[row.index(last)] = index
            for body_id in bodies[index]:
                row = occurs[body_id]
                row[row.index(last)] = index
        groundings.pop()
        bodies.pop()
        heads.pop()


def remove_violations(data: ExchangeData, positions: set[int]) -> None:
    """Remove violations by position (swap-remove, as for groundings)."""
    violations = data.violations
    bodies = data.violation_bodies
    by_fact = data.violations_by_fact
    for index in sorted(positions, reverse=True):
        for body_id in bodies[index]:
            by_fact[body_id].remove(index)
        last = len(violations) - 1
        if index != last:
            violations[index] = violations[last]
            bodies[index] = bodies[last]
            for body_id in bodies[index]:
                row = by_fact[body_id]
                row[row.index(last)] = index
        violations.pop()
        bodies.pop()


def append_grounding(
    data: ExchangeData, grounding: tuple[TGD, tuple[Fact, ...], Fact]
) -> tuple[int, tuple[int, ...]]:
    """Append one grounding, indexing it; returns ``(head_id, body_ids)``."""
    _rule, body_facts, head_fact = grounding
    index = len(data.groundings)
    data.groundings.append(grounding)
    head_id = data.intern_fact(head_fact)
    body_ids = tuple(dict.fromkeys(data.intern_fact(f) for f in body_facts))
    data.grounding_bodies.append(body_ids)
    data.grounding_heads.append(head_id)
    data.groundings_by_head[head_id].append(index)
    data.supports_of[head_fact] = data.groundings_by_head[head_id]
    for body_id in body_ids:
        data.occurs_in_body[body_id].append(index)
        data.occurs_in_body_of[data.facts_by_id[body_id]] = (
            data.occurs_in_body[body_id]
        )
    return head_id, body_ids


def append_violation(data: ExchangeData, violation: Violation) -> None:
    """Append one violation, indexing its body facts."""
    index = len(data.violations)
    body_ids = data.violation_body_ids(violation)
    data.violations.append(violation)
    data.violation_bodies.append(body_ids)
    for body_id in body_ids:
        data.violations_by_fact[body_id].append(index)
