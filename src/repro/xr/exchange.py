"""Shared exchange computation: quasi-solution, groundings, violations.

Both engines start the same way (for a reduced ``gav+(gav, egd)`` mapping):

- chase the source instance with the tgds only — the **canonical
  quasi-solution** of Definition 2;
- enumerate every grounding of every tgd over the chased instance — these
  are the **support sets** of Definition 4;
- enumerate every grounded egd with a satisfied body, and mark as
  **violations** those whose equality fails (for constants-only egds, only
  clashes between two distinct constants count — skolem values stand for
  nulls, which the original chase would simply unify).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chase.gav import enumerate_groundings, gav_chase
from repro.dependencies.egds import EGD
from repro.dependencies.mapping import SchemaMapping
from repro.dependencies.tgds import TGD
from repro.relational.instance import Fact, Instance
from repro.relational.queries import match_atoms
from repro.relational.terms import Variable, is_constant_value


@dataclass(frozen=True)
class Violation:
    """A grounded egd with satisfied body and a failing equality."""

    egd: EGD
    body_facts: tuple[Fact, ...]
    lhs_value: object
    rhs_value: object

    def __repr__(self) -> str:
        return (
            f"Violation({self.egd.label}: {self.lhs_value!r} ≠ {self.rhs_value!r} "
            f"from {list(self.body_facts)})"
        )


@dataclass
class ExchangeData:
    """The query-independent exchange computation for a gav mapping."""

    mapping: SchemaMapping
    source_instance: Instance
    chased: Instance  # I ∪ J: source facts plus the canonical quasi-solution
    groundings: list[tuple[TGD, tuple[Fact, ...], Fact]]
    violations: list[Violation]
    # fact -> indexes into `groundings` with the fact in the body (supports
    # flowing *forward*) and with the fact as the head (supports of the fact).
    supports_of: dict[Fact, list[int]] = field(default_factory=dict)
    occurs_in_body_of: dict[Fact, list[int]] = field(default_factory=dict)

    @property
    def source_facts(self) -> set[Fact]:
        return set(self.source_instance)

    def target_facts(self) -> set[Fact]:
        source_names = self.mapping.source.names()
        return {f for f in self.chased if f.relation not in source_names}

    def quasi_solution(self) -> Instance:
        """The canonical quasi-solution (target restriction of the chase)."""
        return self.chased.restrict(self.mapping.target.names())


def find_violations(mapping: SchemaMapping, chased: Instance) -> list[Violation]:
    """All grounded-egd violations over the chased instance (Definition 5)."""
    violations: list[Violation] = []
    # Symmetric bindings of one grounded egd (swapping the roles of the two
    # offending values) describe the same violation: dedup on unordered keys.
    seen: set[tuple[str, frozenset[Fact], frozenset]] = set()
    for egd in mapping.target_egds:
        for binding in match_atoms(chased, list(egd.body)):
            lhs_value = binding[egd.lhs]
            rhs_value = (
                binding[egd.rhs]
                if isinstance(egd.rhs, Variable)
                else egd.rhs.value
            )
            if lhs_value == rhs_value:
                continue
            if egd.constants_only and not (
                is_constant_value(lhs_value) and is_constant_value(rhs_value)
            ):
                continue
            body_facts = tuple(atom.substitute(binding) for atom in egd.body)
            if egd.symmetric:
                # Canonicalize the two orientations of a symmetric egd
                # (e.g. EQ(a, b) vs EQ(b, a)) into one violation.
                key_body = frozenset(
                    Fact(fact.relation, tuple(sorted(fact.args, key=repr)))
                    for fact in body_facts
                )
            else:
                key_body = frozenset(body_facts)
            key = (
                egd.label,
                key_body,
                frozenset((lhs_value, rhs_value)),
            )
            if key in seen:
                continue
            seen.add(key)
            violations.append(Violation(egd, body_facts, lhs_value, rhs_value))
    return violations


def build_exchange_data(
    mapping: SchemaMapping, source_instance: Instance
) -> ExchangeData:
    """Chase, ground, and detect violations for a ``gav+(gav, egd)`` mapping."""
    if not mapping.is_gav_gav_egd():
        raise ValueError(
            "exchange data requires a gav+(gav, egd) mapping; "
            "run reduce_mapping first"
        )
    tgds = list(mapping.all_tgds())
    chased = gav_chase(source_instance, tgds)
    groundings = list(enumerate_groundings(tgds, chased))
    data = ExchangeData(
        mapping=mapping,
        source_instance=source_instance,
        chased=chased,
        groundings=groundings,
        violations=find_violations(mapping, chased),
    )
    for index, (_rule, body_facts, head_fact) in enumerate(groundings):
        data.supports_of.setdefault(head_fact, []).append(index)
        for fact in set(body_facts):
            data.occurs_in_body_of.setdefault(fact, []).append(index)
    return data
