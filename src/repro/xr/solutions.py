"""Enumerating exchange-repair solutions.

Theorem 2 establishes a bijection between the stable models of the XR
program and the XR-solutions ``(I', J')``.  This module walks the stable
models of the (default repair-guess) program, decodes each into the source
repair ``I'``, and re-chases it with the *original* mapping to obtain the
canonical universal solution ``J'`` — with genuine labelled nulls rather
than the reduction's skolem values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.asp.stable import StableModelEngine
from repro.chase.standard import standard_chase
from repro.dependencies.mapping import SchemaMapping
from repro.reduction.reduce import ReducedMapping, reduce_mapping
from repro.relational.instance import Instance
from repro.xr.exchange import build_exchange_data
from repro.xr.program import build_repair_program
from repro.xr.subscripts import remains


@dataclass
class XRSolution:
    """One exchange-repair solution: a source repair and its canonical
    universal solution."""

    source_repair: Instance
    target_solution: Instance
    deleted: int = 0  # number of source facts removed by the repair


def xr_solutions(
    mapping: SchemaMapping | ReducedMapping,
    instance: Instance,
    limit: int | None = None,
) -> Iterator[XRSolution]:
    """Yield the XR-solutions of ``instance`` w.r.t. ``mapping``.

    The number of solutions can be exponential in the number of violations;
    pass ``limit`` to enumerate a prefix.
    """
    reduced = mapping if isinstance(mapping, ReducedMapping) else reduce_mapping(mapping)
    data = build_exchange_data(reduced.gav, instance)
    xr_program = build_repair_program(data)
    engine = StableModelEngine(xr_program.program)
    atoms = xr_program.program.atoms

    for model in engine.stable_models(limit=limit):
        kept = []
        for fact in instance:
            remains_id = atoms.id_of(remains(fact))
            if remains_id is not None and remains_id in model:
                kept.append(fact)
        source_repair = Instance(kept)
        chased = standard_chase(source_repair, reduced.original)
        assert not chased.failed, "a decoded repair must have a solution"
        assert chased.target is not None
        yield XRSolution(
            source_repair=source_repair,
            target_solution=chased.target,
            deleted=len(instance) - len(source_repair),
        )


def count_source_repairs(
    mapping: SchemaMapping | ReducedMapping,
    instance: Instance,
    limit: int = 10_000,
) -> int:
    """The number of source repairs (capped at ``limit``)."""
    return sum(1 for _ in xr_solutions(mapping, instance, limit=limit))
