"""Grounding queries into candidate answers and their support sets.

Section 6.4: a UCQ is turned into new GAV tgds deriving a fresh query
relation; the *candidate answers* (Definition 2) are its groundings over the
canonical quasi-solution, and each grounding's body is one support set of
the candidate fact.  Answers are restricted to constants (``q↓``).
"""

from __future__ import annotations

from repro.relational.instance import Fact, Instance
from repro.relational.queries import (
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    match_atoms,
)
from repro.relational.terms import is_constant_value

QUERY_RELATION_PREFIX = "__q_"


def query_relation_name(query_name: str) -> str:
    return QUERY_RELATION_PREFIX + query_name


def ground_query(
    query: UnionOfConjunctiveQueries | ConjunctiveQuery,
    chased: Instance,
) -> list[tuple[Fact, tuple[Fact, ...]]]:
    """All (candidate fact, support set) pairs of the query over ``chased``.

    Only bindings whose answer values are all constants are kept — skolem
    values stand for labelled nulls and cannot be certain answers.
    """
    disjuncts = (
        [query] if isinstance(query, ConjunctiveQuery) else list(query.disjuncts)
    )
    relation = query_relation_name(query.name)
    results: list[tuple[Fact, tuple[Fact, ...]]] = []
    seen: set[tuple[Fact, tuple[Fact, ...]]] = set()
    for disjunct in disjuncts:
        for binding in match_atoms(chased, list(disjunct.body)):
            answer = tuple(binding[v] for v in disjunct.head_vars)
            if not all(is_constant_value(value) for value in answer):
                continue
            candidate = Fact(relation, answer)
            support = tuple(
                dict.fromkeys(atom.substitute(binding) for atom in disjunct.body)
            )
            key = (candidate, support)
            if key not in seen:
                seen.add(key)
                results.append(key)
    return results


def answers_from_facts(facts: set[Fact] | frozenset[Fact]) -> set[tuple]:
    """Extract the answer tuples from accepted query-relation facts."""
    return {fact.args for fact in facts}
