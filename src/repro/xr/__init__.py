"""Exchange-repair (XR-Certain) query answering — the paper's contribution.

- :mod:`repro.xr.oracle`      — Definition 1 implemented literally (source
  repairs by exhaustive enumeration); the ground truth for tests.
- :mod:`repro.xr.exchange`    — the quasi-solution, rule groundings, support
  sets, and egd violations shared by both engines.
- :mod:`repro.xr.program`     — the Figure 1 disjunctive program (Theorem 2),
  built directly in ground form, optionally restricted to a focus/safe split.
- :mod:`repro.xr.monolithic`  — Section 4/5: one large program per query.
- :mod:`repro.xr.envelope`    — Section 6.2/6.3: suspect facts, repair
  envelopes, influences, violation clusters.
- :mod:`repro.xr.segmentary`  — Section 6.4/6.5: exchange phase + per-
  signature query phase.
"""

from repro.xr.oracle import source_repairs, xr_certain_oracle, xr_possible_oracle
from repro.xr.exchange import ExchangeData, Violation, build_exchange_data
from repro.xr.monolithic import MonolithicEngine
from repro.xr.envelope import EnvelopeAnalysis, analyze_envelopes
from repro.xr.segmentary import SegmentaryEngine
from repro.xr.solutions import XRSolution, count_source_repairs, xr_solutions

__all__ = [
    "source_repairs",
    "xr_certain_oracle",
    "xr_possible_oracle",
    "XRSolution",
    "xr_solutions",
    "count_source_repairs",
    "ExchangeData",
    "Violation",
    "build_exchange_data",
    "MonolithicEngine",
    "EnvelopeAnalysis",
    "analyze_envelopes",
    "SegmentaryEngine",
]
