"""Repair envelopes, suspect facts, influences, violation clusters (§6.2–6.3).

Definitions implemented here (numbers refer to the paper):

- **support closure** (Def. 4): backward closure of a set of facts under
  "all facts of any support set belong too";
- **violations / suspect / safe** (Def. 5): a source fact is *suspect* when
  it lies in the support closure of the egd violations; ``Isuspect`` is a
  source repair envelope computable in PTIME (Prop. 3);
- **influence** (Def. 7): forward closure — every fact with a support set
  meeting the influence joins it; ``(Isuspect, Jsuspect)`` is an exchange
  repair envelope (Prop. 4);
- **violation clusters** (Def. 8 / Prop. 5–6): violations whose support
  closures share source facts are grouped; distinct clusters have disjoint
  source envelopes and are therefore pairwise-independent, so their repairs
  can be explored separately and recombined.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chase.gav import gav_chase
from repro.relational.instance import Fact, Instance
from repro.xr.exchange import ExchangeData, Violation


def support_closure(facts: set[Fact], data: ExchangeData) -> set[Fact]:
    """The support closure (Def. 4): smallest superset closed under supports."""
    closure = set(facts)
    frontier = list(facts)
    while frontier:
        fact = frontier.pop()
        for grounding_index in data.supports_of.get(fact, ()):
            _rule, body_facts, _head = data.groundings[grounding_index]
            for body_fact in body_facts:
                if body_fact not in closure:
                    closure.add(body_fact)
                    frontier.append(body_fact)
    return closure


def influence(seed: set[Fact], data: ExchangeData) -> set[Fact]:
    """The influence (Def. 7): forward closure through support sets."""
    influenced = set(seed)
    frontier = list(seed)
    while frontier:
        fact = frontier.pop()
        for grounding_index in data.occurs_in_body_of.get(fact, ()):
            _rule, _body, head_fact = data.groundings[grounding_index]
            if head_fact not in influenced:
                influenced.add(head_fact)
                frontier.append(head_fact)
    return influenced


@dataclass
class ViolationCluster:
    """A connected component of pairwise-dependent violations."""

    index: int
    violations: list[Violation]
    closure: set[Fact]  # union of the violations' support closures
    source_envelope: set[Fact] = field(default_factory=set)
    influence: set[Fact] = field(default_factory=set)


@dataclass
class EnvelopeAnalysis:
    """The exchange-phase artifacts: safe/suspect split and clusters."""

    data: ExchangeData
    suspect_source: set[Fact]
    safe_source: set[Fact]
    clusters: list[ViolationCluster]
    safe_chased: Instance  # Isafe ∪ chase(Isafe): everything certainly kept
    # fact -> indexes of clusters whose influence contains it.
    cluster_membership: dict[Fact, set[int]] = field(default_factory=dict)

    def signature(self, support_facts: set[Fact]) -> frozenset[int]:
        """The signature (§6.4) of a candidate given its support-set facts."""
        clusters: set[int] = set()
        for fact in support_facts:
            clusters |= self.cluster_membership.get(fact, set())
        return frozenset(clusters)

    def is_safe_fact(self, fact: Fact) -> bool:
        return fact in self.safe_chased


class _UnionFind:
    def __init__(self, size: int):
        self.parent = list(range(size))

    def find(self, index: int) -> int:
        root = index
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[index] != root:
            self.parent[index], index = root, self.parent[index]
        return root

    def union(self, left: int, right: int) -> None:
        left_root, right_root = self.find(left), self.find(right)
        if left_root != right_root:
            self.parent[right_root] = left_root


def analyze_envelopes(data: ExchangeData) -> EnvelopeAnalysis:
    """Run the exchange-phase analysis of Section 6 on exchange data."""
    source_facts = data.source_facts

    # Per-violation support closures and the suspect set.
    violation_closures = [
        support_closure(set(v.body_facts), data) for v in data.violations
    ]
    suspect_source: set[Fact] = set()
    for closure in violation_closures:
        suspect_source |= closure & source_facts
    safe_source = source_facts - suspect_source

    # Cluster violations that share a suspect source fact (Prop. 5/6: the
    # source restrictions of the closures are repair envelopes; overlap
    # means possible dependence).
    union_find = _UnionFind(len(data.violations))
    owner_of: dict[Fact, int] = {}
    for index, closure in enumerate(violation_closures):
        for fact in closure & source_facts:
            previous = owner_of.get(fact)
            if previous is None:
                owner_of[fact] = index
            else:
                union_find.union(previous, index)

    grouped: dict[int, list[int]] = {}
    for index in range(len(data.violations)):
        grouped.setdefault(union_find.find(index), []).append(index)

    clusters: list[ViolationCluster] = []
    for cluster_index, member_indexes in enumerate(sorted(grouped.values())):
        closure: set[Fact] = set()
        for violation_index in member_indexes:
            closure |= violation_closures[violation_index]
        cluster = ViolationCluster(
            index=cluster_index,
            violations=[data.violations[i] for i in member_indexes],
            closure=closure,
            source_envelope=closure & source_facts,
        )
        cluster.influence = influence(cluster.source_envelope, data)
        clusters.append(cluster)

    safe_chased = gav_chase(
        Instance(safe_source), list(data.mapping.all_tgds())
    )

    analysis = EnvelopeAnalysis(
        data=data,
        suspect_source=suspect_source,
        safe_source=safe_source,
        clusters=clusters,
        safe_chased=safe_chased,
    )
    for cluster in clusters:
        for fact in cluster.influence:
            analysis.cluster_membership.setdefault(fact, set()).add(cluster.index)
    return analysis
