"""Repair envelopes, suspect facts, influences, violation clusters (§6.2–6.3).

Definitions implemented here (numbers refer to the paper):

- **support closure** (Def. 4): backward closure of a set of facts under
  "all facts of any support set belong too";
- **violations / suspect / safe** (Def. 5): a source fact is *suspect* when
  it lies in the support closure of the egd violations; ``Isuspect`` is a
  source repair envelope computable in PTIME (Prop. 3);
- **influence** (Def. 7): forward closure — every fact with a support set
  meeting the influence joins it; ``(Isuspect, Jsuspect)`` is an exchange
  repair envelope (Prop. 4);
- **violation clusters** (Def. 8 / Prop. 5–6): violations whose support
  closures share source facts are grouped; distinct clusters have disjoint
  source envelopes and are therefore pairwise-independent, so their repairs
  can be explored separately and recombined.

All closures run over the interned integer universe of
:class:`~repro.xr.exchange.ExchangeData` (``groundings_by_head`` /
``occurs_in_body`` adjacency arrays); the fact-set entry points are thin
wrappers kept for callers that hold facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.instance import Fact, Instance
from repro.xr.exchange import ExchangeData, Violation


def support_closure_ids(seed_ids: set[int], data: ExchangeData) -> set[int]:
    """Backward closure over fact ids (Def. 4)."""
    closure = set(seed_ids)
    frontier = list(seed_ids)
    groundings_by_head = data.groundings_by_head
    bodies = data.grounding_bodies
    while frontier:
        fact_id = frontier.pop()
        for grounding_index in groundings_by_head[fact_id]:
            for body_id in bodies[grounding_index]:
                if body_id not in closure:
                    closure.add(body_id)
                    frontier.append(body_id)
    return closure


def influence_ids(seed_ids: set[int], data: ExchangeData) -> set[int]:
    """Forward closure over fact ids (Def. 7)."""
    influenced = set(seed_ids)
    frontier = list(seed_ids)
    occurs = data.occurs_in_body
    heads = data.grounding_heads
    while frontier:
        fact_id = frontier.pop()
        for grounding_index in occurs[fact_id]:
            head_id = heads[grounding_index]
            if head_id not in influenced:
                influenced.add(head_id)
                frontier.append(head_id)
    return influenced


def support_closure(facts: set[Fact], data: ExchangeData) -> set[Fact]:
    """The support closure (Def. 4): smallest superset closed under supports."""
    closure_ids = support_closure_ids(data.id_set(facts), data)
    return {data.facts_by_id[fact_id] for fact_id in closure_ids}


def influence(seed: set[Fact], data: ExchangeData) -> set[Fact]:
    """The influence (Def. 7): forward closure through support sets."""
    influenced = influence_ids(data.id_set(seed), data)
    return {data.facts_by_id[fact_id] for fact_id in influenced}


@dataclass
class ViolationCluster:
    """A connected component of pairwise-dependent violations.

    The fact-set fields mirror the paper's definitions; the ``*_ids``
    fields are the interned equivalents the query phase works with.

    ``index`` is the cluster's **stable id**, not its position in
    ``EnvelopeAnalysis.clusters``: incremental maintenance retires the ids
    of clusters a delta touched and mints fresh ones for replacements, so
    the surviving ids (and everything keyed by them — signatures, cache
    entries) stay meaningful across updates.  Look clusters up with
    :meth:`EnvelopeAnalysis.cluster`, never by list position.
    """

    index: int
    violations: list[Violation]
    closure: set[Fact]  # union of the violations' support closures
    source_envelope: set[Fact] = field(default_factory=set)
    influence: set[Fact] = field(default_factory=set)
    violation_indexes: list[int] = field(default_factory=list)
    closure_ids: frozenset[int] = frozenset()
    source_envelope_ids: frozenset[int] = frozenset()
    influence_ids: frozenset[int] = frozenset()


@dataclass
class EnvelopeAnalysis:
    """The exchange-phase artifacts: safe/suspect split and clusters."""

    data: ExchangeData
    suspect_source: set[Fact]
    safe_source: set[Fact]
    clusters: list[ViolationCluster]
    safe_chased: Instance  # Isafe ∪ chase(Isafe): everything certainly kept
    # Interned ids of every fact of ``safe_chased`` (all lie in the chased
    # universe: the safe chase is a sub-chase of the full one).
    safe_ids: frozenset[int] = frozenset()
    # fact -> stable ids of clusters whose influence contains it.
    cluster_membership: dict[Fact, set[int]] = field(default_factory=dict)
    # Next fresh stable cluster id (monotonic; never reused).
    next_cluster_id: int = 0
    _cluster_lookup: dict[int, ViolationCluster] | None = field(
        default=None, init=False, repr=False
    )

    def cluster(self, cluster_id: int) -> ViolationCluster:
        """The cluster with the given **stable id** (not list position)."""
        lookup = self._cluster_lookup
        if lookup is None:
            lookup = {cluster.index: cluster for cluster in self.clusters}
            self._cluster_lookup = lookup
        return lookup[cluster_id]

    def invalidate_cluster_lookup(self) -> None:
        """Drop the memoized id → cluster map after mutating ``clusters``."""
        self._cluster_lookup = None

    def signature(self, support_facts: set[Fact]) -> frozenset[int]:
        """The signature (§6.4) of a candidate given its support-set facts."""
        clusters: set[int] = set()
        membership = self.cluster_membership
        for fact in support_facts:
            found = membership.get(fact)
            if found is not None:
                clusters |= found
        return frozenset(clusters)

    def is_safe_fact(self, fact: Fact) -> bool:
        return fact in self.safe_chased


class _UnionFind:
    def __init__(self, size: int):
        self.parent = list(range(size))

    def find(self, index: int) -> int:
        root = index
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[index] != root:
            self.parent[index], index = root, self.parent[index]
        return root

    def union(self, left: int, right: int) -> None:
        left_root, right_root = self.find(left), self.find(right)
        if left_root != right_root:
            self.parent[right_root] = left_root


def derivable_ids(seed_ids: set[int], data: ExchangeData) -> set[int]:
    """Fact ids derivable from ``seed_ids`` by firing groundings (a chase
    over the precomputed adjacency).

    A grounding fires when its whole (deduplicated) body is derived; the
    count-down propagation visits each grounding body edge once
    (Dowling–Gallier).  Equals ``chase(seed)`` restricted to the universe:
    every chase derivation from a sub-instance of the chased instance is a
    recorded grounding, and the tautological groundings dropped by the
    grounder never contribute a new fact.
    """
    remaining = [len(body) for body in data.grounding_bodies]
    heads = data.grounding_heads
    occurs = data.occurs_in_body
    derived = set(seed_ids)
    frontier = list(seed_ids)
    for index, count in enumerate(remaining):
        if count == 0:
            head_id = heads[index]
            if head_id not in derived:
                derived.add(head_id)
                frontier.append(head_id)
    while frontier:
        fact_id = frontier.pop()
        for index in occurs[fact_id]:
            remaining[index] -= 1
            if remaining[index] == 0:
                head_id = heads[index]
                if head_id not in derived:
                    derived.add(head_id)
                    frontier.append(head_id)
    return derived


def build_cluster(
    cluster_id: int,
    violations: list[Violation],
    violation_indexes: list[int],
    closure_ids: set[int],
    data: ExchangeData,
) -> ViolationCluster:
    """Assemble one :class:`ViolationCluster` from its members and closure.

    Shared by the fresh analysis below and the incremental cluster
    maintenance of :mod:`repro.incremental`, so both produce clusters with
    identical derived fields (envelope, influence, fact-set mirrors).
    """
    facts_by_id = data.facts_by_id
    source_mask = data.source_id_mask
    envelope_ids = frozenset(
        fact_id for fact_id in closure_ids if source_mask[fact_id]
    )
    cluster_influence_ids = frozenset(influence_ids(set(envelope_ids), data))
    return ViolationCluster(
        index=cluster_id,
        violations=violations,
        closure={facts_by_id[i] for i in closure_ids},
        source_envelope={facts_by_id[i] for i in envelope_ids},
        influence={facts_by_id[i] for i in cluster_influence_ids},
        violation_indexes=violation_indexes,
        closure_ids=frozenset(closure_ids),
        source_envelope_ids=envelope_ids,
        influence_ids=cluster_influence_ids,
    )


def cluster_violations(
    violation_closures: list[set[int]], data: ExchangeData
) -> list[list[int]]:
    """Group violation positions whose support closures share a suspect
    source fact (Prop. 5/6: the source restrictions of the closures are
    repair envelopes; overlap means possible dependence).

    ``violation_closures[i]`` is the support closure of the violation at
    position ``i`` of the list being clustered (not necessarily
    ``data.violations`` — the incremental path clusters a sub-pool).
    Groups are returned sorted by member positions, matching the fresh
    analysis's deterministic cluster order.
    """
    source_mask = data.source_id_mask
    union_find = _UnionFind(len(violation_closures))
    owner_of: dict[int, int] = {}
    for index, closure in enumerate(violation_closures):
        for fact_id in closure:
            if not source_mask[fact_id]:
                continue
            previous = owner_of.get(fact_id)
            if previous is None:
                owner_of[fact_id] = index
            else:
                union_find.union(previous, index)
    grouped: dict[int, list[int]] = {}
    for index in range(len(violation_closures)):
        grouped.setdefault(union_find.find(index), []).append(index)
    return sorted(grouped.values())


def analyze_envelopes(data: ExchangeData) -> EnvelopeAnalysis:
    """Run the exchange-phase analysis of Section 6 on exchange data."""
    facts_by_id = data.facts_by_id
    source_mask = data.source_id_mask

    # Per-violation support closures and the suspect set (all in id space).
    violation_closures = [
        support_closure_ids(set(body_ids), data)
        for body_ids in data.violation_bodies
    ]
    suspect_ids: set[int] = set()
    for closure in violation_closures:
        for fact_id in closure:
            if source_mask[fact_id]:
                suspect_ids.add(fact_id)
    suspect_source = {facts_by_id[fact_id] for fact_id in suspect_ids}
    safe_source = data.source_facts - suspect_source

    clusters: list[ViolationCluster] = []
    for cluster_index, member_indexes in enumerate(
        cluster_violations(violation_closures, data)
    ):
        closure_ids: set[int] = set()
        for violation_index in member_indexes:
            closure_ids |= violation_closures[violation_index]
        clusters.append(
            build_cluster(
                cluster_index,
                [data.violations[i] for i in member_indexes],
                list(member_indexes),
                closure_ids,
                data,
            )
        )

    # Isafe ∪ chase(Isafe), via grounding propagation instead of re-chasing
    # the safe sources (the chase re-runs the pattern-matching joins; the
    # propagation walks the adjacency already in hand).
    safe_source_ids = {
        data.fact_ids[fact] for fact in data.source_instance
    } - suspect_ids
    safe_id_set = derivable_ids(safe_source_ids, data)
    safe_chased = Instance(
        facts_by_id[fact_id] for fact_id in sorted(safe_id_set)
    )

    analysis = EnvelopeAnalysis(
        data=data,
        suspect_source=suspect_source,
        safe_source=safe_source,
        clusters=clusters,
        safe_chased=safe_chased,
        safe_ids=frozenset(safe_id_set),
        next_cluster_id=len(clusters),
    )
    membership = analysis.cluster_membership
    for cluster in clusters:
        for fact_id in cluster.influence_ids:
            membership.setdefault(facts_by_id[fact_id], set()).add(
                cluster.index
            )
    return analysis
