"""The segmentary engine (Sections 6.4–6.5).

Query answering in two phases:

- the **exchange phase** (query-independent, PTIME): chase, violations,
  support closures, safe/suspect split, violation clusters, influences —
  everything in :mod:`repro.xr.envelope`;
- the **query phase**: ground the (rewritten) query over the quasi-solution
  to obtain candidate answers; accept immediately those with an all-safe
  support set; group the rest by *signature* (the set of violation clusters
  whose influences meet their supports); decide each group with one small
  ground disjunctive program — the Figure 1 program restricted to the
  group's focus, with safe facts represented by *true*.

Many small hard problems instead of one large one (Theorem 4).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.asp.reasoning import brave_consequences, cautious_consequences
from repro.dependencies.mapping import SchemaMapping
from repro.reduction.reduce import ReducedMapping, reduce_mapping
from repro.relational.instance import Fact, Instance
from repro.relational.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.xr.envelope import EnvelopeAnalysis, analyze_envelopes
from repro.xr.exchange import ExchangeData, build_exchange_data
from repro.xr.program import build_xr_program
from repro.xr.queries import answers_from_facts, ground_query


@dataclass
class QueryPhaseStats:
    """Diagnostics from the last :meth:`SegmentaryEngine.answer` call."""

    candidates: int = 0
    safe_candidates: int = 0
    signatures: int = 0
    programs_solved: int = 0
    largest_program_atoms: int = 0
    total_rules: int = 0


@dataclass
class ExchangePhaseStats:
    """Diagnostics from the exchange phase."""

    seconds: float = 0.0
    source_facts: int = 0
    chased_facts: int = 0
    groundings: int = 0
    violations: int = 0
    clusters: int = 0
    suspect_source_facts: int = 0
    safe_source_facts: int = 0


class SegmentaryEngine:
    """XR-Certain query answering with an exchange phase and per-signature
    query programs.

    Accepts any ``glav+(wa-glav, egd)`` mapping (reduced internally).  Call
    :meth:`exchange` once (or let the first :meth:`answer` trigger it), then
    answer any number of queries against the materialized exchange state.
    """

    def __init__(
        self,
        mapping: SchemaMapping | ReducedMapping,
        instance: Instance,
        encoding: str = "repair",
    ):
        if isinstance(mapping, ReducedMapping):
            self.reduced = mapping
        else:
            self.reduced = reduce_mapping(mapping)
        self.instance = instance
        self.encoding = encoding
        self.data: ExchangeData | None = None
        self.analysis: EnvelopeAnalysis | None = None
        self.exchange_stats = ExchangePhaseStats()
        self.last_query_stats = QueryPhaseStats()

    # ------------------------------------------------------ exchange phase

    def exchange(self) -> ExchangePhaseStats:
        """Run the query-independent exchange phase; idempotent."""
        if self.analysis is not None:
            return self.exchange_stats
        started = time.perf_counter()
        self.data = build_exchange_data(self.reduced.gav, self.instance)
        self.analysis = analyze_envelopes(self.data)
        self.exchange_stats = ExchangePhaseStats(
            seconds=time.perf_counter() - started,
            source_facts=len(self.instance),
            chased_facts=len(self.data.chased),
            groundings=len(self.data.groundings),
            violations=len(self.data.violations),
            clusters=len(self.analysis.clusters),
            suspect_source_facts=len(self.analysis.suspect_source),
            safe_source_facts=len(self.analysis.safe_source),
        )
        return self.exchange_stats

    # --------------------------------------------------------- query phase

    def answer(
        self, query: ConjunctiveQuery | UnionOfConjunctiveQueries
    ) -> set[tuple]:
        """The XR-Certain answers to ``query`` (a set of constant tuples)."""
        return self._answer(query, mode="certain")

    def possible_answers(
        self, query: ConjunctiveQuery | UnionOfConjunctiveQueries
    ) -> set[tuple]:
        """The XR-Possible answers: tuples holding in *some* XR-solution.

        Decided with the same per-signature decomposition: by cluster
        independence (Definition 8), a candidate holds in some XR-solution
        iff it holds in some combination of repairs of its signature's
        clusters, i.e. iff its signature program answers bravely.
        """
        return self._answer(query, mode="possible")

    def _answer(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        mode: str,
    ) -> set[tuple]:
        self.exchange()
        assert self.data is not None and self.analysis is not None
        data, analysis = self.data, self.analysis
        stats = QueryPhaseStats()

        rewritten = self.reduced.rewrite(query)
        groundings = ground_query(rewritten, data.chased)

        # Group support sets per candidate fact.
        supports_by_candidate: dict[Fact, list[tuple[Fact, ...]]] = {}
        for candidate, support in groundings:
            supports_by_candidate.setdefault(candidate, []).append(support)
        stats.candidates = len(supports_by_candidate)

        accepted: set[Fact] = set()
        by_signature: dict[frozenset[int], list[Fact]] = {}
        for candidate, supports in supports_by_candidate.items():
            if any(
                all(analysis.is_safe_fact(fact) for fact in support)
                for support in supports
            ):
                accepted.add(candidate)  # an all-safe support set: certain
                continue
            signature = analysis.signature(
                {fact for support in supports for fact in support}
            )
            if not signature:
                raise RuntimeError(
                    f"unsafe candidate {candidate!r} with empty signature: "
                    "exchange-phase invariant violated"
                )
            by_signature.setdefault(signature, []).append(candidate)
        stats.safe_candidates = len(accepted)
        stats.signatures = len(by_signature)

        safe_facts = set(analysis.safe_chased)
        for signature, candidates in by_signature.items():
            clusters = [analysis.clusters[index] for index in signature]
            focus: set[Fact] = set()
            violations = []
            for cluster in clusters:
                focus |= cluster.influence
                violations.extend(cluster.violations)
            focus -= safe_facts
            query_groundings = [
                (candidate, support)
                for candidate in candidates
                for support in supports_by_candidate[candidate]
            ]
            xr_program = build_xr_program(
                data,
                query_groundings=query_groundings,
                focus=focus,
                safe=safe_facts,
                violations=violations,
                encoding=self.encoding,
            )
            stats.programs_solved += 1
            stats.largest_program_atoms = max(
                stats.largest_program_atoms, xr_program.program.num_atoms
            )
            stats.total_rules += len(xr_program.program)
            if not xr_program.query_atoms:
                continue
            reason = (
                cautious_consequences if mode == "certain" else brave_consequences
            )
            decided = reason(xr_program.program, xr_program.query_atoms.values())
            if decided is None:
                raise RuntimeError("a signature program has no stable model")
            accepted |= {
                fact
                for fact, atom_id in xr_program.query_atoms.items()
                if atom_id in decided
            }
            accepted |= xr_program.trivially_certain

        self.last_query_stats = stats
        return answers_from_facts(accepted)
