"""The segmentary engine (Sections 6.4–6.5).

Query answering in two phases:

- the **exchange phase** (query-independent, PTIME): chase, violations,
  support closures, safe/suspect split, violation clusters, influences —
  everything in :mod:`repro.xr.envelope`;
- the **query phase**: ground the (rewritten) query over the quasi-solution
  to obtain candidate answers; accept immediately those with an all-safe
  support set; group the rest by *signature* (the set of violation clusters
  whose influences meet their supports); decide each group with one small
  ground disjunctive program — the Figure 1 program restricted to the
  group's focus, with safe facts represented by *true*.

Many small hard problems instead of one large one (Theorem 4).

Because distinct clusters are pairwise-independent (Definition 8 /
Propositions 5–6), the per-signature programs are too: the query phase
*builds* all of them first, then dispatches the batch through a pluggable
:mod:`repro.runtime` executor — sequentially by default, or across a
process pool with ``jobs > 1``.  A cross-query cache
(:class:`~repro.runtime.SignatureProgramCache`) makes repeated queries
over a warm engine skip redundant solving entirely.  Parallel and
sequential execution, cached and uncached, return identical answers.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace

from repro.asp.syntax import AtomTable, GroundProgram
from repro.dependencies.mapping import SchemaMapping
from repro.obs.metrics import DEFAULT_TIME_BUCKETS
from repro.obs.recorder import NOOP_RECORDER, Recorder
from repro.reduction.reduce import ReducedMapping, reduce_mapping
from repro.relational.instance import Fact, Instance
from repro.relational.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.runtime.budget import NO_BUDGET, SolveBudget, SolveBudgetExceeded
from repro.runtime.cache import SignatureProgramCache, decision_key, program_key
from repro.runtime.executor import (
    PackedProgram,
    SolveExecutor,
    SolveTask,
    make_executor,
)
from repro.xr.envelope import EnvelopeAnalysis, analyze_envelopes
from repro.xr.exchange import ExchangeData, build_exchange_data
from repro.xr.program import (
    XRProgram,
    build_family_program,
    build_xr_program,
)
from repro.xr.queries import answers_from_facts, ground_query


@dataclass
class QueryPhaseStats:
    """Diagnostics from one :meth:`SegmentaryEngine.answer` call.

    Built locally during the call and published to
    ``engine.last_query_stats`` in a single assignment at the end, so
    concurrent readers never observe a half-filled object.
    """

    candidates: int = 0
    safe_candidates: int = 0
    signatures: int = 0
    programs_solved: int = 0
    largest_program_atoms: int = 0
    total_rules: int = 0
    # Wall-clock: the whole query phase, the program-build portion (group
    # resolution including cache probes and program construction), the
    # solve portion, and each dispatched program individually (executor
    # order).
    seconds: float = 0.0
    build_seconds: float = 0.0
    solve_seconds: float = 0.0
    program_seconds: list[float] = field(default_factory=list)
    # Cache observability: program-level hits/misses and per-candidate
    # decision-memo hits/misses, for this query only.
    cache_hits: int = 0
    cache_misses: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    # How the batch actually ran (the executor's ``last_dispatch`` after
    # the solve — "sequential"/"parallel"/"mixed" — not merely how the
    # executor was configured), and the SatSolver statistics summed over
    # every program solved by this call.
    executor: str = "sequential"
    solver_stats: dict[str, int] = field(default_factory=dict)
    # Resource governance: groups cut off by the budget (their candidates
    # are *unknown*, listed below as answer tuples), worker re-dispatches
    # after crashes, and whether any degradation happened at all.  With no
    # budget configured these stay at their defaults.
    timeouts: int = 0
    retries: int = 0
    degraded: bool = False
    unknown_candidates: set[tuple] = field(default_factory=set)
    # Incremental solve-strategy observability: which strategy ran, how
    # many cluster families were solved, how many candidates those
    # families covered, level-0 assumption-core skips (candidates decided
    # without search), and clauses carried across candidates (learned
    # clauses + loop formulas + steering, summed over family engines).
    strategy: str = "per-signature"
    families_solved: int = 0
    family_candidates: int = 0
    core_skips: int = 0
    carried_clauses: int = 0

    def copy(self) -> "QueryPhaseStats":
        """An independent deep copy (no shared mutable containers).

        ``engine.last_query_stats`` hands out copies built with this, so
        a caller mutating the object it got back — or holding it across a
        later query — can never alias the engine's own snapshot.
        """
        return replace(
            self,
            program_seconds=list(self.program_seconds),
            solver_stats=dict(self.solver_stats),
            unknown_candidates=set(self.unknown_candidates),
        )


@dataclass
class ExchangePhaseStats:
    """Diagnostics from the exchange phase."""

    seconds: float = 0.0
    source_facts: int = 0
    chased_facts: int = 0
    groundings: int = 0
    violations: int = 0
    clusters: int = 0
    suspect_source_facts: int = 0
    safe_source_facts: int = 0
    strategy: str = "batch"


# A shared empty program for groups fully decided by the caches.
_EMPTY_PROGRAM = GroundProgram(AtomTable())


@dataclass
class _SignatureGroup:
    """One signature group's work unit in the query phase."""

    key: tuple
    signature: frozenset[int]
    xr_program: XRProgram
    # Candidate -> decision-memo key, for the candidates the solver decides.
    decision_keys: dict[Fact, frozenset]
    # Query atoms actually sent to the solver (trivially-certain ones are
    # accepted up front and excluded from the solve set).
    solve_atoms: dict[Fact, int]
    # Group candidates already accepted before solving: program-cache hits,
    # memo hits, trivially-certain candidates.
    accepted_so_far: set[Fact]
    # Candidates the caches could not decide.  Under the incremental
    # strategy the per-signature program is *not* built — these ride into
    # the family program instead, and ``solve_atoms`` is filled in then.
    unresolved: list[Fact] = field(default_factory=list)


class SegmentaryEngine:
    """XR-Certain query answering with an exchange phase and per-signature
    query programs.

    Accepts any ``glav+(wa-glav, egd)`` mapping (reduced internally).  Call
    :meth:`exchange` once (or let the first :meth:`answer` trigger it), then
    answer any number of queries against the materialized exchange state.

    Runtime knobs (all answer-neutral — they change wall-clock time only):

    - ``jobs``: worker processes for signature solving (1 = in-process);
    - ``executor``: a pre-built :class:`~repro.runtime.SolveExecutor`
      overriding ``jobs`` (e.g. a shared pool);
    - ``cache``: ``True`` (default) for a private cross-query cache, a
      :class:`~repro.runtime.SignatureProgramCache` instance to share one,
      or ``False`` to disable caching;
    - ``parallel_threshold``: batches smaller than this solve in-process
      even when ``jobs > 1``;
    - ``solve_strategy``: ``"incremental"`` (default) merges signature
      groups into cluster families and decides each family's candidates
      on one solver with shared learned clauses
      (:func:`~repro.asp.reasoning.decide_family`); ``"per-signature"``
      builds and solves a fresh program per signature group (the pre-PR 8
      behavior).  Both return identical answers; the caches are keyed per
      signature in both, so entries are shared across strategies.

    Resource governance (``budget``, a :class:`~repro.runtime.SolveBudget`)
    is the one knob that can change *what* is answered: a signature group
    whose solve exceeds the budget is reported as **unknown** — with
    ``allow_partial=True`` its candidates are excluded from certain
    answers (sound under-approximation), conservatively included in
    possible answers (sound over-approximation), and listed in
    ``stats.unknown_candidates``; with ``allow_partial=False`` (the
    default) the call raises :class:`~repro.runtime.SolveBudgetExceeded`.
    With no budget configured, answers are bit-identical to an unbudgeted
    engine.

    The engine is a context manager; ``with SegmentaryEngine(...) as e:``
    guarantees the executor's worker pool is released.  An executor
    *passed in* by the caller is never closed by the engine (shared pools
    stay up); only internally-created executors are.
    """

    def __init__(
        self,
        mapping: SchemaMapping | ReducedMapping,
        instance: Instance,
        encoding: str = "repair",
        jobs: int = 1,
        executor: SolveExecutor | None = None,
        cache: bool | SignatureProgramCache = True,
        parallel_threshold: int = 2,
        budget: SolveBudget | None = None,
        obs: Recorder | None = None,
        solve_strategy: str = "incremental",
        exchange_strategy: str = "batch",
    ):
        if isinstance(mapping, ReducedMapping):
            self.reduced = mapping
        else:
            self.reduced = reduce_mapping(mapping)
        self.instance = instance
        self.encoding = encoding
        solve_strategy = solve_strategy.replace("_", "-")
        if solve_strategy not in ("incremental", "per-signature"):
            raise ValueError(
                f"unknown solve strategy {solve_strategy!r}; choose "
                "'incremental' or 'per-signature'"
            )
        self.solve_strategy = solve_strategy
        if exchange_strategy not in ("batch", "tuple"):
            raise ValueError(
                f"unknown exchange strategy {exchange_strategy!r}; choose "
                "'batch' or 'tuple'"
            )
        self.exchange_strategy = exchange_strategy
        self.jobs = jobs
        self.budget = budget if budget is not None else NO_BUDGET
        self.obs = obs if obs is not None else NOOP_RECORDER
        self._owns_executor = executor is None
        if executor is not None:
            self.executor = executor
        else:
            self.executor = make_executor(jobs, min_batch=parallel_threshold)
        if self._owns_executor and self.obs.metrics.enabled:
            # Only an executor this engine created gets its metrics hook;
            # a shared pool passed in by the caller is left untouched.
            self.executor.metrics = self.obs.metrics
        if cache is True:
            self.cache: SignatureProgramCache | None = SignatureProgramCache()
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache
        self.data: ExchangeData | None = None
        self.analysis: EnvelopeAnalysis | None = None
        self.exchange_stats = ExchangePhaseStats()
        self._last_query_stats = QueryPhaseStats()
        # Guards the one-time exchange phase: concurrent first queries on
        # a shared engine (the serving tier) must not both materialize.
        self._exchange_lock = threading.Lock()

    @property
    def last_query_stats(self) -> QueryPhaseStats:
        """Diagnostics of the most recent query, as an independent copy.

        Every read returns a fresh deep copy, so two readers can never
        corrupt each other (or the engine) by mutating what they got.
        """
        return self._last_query_stats.copy()

    @last_query_stats.setter
    def last_query_stats(self, stats: QueryPhaseStats) -> None:
        self._last_query_stats = stats.copy()

    def close(self) -> None:
        """Release executor resources (worker processes, if any).

        Only closes executors this engine created itself; an executor the
        caller passed in (e.g. a pool shared across engines) is left up.
        """
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "SegmentaryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------ exchange phase

    def exchange(self) -> ExchangePhaseStats:
        """Run the query-independent exchange phase; idempotent.

        Thread-safe: concurrent callers serialize on a lock and exactly
        one materializes; the rest return the published stats.  ``data``
        and ``analysis`` are assigned only after they are fully built, so
        a reader that saw ``analysis is not None`` sees complete state.
        """
        if self.analysis is not None:
            return self.exchange_stats
        with self._exchange_lock:
            return self._exchange_locked()

    def _exchange_locked(self) -> ExchangePhaseStats:
        if self.analysis is not None:
            return self.exchange_stats
        tracer, metrics = self.obs.tracer, self.obs.metrics
        started = time.perf_counter()
        with tracer.span("exchange"):
            data = build_exchange_data(
                self.reduced.gav,
                self.instance,
                obs=self.obs,
                strategy=self.exchange_strategy,
            )
            with tracer.span("exchange.envelope"):
                analysis = analyze_envelopes(data)
        self.exchange_stats = ExchangePhaseStats(
            seconds=time.perf_counter() - started,
            source_facts=len(self.instance),
            chased_facts=len(data.chased),
            groundings=len(data.groundings),
            violations=len(data.violations),
            clusters=len(analysis.clusters),
            suspect_source_facts=len(analysis.suspect_source),
            safe_source_facts=len(analysis.safe_source),
            strategy=self.exchange_strategy,
        )
        # Publish only once everything (stats included) is complete: the
        # unlocked fast path above keys on `analysis is not None`.
        self.data = data
        self.analysis = analysis
        if metrics.enabled:
            metrics.inc(
                "exchange_clusters_total", self.exchange_stats.clusters
            )
            metrics.inc(
                "exchange_suspect_source_facts_total",
                self.exchange_stats.suspect_source_facts,
            )
            metrics.inc(
                "exchange_safe_source_facts_total",
                self.exchange_stats.safe_source_facts,
            )
        return self.exchange_stats

    def update_session(self):
        """An :class:`~repro.incremental.UpdateSession` over this engine.

        Runs the exchange phase if needed, then returns a session that
        maintains this engine's exchange state (data, analysis, cache) in
        place: after each applied delta the engine answers queries against
        the updated instance without a from-scratch re-exchange.
        """
        self.exchange()
        from repro.incremental import UpdateSession

        assert self.data is not None
        return UpdateSession(
            self.data,
            analysis=self.analysis,
            cache=self.cache,
            obs=self.obs,
            engine=self,
        )

    def refresh_exchange_stats(self) -> None:
        """Re-derive :attr:`exchange_stats` counts from the current state
        (called by an update session after each delta; timings are kept).

        Copy-on-publish: a fresh stats object is built and swapped in
        with one assignment, so a concurrent reader (a ``/metrics`` or
        ``/healthz`` scrape overlapping an applied delta) sees either the
        old snapshot or the new one in full — never a half-updated mix.
        """
        if self.data is None or self.analysis is None:
            return
        self.exchange_stats = ExchangePhaseStats(
            seconds=self.exchange_stats.seconds,
            source_facts=len(self.instance),
            chased_facts=len(self.data.chased),
            groundings=len(self.data.groundings),
            violations=len(self.data.violations),
            clusters=len(self.analysis.clusters),
            suspect_source_facts=len(self.analysis.suspect_source),
            safe_source_facts=len(self.analysis.safe_source),
            strategy=self.exchange_strategy,
        )

    # --------------------------------------------------------- query phase

    def answer(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        allow_partial: bool = False,
        budget: SolveBudget | None = None,
    ) -> set[tuple]:
        """The XR-Certain answers to ``query`` (a set of constant tuples)."""
        answers, _stats = self.answer_with_stats(
            query, mode="certain", allow_partial=allow_partial, budget=budget
        )
        return answers

    def possible_answers(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        allow_partial: bool = False,
        budget: SolveBudget | None = None,
    ) -> set[tuple]:
        """The XR-Possible answers: tuples holding in *some* XR-solution.

        Decided with the same per-signature decomposition: by cluster
        independence (Definition 8), a candidate holds in some XR-solution
        iff it holds in some combination of repairs of its signature's
        clusters, i.e. iff its signature program answers bravely.
        """
        answers, _stats = self.answer_with_stats(
            query, mode="possible", allow_partial=allow_partial, budget=budget
        )
        return answers

    def answer_with_stats(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        mode: str = "certain",
        allow_partial: bool = False,
        budget: SolveBudget | None = None,
    ) -> tuple[set[tuple], QueryPhaseStats]:
        """Answer ``query`` and return ``(answers, stats)``.

        The stats object is freshly built per call (and also published as
        ``self.last_query_stats``); callers holding it never see it mutate
        under a later query.

        When the engine's budget cuts a signature group off (timeout, or a
        crashed worker out of retries), ``allow_partial`` decides the
        behavior: ``True`` degrades gracefully — the group's undecided
        candidates are reported in ``stats.unknown_candidates``, excluded
        from certain answers and conservatively included in possible
        answers, and never written to the caches — while ``False`` raises
        :class:`~repro.runtime.SolveBudgetExceeded`.  Degraded certain
        answers are always a subset of the exact ones, degraded possible
        answers a superset.
        """
        self.exchange()
        assert self.data is not None and self.analysis is not None
        started = time.perf_counter()
        data, analysis = self.data, self.analysis
        if budget is None:
            # Per-call override absent: the engine's configured budget.
            # The serving tier passes one per request so concurrent
            # deadlines never share (or mutate) engine state.
            budget = self.budget
        incremental = self.solve_strategy == "incremental"
        stats = QueryPhaseStats(
            executor=self.executor.name, strategy=self.solve_strategy
        )
        clock = budget.started()  # None unless a deadline is set
        unknown: set[Fact] = set()
        tracer, metrics = self.obs.tracer, self.obs.metrics

        with tracer.span("query", mode=mode) as query_span:
            with tracer.span("query.ground"):
                rewritten = self.reduced.rewrite(query)
                groundings = ground_query(rewritten, data.chased)

                # Group support sets per candidate fact.
                supports_by_candidate: dict[Fact, list[tuple[Fact, ...]]] = {}
                for candidate, support in groundings:
                    supports_by_candidate.setdefault(candidate, []).append(
                        support
                    )
                stats.candidates = len(supports_by_candidate)

                accepted: set[Fact] = set()
                by_signature: dict[frozenset[int], list[Fact]] = {}
                for candidate, supports in supports_by_candidate.items():
                    if any(
                        all(analysis.is_safe_fact(fact) for fact in support)
                        for support in supports
                    ):
                        # An all-safe support set: certain.
                        accepted.add(candidate)
                        continue
                    signature = analysis.signature(
                        {fact for support in supports for fact in support}
                    )
                    if not signature:
                        raise RuntimeError(
                            f"unsafe candidate {candidate!r} with empty "
                            "signature: exchange-phase invariant violated"
                        )
                    by_signature.setdefault(signature, []).append(candidate)
                stats.safe_candidates = len(accepted)
                stats.signatures = len(by_signature)

            safe_facts = set(analysis.safe_chased)

            # Build every still-undecided signature program first, then
            # solve the whole batch through the executor (the programs are
            # pairwise independent, so any execution order or interleaving
            # is valid).
            pending: list[_SignatureGroup] = []
            family_batches: list[list[_SignatureGroup]] = []
            tasks: list[SolveTask] = []
            build_started = time.perf_counter()
            with tracer.span("query.build"):
                for signature, candidates in by_signature.items():
                    if clock is not None and clock.expired():
                        # Deadline passed during program construction:
                        # everything still unresolved is unknown — never
                        # silently dropped, never fabricated.
                        if not allow_partial:
                            raise SolveBudgetExceeded(
                                "query deadline exceeded while building "
                                "signature programs"
                            )
                        stats.timeouts += 1
                        unknown.update(candidates)
                        continue
                    group = self._resolve_group(
                        signature, candidates, supports_by_candidate,
                        safe_facts, mode, stats, build=not incremental,
                    )
                    accepted |= group.accepted_so_far
                    # Trivially-certain candidates are folded in *before*
                    # any query_atoms guard: even if `_emit_query_rules`'s
                    # invariant (trivially_certain ⊆ query_atoms) ever
                    # loosens, they can never be dropped.
                    accepted |= group.xr_program.trivially_certain
                    if incremental:
                        if group.unresolved:
                            pending.append(group)
                        else:
                            self._finalize_group(group, set(), mode)
                        continue
                    if group.solve_atoms:
                        pending.append(group)
                        tasks.append(
                            SolveTask(
                                program=PackedProgram.pack(
                                    group.xr_program.program
                                ),
                                query_atom_ids=tuple(
                                    sorted(group.solve_atoms.values())
                                ),
                                mode=mode,
                                budget=budget,
                                trace=tracer.enabled,
                            )
                        )
                    else:
                        self._finalize_group(group, set(), mode)
                if incremental and pending:
                    family_batches, tasks = self._assemble_families(
                        pending, supports_by_candidate, mode, stats,
                        accepted, unknown, clock, allow_partial,
                        trace=tracer.enabled, budget=budget,
                    )
            stats.build_seconds = time.perf_counter() - build_started

            if tasks:
                with tracer.span("query.solve"):
                    outcomes = self.executor.run(tasks, deadline=clock)
                    stats.executor = self.executor.last_dispatch
                    if incremental:
                        self._handle_family_outcomes(
                            family_batches, outcomes, mode, stats,
                            accepted, unknown, allow_partial,
                            tracer, metrics,
                        )
                    else:
                        self._handle_signature_outcomes(
                            pending, outcomes, mode, stats,
                            accepted, unknown, allow_partial,
                            tracer, metrics,
                        )

            if unknown:
                stats.degraded = True
                stats.unknown_candidates = answers_from_facts(unknown)
                if mode == "possible":
                    # Conservative over-approximation: a candidate we
                    # could not decide might hold in some XR-solution, so
                    # possible answers must include it (exact-possible ⊆
                    # degraded).
                    accepted |= unknown
            query_span.count("candidates", stats.candidates)
            query_span.count("signatures", stats.signatures)
            query_span.count("programs_solved", stats.programs_solved)
        stats.seconds = time.perf_counter() - started
        if metrics.enabled:
            self._record_query_metrics(metrics, stats)
        # Single-assignment publication: the engine keeps its own deep
        # copy, and the caller gets the local object — neither can mutate
        # the other's view afterwards.
        self._last_query_stats = stats.copy()
        return answers_from_facts(accepted), stats

    def _handle_signature_outcomes(
        self,
        pending: list[_SignatureGroup],
        outcomes,
        mode: str,
        stats: QueryPhaseStats,
        accepted: set[Fact],
        unknown: set[Fact],
        allow_partial: bool,
        tracer,
        metrics,
    ) -> None:
        """Fold per-signature solve outcomes into the answer state."""
        for group, outcome in zip(pending, outcomes):
            stats.retries += max(0, outcome.attempts - 1)
            if outcome.span is not None:
                # Worker span trees ride the result channel home;
                # reattached here under query.solve with a remote-clock
                # marker.
                tracer.attach(outcome.span)
            if not outcome.ok:
                # This group's solve was cut off (deadline, per-task
                # timeout, or a crashed worker out of retries): its
                # candidates are *unknown*.  Nothing is cached — an
                # unknown is a budget artifact, not a verdict.
                if not allow_partial:
                    raise SolveBudgetExceeded(
                        f"signature solve {outcome.status}: "
                        f"{len(group.solve_atoms)} candidate(s) undecided"
                    )
                stats.timeouts += 1
                unknown.update(group.solve_atoms)
                continue
            if outcome.decided is None:
                raise RuntimeError("a signature program has no stable model")
            stats.programs_solved += 1
            stats.program_seconds.append(outcome.seconds)
            stats.solve_seconds += outcome.seconds
            if metrics.enabled:
                metrics.histogram(
                    "solve_seconds", DEFAULT_TIME_BUCKETS
                ).observe(outcome.seconds)
            for key, value in outcome.solver_stats.items():
                stats.solver_stats[key] = (
                    stats.solver_stats.get(key, 0) + value
                )
            newly = {
                fact
                for fact, atom_id in group.solve_atoms.items()
                if atom_id in outcome.decided
            }
            accepted |= newly
            self._finalize_group(group, newly, mode)

    def _handle_family_outcomes(
        self,
        family_batches: list[list[_SignatureGroup]],
        outcomes,
        mode: str,
        stats: QueryPhaseStats,
        accepted: set[Fact],
        unknown: set[Fact],
        allow_partial: bool,
        tracer,
        metrics,
    ) -> None:
        """Fold family solve outcomes into the answer state.

        A family outcome may be *partial* (``status="timeout"`` with
        verdicts attached): every decided candidate keeps its exact
        verdict, only the ``undecided`` remainder degrades to unknown —
        and a member group is cached only when every one of its
        candidates got a verdict, so the caches never hold half-truths.
        """
        for members, outcome in zip(family_batches, outcomes):
            stats.retries += max(0, outcome.attempts - 1)
            if outcome.span is not None:
                tracer.attach(outcome.span)
            family_size = sum(len(m.solve_atoms) for m in members)
            if not outcome.ok and outcome.decided is None:
                # Hard cutoff before any verdict (batch deadline, crash
                # out of retries): the whole family is unknown.
                if not allow_partial:
                    raise SolveBudgetExceeded(
                        f"family solve {outcome.status}: "
                        f"{family_size} candidate(s) undecided"
                    )
                stats.timeouts += 1
                for member in members:
                    unknown.update(member.solve_atoms)
                continue
            if outcome.decided is None:
                raise RuntimeError("a family program has no stable model")
            if outcome.undecided and not allow_partial:
                raise SolveBudgetExceeded(
                    f"family solve {outcome.status}: "
                    f"{len(outcome.undecided)} of {family_size} "
                    "candidate(s) undecided"
                )
            stats.programs_solved += 1
            stats.families_solved += 1
            stats.family_candidates += family_size
            stats.program_seconds.append(outcome.seconds)
            stats.solve_seconds += outcome.seconds
            if metrics.enabled:
                metrics.histogram(
                    "solve_seconds", DEFAULT_TIME_BUCKETS
                ).observe(outcome.seconds)
            for key, value in outcome.solver_stats.items():
                stats.solver_stats[key] = (
                    stats.solver_stats.get(key, 0) + value
                )
            stats.core_skips += outcome.solver_stats.get("core_skips", 0)
            stats.carried_clauses += outcome.solver_stats.get(
                "carried_clauses", 0
            )
            if outcome.undecided:
                stats.timeouts += 1
            for member in members:
                newly = {
                    fact
                    for fact, atom_id in member.solve_atoms.items()
                    if atom_id in outcome.decided
                }
                accepted |= newly
                member_unknown = {
                    fact
                    for fact, atom_id in member.solve_atoms.items()
                    if atom_id in outcome.undecided
                }
                if member_unknown:
                    # Partially decided member: its exact verdicts count
                    # toward the answer, but the caches get nothing (a
                    # cache entry must cover the whole group).
                    unknown.update(member_unknown)
                else:
                    self._finalize_group(member, newly, mode)

    @staticmethod
    def _record_query_metrics(metrics, stats: QueryPhaseStats) -> None:
        """Fold one query phase's deterministic counters into ``metrics``."""
        metrics.inc("queries_total")
        metrics.inc("query_candidates_total", stats.candidates)
        metrics.inc("query_safe_candidates_total", stats.safe_candidates)
        metrics.inc("query_signatures_total", stats.signatures)
        metrics.inc("query_programs_solved_total", stats.programs_solved)
        metrics.inc("query_ground_rules_total", stats.total_rules)
        metrics.inc("cache_program_hits_total", stats.cache_hits)
        metrics.inc("cache_program_misses_total", stats.cache_misses)
        metrics.inc("cache_memo_hits_total", stats.memo_hits)
        metrics.inc("cache_memo_misses_total", stats.memo_misses)
        metrics.inc("query_timeouts_total", stats.timeouts)
        metrics.inc("query_retries_total", stats.retries)
        metrics.inc("query_families_solved_total", stats.families_solved)
        metrics.inc("query_family_candidates_total", stats.family_candidates)
        metrics.inc("solve_core_skips_total", stats.core_skips)
        metrics.inc("solve_carried_clauses_total", stats.carried_clauses)
        metrics.inc(
            "query_unknown_candidates_total", len(stats.unknown_candidates)
        )
        if stats.degraded:
            metrics.inc("budget_degraded_queries_total")
        metrics.gauge("query_largest_program_atoms").max(
            stats.largest_program_atoms
        )
        for key, value in stats.solver_stats.items():
            metrics.inc(f"solver_{key}_total", value)

    # Backwards-compatible internal entry point.
    def _answer(
        self,
        query: ConjunctiveQuery | UnionOfConjunctiveQueries,
        mode: str,
    ) -> set[tuple]:
        answers, _stats = self.answer_with_stats(query, mode=mode)
        return answers

    # ------------------------------------------------------------ helpers

    def _resolve_group(
        self,
        signature: frozenset[int],
        candidates: list[Fact],
        supports_by_candidate: dict[Fact, list[tuple[Fact, ...]]],
        safe_facts: set[Fact],
        mode: str,
        stats: QueryPhaseStats,
        build: bool = True,
    ) -> _SignatureGroup:
        """Decide a signature group from the caches, or build its program.

        A group answered entirely from the cache comes back with an empty
        ``solve_atoms`` and its accepted candidates in ``accepted_so_far``;
        otherwise the built program rides along for the executor batch.

        ``build=False`` (the incremental strategy) stops after the cache
        probes: undecided candidates come back in ``unresolved`` and no
        per-signature program is constructed — the family program built
        later covers them.  Cache keys are identical either way, so warm
        entries are shared across strategies.
        """
        assert self.analysis is not None and self.data is not None
        analysis, data = self.analysis, self.data

        group_groundings = [
            (candidate, support)
            for candidate in candidates
            for support in supports_by_candidate[candidate]
        ]
        key = program_key(signature, self.encoding, mode, group_groundings)

        if self.cache is not None:
            cached = self.cache.lookup_program(key)
            if cached is not None:
                stats.cache_hits += 1
                return _SignatureGroup(
                    key=key,
                    signature=signature,
                    xr_program=XRProgram(program=_EMPTY_PROGRAM),
                    decision_keys={},
                    solve_atoms={},
                    accepted_so_far=set(cached),
                )
            stats.cache_misses += 1

        # Per-candidate decision memo: coarser than the program cache —
        # it ignores the query's name and answer tuple, so structurally
        # identical candidates from *different* queries share verdicts.
        unresolved: list[Fact] = []
        group_accept: set[Fact] = set()
        decision_keys: dict[Fact, frozenset] = {}
        for candidate in candidates:
            memo_key = decision_key(supports_by_candidate[candidate], safe_facts)
            decision_keys[candidate] = memo_key
            verdict = None
            if self.cache is not None:
                verdict = self.cache.lookup_decision(
                    signature, self.encoding, mode, memo_key
                )
            if verdict is None:
                stats.memo_misses += 1
                unresolved.append(candidate)
            else:
                stats.memo_hits += 1
                if verdict:
                    group_accept.add(candidate)

        if not unresolved:
            return _SignatureGroup(
                key=key,
                signature=signature,
                xr_program=XRProgram(program=_EMPTY_PROGRAM),
                decision_keys={},
                solve_atoms={},
                accepted_so_far=group_accept,
            )

        if not build:
            return _SignatureGroup(
                key=key,
                signature=signature,
                xr_program=XRProgram(program=_EMPTY_PROGRAM),
                decision_keys={c: decision_keys[c] for c in unresolved},
                solve_atoms={},
                accepted_so_far=group_accept,
                unresolved=unresolved,
            )

        # Signatures hold *stable* cluster ids (incremental maintenance can
        # retire/mint ids), so resolution goes through the id lookup rather
        # than list position.
        clusters = [analysis.cluster(index) for index in signature]
        focus_ids: set[int] = set()
        violations = []
        for cluster in clusters:
            focus_ids |= cluster.influence_ids
            violations.extend(cluster.violations)
        focus_ids -= analysis.safe_ids
        query_groundings = [
            (candidate, support)
            for candidate in unresolved
            for support in supports_by_candidate[candidate]
        ]
        xr_program = build_xr_program(
            data,
            query_groundings=query_groundings,
            violations=violations,
            encoding=self.encoding,
            focus_ids=focus_ids,
            safe_ids=analysis.safe_ids,
        )
        stats.largest_program_atoms = max(
            stats.largest_program_atoms, xr_program.program.num_atoms
        )
        stats.total_rules += len(xr_program.program)

        solve_atoms = {
            fact: atom_id
            for fact, atom_id in xr_program.query_atoms.items()
            if fact not in xr_program.trivially_certain
        }
        return _SignatureGroup(
            key=key,
            signature=signature,
            xr_program=xr_program,
            decision_keys={c: decision_keys[c] for c in unresolved},
            solve_atoms=solve_atoms,
            accepted_so_far=group_accept,
            unresolved=unresolved,
        )

    def _assemble_families(
        self,
        pending: list[_SignatureGroup],
        supports_by_candidate: dict[Fact, list[tuple[Fact, ...]]],
        mode: str,
        stats: QueryPhaseStats,
        accepted: set[Fact],
        unknown: set[Fact],
        clock,
        allow_partial: bool,
        trace: bool = False,
        budget: SolveBudget | None = None,
    ) -> tuple[list[list[_SignatureGroup]], list[SolveTask]]:
        """Merge pending signature groups into cluster families, one shared
        program (and one :class:`SolveTask`) per family.

        Two groups belong to the same family when their signatures share a
        violation cluster (transitively — union-find over cluster ids).
        Each family's program is built once over the union focus
        (:func:`~repro.xr.program.build_family_program`); its members'
        ``solve_atoms`` are filled from the *shared* atom table, and every
        member keeps only its **own** trivially-certain candidates — a
        family-wide set in a member's cache entry would leak foreign facts
        into warm hits.  A family rides the executor as a single task so
        solver reuse survives process-pool dispatch.
        """
        assert self.analysis is not None and self.data is not None
        analysis, data = self.analysis, self.data
        if budget is None:
            budget = self.budget

        parent: dict[int, int] = {}

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:  # path compression
                parent[x], x = root, parent[x]
            return root

        for group in pending:
            ids = sorted(group.signature)
            for cluster_id in ids:
                parent.setdefault(cluster_id, cluster_id)
            anchor = find(ids[0])
            for cluster_id in ids[1:]:
                parent[find(cluster_id)] = anchor

        families: dict[int, list[_SignatureGroup]] = {}
        for group in pending:
            families.setdefault(find(min(group.signature)), []).append(group)

        family_batches: list[list[_SignatureGroup]] = []
        tasks: list[SolveTask] = []
        for root in sorted(families):
            members = families[root]
            if clock is not None and clock.expired():
                if not allow_partial:
                    raise SolveBudgetExceeded(
                        "query deadline exceeded while building family "
                        "programs"
                    )
                stats.timeouts += 1
                for member in members:
                    unknown.update(member.unresolved)
                continue
            cluster_ids = sorted(
                set().union(*(member.signature for member in members))
            )
            query_groundings = [
                (candidate, support)
                for member in members
                for candidate in member.unresolved
                for support in supports_by_candidate[candidate]
            ]
            # `builder` resolves through this module's globals so both
            # strategies share one program-builder seam (tests stub it).
            family_program = build_family_program(
                data,
                query_groundings=query_groundings,
                clusters=[analysis.cluster(i) for i in cluster_ids],
                safe_ids=analysis.safe_ids,
                encoding=self.encoding,
                builder=build_xr_program,
            )
            stats.largest_program_atoms = max(
                stats.largest_program_atoms, family_program.program.num_atoms
            )
            stats.total_rules += len(family_program.program)

            batch: list[_SignatureGroup] = []
            batch_atoms: set[int] = set()
            for member in members:
                member_trivial = {
                    candidate
                    for candidate in member.unresolved
                    if candidate in family_program.trivially_certain
                }
                accepted |= member_trivial
                member.xr_program = XRProgram(
                    program=_EMPTY_PROGRAM,
                    trivially_certain=member_trivial,
                )
                member.solve_atoms = {
                    candidate: family_program.query_atoms[candidate]
                    for candidate in member.unresolved
                    if candidate in family_program.query_atoms
                    and candidate not in member_trivial
                }
                if member.solve_atoms:
                    batch.append(member)
                    batch_atoms.update(member.solve_atoms.values())
                else:
                    # Fully decided without search (trivially certain or
                    # out of scope): cacheable right now.
                    self._finalize_group(member, set(), mode)
            if not batch:
                continue
            family_batches.append(batch)
            tasks.append(
                SolveTask(
                    program=PackedProgram.pack(family_program.program),
                    query_atom_ids=tuple(sorted(batch_atoms)),
                    mode=mode,
                    budget=budget,
                    trace=trace,
                    family=True,
                )
            )
        return family_batches, tasks

    def _finalize_group(
        self, group: _SignatureGroup, solver_accepted: set[Fact], mode: str
    ) -> None:
        """Record cache entries once a group's verdicts are complete."""
        if self.cache is None:
            return
        accepted = (
            group.accepted_so_far
            | solver_accepted
            | group.xr_program.trivially_certain
        )
        for candidate, memo_key in group.decision_keys.items():
            self.cache.store_decision(
                group.signature, self.encoding, mode, memo_key,
                candidate in accepted,
            )
        self.cache.store_program(group.key, accepted)
