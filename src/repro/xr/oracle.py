"""Definition 1, implemented literally: the exponential-time oracle.

A *source repair* of ``I`` w.r.t. ``M`` is a ⊆-maximal sub-instance of ``I``
that has a solution.  The XR-Certain answers are the intersection, over all
source repairs ``I'``, of the certain answers of the query on ``I'`` — which,
for (U)CQs and weakly acyclic mappings, are the constant answers on the
canonical universal solution ``chase(I', M)``.

Exhaustive enumeration over subsets: usable only on small instances; the
test suite uses it as ground truth for both practical engines.
"""

from __future__ import annotations

from itertools import combinations

from repro.chase.standard import standard_chase
from repro.dependencies.mapping import SchemaMapping
from repro.relational.instance import Fact, Instance
from repro.relational.queries import (
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    evaluate_constants_only,
)

_ORACLE_LIMIT = 18


def source_repairs(
    instance: Instance, mapping: SchemaMapping
) -> list[frozenset[Fact]]:
    """All source repairs of ``instance`` w.r.t. ``mapping`` (Definition 1.1).

    Exponential in the number of facts; refuses instances with more than
    18 facts.
    """
    facts = sorted(instance, key=repr)
    if len(facts) > _ORACLE_LIMIT:
        raise ValueError(
            f"oracle limited to {_ORACLE_LIMIT} facts, got {len(facts)}"
        )

    def consistent(subset: tuple[Fact, ...]) -> bool:
        return not standard_chase(Instance(subset), mapping).failed

    repairs: list[frozenset[Fact]] = []
    for size in range(len(facts), -1, -1):
        for combo in combinations(facts, size):
            as_set = frozenset(combo)
            if any(as_set < repair for repair in repairs):
                continue  # strictly inside a known repair: not maximal
            if consistent(combo):
                repairs.append(as_set)
    return repairs


def xr_certain_oracle(
    query: ConjunctiveQuery | UnionOfConjunctiveQueries,
    instance: Instance,
    mapping: SchemaMapping,
) -> set[tuple]:
    """XR-Certain answers by brute force (Definition 1.3).

    For each source repair, chase to the canonical universal solution and
    take the constant answers; intersect across repairs.
    """
    answers: set[tuple] | None = None
    for repair in source_repairs(instance, mapping):
        result = standard_chase(Instance(repair), mapping)
        assert not result.failed, "a source repair must have a solution"
        assert result.target is not None
        repair_answers = evaluate_constants_only(query, result.target)
        answers = repair_answers if answers is None else (answers & repair_answers)
        if not answers:
            return set()
    return answers if answers is not None else set()


def xr_possible_oracle(
    query: ConjunctiveQuery | UnionOfConjunctiveQueries,
    instance: Instance,
    mapping: SchemaMapping,
) -> set[tuple]:
    """XR-Possible answers by brute force: the union, over all source
    repairs, of the constant answers on the canonical universal solution —
    the brave counterpart of :func:`xr_certain_oracle`."""
    answers: set[tuple] = set()
    for repair in source_repairs(instance, mapping):
        result = standard_chase(Instance(repair), mapping)
        assert not result.failed, "a source repair must have a solution"
        assert result.target is not None
        answers |= evaluate_constants_only(query, result.target)
    return answers
