"""Ground disjunctive programs whose stable models are the XR-solutions.

Two encodings are provided.

**Figure 1 (as published)** — :func:`build_figure1_program` transcribes the
program of Theorem 2 literally: chase / deletion / remainder rules per tgd
grounding, disjunctive deletion rules per violated ground egd, incidental
("i") classification, and the one-of-three constraints.  During this
reproduction we found that the literal Figure 1 program *misses* XR-solutions
in which every violated-egd body fact is only *incidentally* deleted — e.g.
when deleting a single shared source fact removes all facts of a violation
at once: the ``¬Ri`` guards then withdraw the support of the very deletion
that caused the cascade, and no stable model represents that repair (see
``tests/test_xr/test_figure1_incompleteness.py`` for the minimal example).
The encoding is kept for study and for the ablation benchmarks.

**Repair-guess (default)** — :func:`build_repair_program` encodes
Definition 1 directly, sized by the repair envelope:

- safe source facts always remain; each *suspect* source fact ``f`` is
  guessed ``fd ∨ fr``;
- a "remains" chase layer derives ``gr`` for every grounding whose body
  remains;
- one integrity constraint per violated ground egd forbids its body to
  remain entirely (consistency);
- per suspect fact ``f``, a side chase of ``remains ∪ {f}`` (restricted to
  the influence of ``f``) derives ``conflict_f`` when adding ``f`` back
  would re-create a violation; ``⊥ ← fd, ¬conflict_f`` enforces
  ⊆-maximality of the repair.

Stable models correspond exactly to source repairs; cautious truth of the
query atoms is XR-Certain membership.  Both builders accept the segmentary
``focus``/``safe`` restriction of Section 6.4 (safe facts are represented by
the value *true*).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asp.syntax import AtomTable, GroundProgram, GroundRule
from repro.relational.instance import Fact
from repro.xr.exchange import ExchangeData, Violation
from repro.xr.subscripts import deleted, incidental, remains

WITH_FACT = "__with__"  # copy-layer relation: fact g in chase(remains ∪ {f})
CONFLICT = "__conflict__"  # adding f back would violate an egd


@dataclass
class XRProgram:
    """A ground program plus the query-answer atoms to reason about."""

    program: GroundProgram
    # Candidate answer fact -> atom id (cautious membership = XR-Certain).
    query_atoms: dict[Fact, int] = field(default_factory=dict)
    # Candidates accepted outright (an entirely-safe support set).
    trivially_certain: set[Fact] = field(default_factory=set)


def _emit_query_rules(
    result: XRProgram,
    emit,
    atoms: AtomTable,
    query_groundings,
    available: set[Fact],
    safe: set[Fact],
) -> None:
    """Shared query-rule emission: ``q ← remains(support set)``."""
    for query_fact, body_facts in query_groundings or ():
        if any(fact not in available for fact in body_facts):
            continue
        focus_body = tuple(dict.fromkeys(f for f in body_facts if f not in safe))
        query_id = atoms.intern(query_fact)
        result.query_atoms[query_fact] = query_id
        if not focus_body:
            result.trivially_certain.add(query_fact)
            emit(GroundRule(head=(query_id,)))
            continue
        emit(
            GroundRule(
                head=(query_id,),
                body_pos=tuple(atoms.intern(remains(f)) for f in focus_body),
            )
        )


# ---------------------------------------------------------------------------
# The corrected (default) encoding.
# ---------------------------------------------------------------------------


def _suspect_sources(
    data: ExchangeData, violations: list[Violation], within: set[Fact]
) -> set[Fact]:
    """Source facts inside ``within`` lying in a violation's support closure."""
    source_names = data.mapping.source.names()
    closure: set[Fact] = set()
    frontier: list[Fact] = []
    for violation in violations:
        for fact in violation.body_facts:
            if fact not in closure:
                closure.add(fact)
                frontier.append(fact)
    while frontier:
        fact = frontier.pop()
        for index in data.supports_of.get(fact, ()):
            for body_fact in data.groundings[index][1]:
                if body_fact not in closure:
                    closure.add(body_fact)
                    frontier.append(body_fact)
    return {
        f for f in closure if f.relation in source_names and f in within
    }


def _influence_of(data: ExchangeData, fact: Fact) -> set[Fact]:
    """Forward closure of a single fact through support sets."""
    influenced = {fact}
    frontier = [fact]
    while frontier:
        current = frontier.pop()
        for index in data.occurs_in_body_of.get(current, ()):
            head = data.groundings[index][2]
            if head not in influenced:
                influenced.add(head)
                frontier.append(head)
    return influenced


def build_repair_program(
    data: ExchangeData,
    query_groundings: list[tuple[Fact, tuple[Fact, ...]]] | None = None,
    focus: set[Fact] | None = None,
    safe: set[Fact] | None = None,
    violations: list[Violation] | None = None,
) -> XRProgram:
    """Build the repair-guess program (see module docstring).

    ``focus``/``safe`` restrict the program for the segmentary engine:
    only facts in ``focus`` are modelled, facts in ``safe`` are true, rules
    touching other facts are dropped (independent clusters).
    """
    source_names = data.mapping.source.names()
    if focus is None:
        focus = set(data.chased)
    if safe is None:
        safe = set()
    if violations is None:
        violations = data.violations
    available = focus | safe

    program = GroundProgram(AtomTable())
    atoms = program.atoms
    seen: set[GroundRule] = set()

    def emit(rule: GroundRule) -> None:
        if rule not in seen:
            seen.add(rule)
            program.add_rule(rule)

    suspects = _suspect_sources(data, violations, focus)

    # --- source layer: guesses for suspects, units for the rest.
    for fact in focus:
        if fact.relation not in source_names:
            continue
        remains_id = atoms.intern(remains(fact))
        if fact in suspects:
            emit(
                GroundRule(
                    head=(atoms.intern(deleted(fact)), remains_id),
                )
            )
        else:
            emit(GroundRule(head=(remains_id,)))

    # --- remains chase layer.
    for _rule, body_facts, head_fact in data.groundings:
        if head_fact in safe or head_fact not in focus:
            continue
        if any(fact not in available for fact in body_facts):
            continue
        focus_body = tuple(dict.fromkeys(f for f in body_facts if f not in safe))
        head_id = atoms.intern(remains(head_fact))
        if not focus_body:
            emit(GroundRule(head=(head_id,)))
            continue
        emit(
            GroundRule(
                head=(head_id,),
                body_pos=tuple(atoms.intern(remains(f)) for f in focus_body),
            )
        )

    # --- consistency: no violated egd body may remain entirely.
    relevant_violations: list[Violation] = []
    for violation in violations:
        body_facts = tuple(dict.fromkeys(violation.body_facts))
        if any(fact not in available for fact in body_facts):
            continue
        relevant_violations.append(violation)
        focus_body = tuple(f for f in body_facts if f not in safe)
        if not focus_body:
            raise ValueError(
                f"unrepairable violation: every fact of {violation!r} is safe"
            )
        emit(
            GroundRule(
                head=(),
                body_pos=tuple(atoms.intern(remains(f)) for f in focus_body),
            )
        )

    # --- maximality: a deleted suspect must re-create some violation.
    for suspect in suspects:
        influence = _influence_of(data, suspect) & focus
        conflict_id = atoms.intern(Fact(CONFLICT, (suspect,)))

        def copy_atom(g: Fact) -> int:
            return atoms.intern(Fact(WITH_FACT, (g, suspect)))

        # The added fact itself, and everything still remaining.
        emit(GroundRule(head=(copy_atom(suspect),)))
        for fact in influence:
            if fact is suspect:
                continue
            emit(
                GroundRule(
                    head=(copy_atom(fact),),
                    body_pos=(atoms.intern(remains(fact)),),
                )
            )
        # Chase within the influence of the suspect.
        for _rule, body_facts, head_fact in data.groundings:
            if head_fact not in influence:
                continue
            if any(fact not in available for fact in body_facts):
                continue
            body_ids = []
            for fact in dict.fromkeys(body_facts):
                if fact == suspect or fact in safe:
                    continue
                if fact in influence:
                    body_ids.append(copy_atom(fact))
                else:
                    body_ids.append(atoms.intern(remains(fact)))
            emit(GroundRule(head=(copy_atom(head_fact),), body_pos=tuple(body_ids)))
        # Conflict detection against every relevant violation.
        for violation in relevant_violations:
            body_facts = tuple(dict.fromkeys(violation.body_facts))
            if not any(fact in influence for fact in body_facts):
                continue  # unaffected by re-adding the suspect
            body_ids = []
            for fact in body_facts:
                if fact in safe:
                    continue
                if fact in influence:
                    body_ids.append(copy_atom(fact))
                else:
                    body_ids.append(atoms.intern(remains(fact)))
            emit(GroundRule(head=(conflict_id,), body_pos=tuple(body_ids)))
        emit(
            GroundRule(
                head=(),
                body_pos=(atoms.intern(deleted(suspect)),),
                body_neg=(conflict_id,),
            )
        )

    result = XRProgram(program=program)
    _emit_query_rules(result, emit, atoms, query_groundings, available, safe)
    return result


# ---------------------------------------------------------------------------
# The literal Figure 1 encoding (published variant; see module docstring).
# ---------------------------------------------------------------------------


def build_figure1_program(
    data: ExchangeData,
    query_groundings: list[tuple[Fact, tuple[Fact, ...]]] | None = None,
    focus: set[Fact] | None = None,
    safe: set[Fact] | None = None,
    violations: list[Violation] | None = None,
) -> XRProgram:
    """Build the ground Figure 1 program of Theorem 2, literally.

    Kept as a study/ablation artifact: on mappings with chained tgds it can
    miss XR-solutions (module docstring); on single-level mappings — e.g.
    key constraints directly over exchanged facts — it agrees with
    :func:`build_repair_program`.
    """
    source_names = data.mapping.source.names()
    all_facts = set(data.chased)
    if focus is None:
        focus = all_facts
    if safe is None:
        safe = set()
    if violations is None:
        violations = data.violations
    available = focus | safe

    program = GroundProgram(AtomTable())
    atoms = program.atoms
    seen: set[GroundRule] = set()

    def emit(rule: GroundRule) -> None:
        if rule not in seen:
            seen.add(rule)
            program.add_rule(rule)

    def is_target(fact: Fact) -> bool:
        return fact.relation not in source_names

    # --- per-fact rules.
    for fact in focus:
        fact_id = atoms.intern(fact)
        deleted_id = atoms.intern(deleted(fact))
        remains_id = atoms.intern(remains(fact))
        if is_target(fact):
            incidental_id = atoms.intern(incidental(fact))
            emit(
                GroundRule(
                    head=(incidental_id,),
                    body_pos=(fact_id,),
                    body_neg=(remains_id, deleted_id),
                )
            )
            emit(GroundRule(head=(), body_pos=(remains_id, deleted_id)))
            emit(GroundRule(head=(), body_pos=(remains_id, incidental_id)))
            emit(GroundRule(head=(), body_pos=(deleted_id, incidental_id)))
        else:
            emit(GroundRule(head=(fact_id,)))
            emit(
                GroundRule(
                    head=(remains_id,),
                    body_pos=(fact_id,),
                    body_neg=(deleted_id,),
                )
            )

    # --- chase / deletion / remainder rules per tgd grounding.
    for _rule, body_facts, head_fact in data.groundings:
        if head_fact in safe or head_fact not in focus:
            continue
        if any(fact not in available for fact in body_facts):
            continue
        if head_fact in body_facts:
            continue  # tautological grounding
        focus_body = tuple(dict.fromkeys(f for f in body_facts if f not in safe))
        if not focus_body:
            emit(GroundRule(head=(atoms.intern(head_fact),)))
            emit(GroundRule(head=(atoms.intern(remains(head_fact)),)))
            continue
        head_id = atoms.intern(head_fact)
        body_ids = tuple(atoms.intern(f) for f in focus_body)
        emit(GroundRule(head=(head_id,), body_pos=body_ids))
        emit(
            GroundRule(
                head=tuple(atoms.intern(deleted(f)) for f in focus_body),
                body_pos=(atoms.intern(deleted(head_fact)),) + body_ids,
                body_neg=tuple(
                    atoms.intern(incidental(f))
                    for f in focus_body
                    if is_target(f)
                ),
            )
        )
        emit(
            GroundRule(
                head=(atoms.intern(remains(head_fact)),),
                body_pos=tuple(atoms.intern(remains(f)) for f in focus_body),
            )
        )

    # --- egd deletion rules.
    for violation in violations:
        body_facts = tuple(dict.fromkeys(violation.body_facts))
        if any(fact not in available for fact in body_facts):
            continue
        focus_body = tuple(f for f in body_facts if f not in safe)
        if not focus_body:
            raise ValueError(
                f"unrepairable violation: every fact of {violation!r} is safe"
            )
        body_ids = tuple(atoms.intern(f) for f in focus_body)
        emit(
            GroundRule(
                head=tuple(atoms.intern(deleted(f)) for f in focus_body),
                body_pos=body_ids,
                body_neg=tuple(
                    atoms.intern(incidental(f))
                    for f in focus_body
                    if is_target(f)
                ),
            )
        )

    result = XRProgram(program=program)
    _emit_query_rules(result, emit, atoms, query_groundings, available, safe)
    return result


ENCODINGS = {
    "repair": build_repair_program,
    "figure1": build_figure1_program,
}


def build_xr_program(
    data: ExchangeData,
    query_groundings: list[tuple[Fact, tuple[Fact, ...]]] | None = None,
    focus: set[Fact] | None = None,
    safe: set[Fact] | None = None,
    violations: list[Violation] | None = None,
    encoding: str = "repair",
) -> XRProgram:
    """Dispatch to the selected encoding (``"repair"`` or ``"figure1"``)."""
    try:
        builder = ENCODINGS[encoding]
    except KeyError:
        raise ValueError(
            f"unknown encoding {encoding!r}; choose from {sorted(ENCODINGS)}"
        ) from None
    return builder(
        data,
        query_groundings=query_groundings,
        focus=focus,
        safe=safe,
        violations=violations,
    )
