"""Ground disjunctive programs whose stable models are the XR-solutions.

Two encodings are provided.

**Figure 1 (as published)** — :func:`build_figure1_program` transcribes the
program of Theorem 2 literally: chase / deletion / remainder rules per tgd
grounding, disjunctive deletion rules per violated ground egd, incidental
("i") classification, and the one-of-three constraints.  During this
reproduction we found that the literal Figure 1 program *misses* XR-solutions
in which every violated-egd body fact is only *incidentally* deleted — e.g.
when deleting a single shared source fact removes all facts of a violation
at once: the ``¬Ri`` guards then withdraw the support of the very deletion
that caused the cascade, and no stable model represents that repair (see
``tests/test_xr/test_figure1_incompleteness.py`` for the minimal example).
The encoding is kept for study and for the ablation benchmarks.

**Repair-guess (default)** — :func:`build_repair_program` encodes
Definition 1 directly, sized by the repair envelope:

- safe source facts always remain; each *suspect* source fact ``f`` is
  guessed ``fd ∨ fr``;
- a "remains" chase layer derives ``gr`` for every grounding whose body
  remains;
- one integrity constraint per violated ground egd forbids its body to
  remain entirely (consistency);
- per suspect fact ``f``, a side chase of ``remains ∪ {f}`` (restricted to
  the influence of ``f``) derives ``conflict_f`` when adding ``f`` back
  would re-create a violation; ``⊥ ← fd, ¬conflict_f`` enforces
  ⊆-maximality of the repair.

Stable models correspond exactly to source repairs; cautious truth of the
query atoms is XR-Certain membership.  Both builders accept the segmentary
``focus``/``safe`` restriction of Section 6.4 (safe facts are represented by
the value *true*).

Implementation note: both builders run over the **interned id universe** of
:class:`~repro.xr.exchange.ExchangeData`.  Focus/safe sets are normalized to
int sets once (callers holding ids — the segmentary engine — pass
``focus_ids``/``safe_ids`` directly and skip the conversion); every inner
loop then tests membership on machine ints and walks the precomputed
``groundings_by_head``/``occurs_in_body`` adjacency instead of rescanning
the grounding and violation lists per suspect, which was the measured
quadratic blowup at high suspect rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.asp.syntax import AtomTable, GroundProgram, GroundRule
from repro.relational.instance import Fact
from repro.xr.exchange import ExchangeData, Violation
from repro.xr.subscripts import deleted, incidental, remains

WITH_FACT = "__with__"  # copy-layer relation: fact g in chase(remains ∪ {f})
CONFLICT = "__conflict__"  # adding f back would violate an egd


@dataclass
class XRProgram:
    """A ground program plus the query-answer atoms to reason about."""

    program: GroundProgram
    # Candidate answer fact -> atom id (cautious membership = XR-Certain).
    query_atoms: dict[Fact, int] = field(default_factory=dict)
    # Candidates accepted outright (an entirely-safe support set).
    trivially_certain: set[Fact] = field(default_factory=set)


class _Emitter:
    """Dedup-and-append rule emission over raw (head, pos, neg) tuples.

    Hashes three int tuples per rule instead of a :class:`GroundRule`
    dataclass (whose ``__hash__`` re-derives the same tuple hash through
    dataclass machinery on every probe).
    """

    __slots__ = ("program", "seen")

    def __init__(self, program: GroundProgram):
        self.program = program
        self.seen: set[tuple] = set()

    def __call__(
        self,
        head: tuple[int, ...],
        body_pos: tuple[int, ...] = (),
        body_neg: tuple[int, ...] = (),
    ) -> None:
        key = (head, body_pos, body_neg)
        if key not in self.seen:
            self.seen.add(key)
            self.program.add_rule(
                GroundRule(head=head, body_pos=body_pos, body_neg=body_neg)
            )


def _normalize_scope(
    data: ExchangeData,
    focus: set[Fact] | None,
    safe: set[Fact] | None,
    focus_ids: set[int] | frozenset[int] | None,
    safe_ids: set[int] | frozenset[int] | None,
) -> tuple[set[int], set[int]]:
    """Resolve the focus/safe scope to id sets (interning stray facts)."""
    if focus_ids is None:
        if focus is None:
            focus_ids = data.id_set(data.chased)
        else:
            focus_ids = data.id_set(focus)
    else:
        focus_ids = set(focus_ids)
    if safe_ids is None:
        safe_ids = data.id_set(safe) if safe else set()
    else:
        safe_ids = set(safe_ids)
    return focus_ids, safe_ids


def _normalize_violations(
    data: ExchangeData, violations: list[Violation] | None
) -> list[tuple[Violation, tuple[int, ...]]]:
    """Pair each violation with its deduplicated body id tuple."""
    if violations is None:
        return list(zip(data.violations, data.violation_bodies))
    return [(v, data.violation_body_ids(v)) for v in violations]


def _emit_query_rules(
    result: XRProgram,
    emit: _Emitter,
    data: ExchangeData,
    remains_atom,
    query_groundings,
    available_ids: set[int],
    safe_ids: set[int],
) -> None:
    """Shared query-rule emission: ``q ← remains(support set)``."""
    atoms = result.program.atoms
    id_of = data.fact_ids.get
    for query_fact, body_facts in query_groundings or ():
        body_ids = []
        in_scope = True
        for fact in body_facts:
            fact_id = id_of(fact)
            if fact_id is None or fact_id not in available_ids:
                in_scope = False
                break
            body_ids.append(fact_id)
        if not in_scope:
            continue
        focus_body = tuple(
            dict.fromkeys(i for i in body_ids if i not in safe_ids)
        )
        query_id = atoms.intern(query_fact)
        result.query_atoms[query_fact] = query_id
        if not focus_body:
            result.trivially_certain.add(query_fact)
            emit((query_id,))
            continue
        emit((query_id,), tuple(remains_atom(i) for i in focus_body))


# ---------------------------------------------------------------------------
# The corrected (default) encoding.
# ---------------------------------------------------------------------------


def _suspect_source_ids(
    data: ExchangeData,
    violation_bodies: Iterable[tuple[int, ...]],
    within_ids: set[int],
) -> set[int]:
    """Source fact ids inside ``within_ids`` lying in a violation's support
    closure (backward closure walked over the id adjacency)."""
    closure: set[int] = set()
    frontier: list[int] = []
    for body_ids in violation_bodies:
        for fact_id in body_ids:
            if fact_id not in closure:
                closure.add(fact_id)
                frontier.append(fact_id)
    groundings_by_head = data.groundings_by_head
    bodies = data.grounding_bodies
    while frontier:
        fact_id = frontier.pop()
        for index in groundings_by_head[fact_id]:
            for body_id in bodies[index]:
                if body_id not in closure:
                    closure.add(body_id)
                    frontier.append(body_id)
    source_mask = data.source_id_mask
    return {
        fact_id
        for fact_id in closure
        if source_mask[fact_id] and fact_id in within_ids
    }


def build_repair_program(
    data: ExchangeData,
    query_groundings: list[tuple[Fact, tuple[Fact, ...]]] | None = None,
    focus: set[Fact] | None = None,
    safe: set[Fact] | None = None,
    violations: list[Violation] | None = None,
    focus_ids: set[int] | frozenset[int] | None = None,
    safe_ids: set[int] | frozenset[int] | None = None,
) -> XRProgram:
    """Build the repair-guess program (see module docstring).

    ``focus``/``safe`` restrict the program for the segmentary engine:
    only facts in ``focus`` are modelled, facts in ``safe`` are true, rules
    touching other facts are dropped (independent clusters).  Callers that
    already hold interned ids pass ``focus_ids``/``safe_ids`` instead.
    """
    focus_ids, safe_ids = _normalize_scope(data, focus, safe, focus_ids, safe_ids)
    scoped_violations = _normalize_violations(data, violations)
    available = focus_ids | safe_ids

    facts_by_id = data.facts_by_id
    source_mask = data.source_id_mask
    grounding_bodies = data.grounding_bodies
    grounding_heads = data.grounding_heads

    program = GroundProgram(AtomTable())
    atoms = program.atoms
    emit = _Emitter(program)

    # Lazily interned per-fact atom ids for the "remains" copies (dense
    # arrays over fact ids; 0 = not yet interned, real atom ids are >= 1).
    remains_ids = [0] * len(facts_by_id)

    def remains_atom(fact_id: int) -> int:
        atom_id = remains_ids[fact_id]
        if not atom_id:
            atom_id = atoms.intern(remains(facts_by_id[fact_id]))
            remains_ids[fact_id] = atom_id
        return atom_id

    suspects = _suspect_source_ids(
        data, (body for _v, body in scoped_violations), focus_ids
    )

    # --- source layer: guesses for suspects, units for the rest.
    for fact_id in sorted(focus_ids):
        if not source_mask[fact_id]:
            continue
        remains_id = remains_atom(fact_id)
        if fact_id in suspects:
            emit((atoms.intern(deleted(facts_by_id[fact_id])), remains_id))
        else:
            emit((remains_id,))

    # --- remains chase layer.
    for index, head_id in enumerate(grounding_heads):
        if head_id in safe_ids or head_id not in focus_ids:
            continue
        body_ids = grounding_bodies[index]
        focus_body: list[int] = []
        in_scope = True
        for body_id in body_ids:
            if body_id in safe_ids:
                continue
            if body_id not in focus_ids:
                in_scope = False
                break
            focus_body.append(body_id)
        if not in_scope:
            continue
        head_atom = remains_atom(head_id)
        if not focus_body:
            emit((head_atom,))
            continue
        emit((head_atom,), tuple(remains_atom(i) for i in focus_body))

    # --- consistency: no violated egd body may remain entirely.
    relevant_violations: list[tuple[Violation, tuple[int, ...]]] = []
    for violation, body_ids in scoped_violations:
        if any(fact_id not in available for fact_id in body_ids):
            continue
        relevant_violations.append((violation, body_ids))
        focus_body = [i for i in body_ids if i not in safe_ids]
        if not focus_body:
            raise ValueError(
                f"unrepairable violation: every fact of {violation!r} is safe"
            )
        emit((), tuple(remains_atom(i) for i in focus_body))

    # --- maximality: a deleted suspect must re-create some violation.
    for suspect in sorted(suspects):
        influence = data.influence_ids_of(suspect) & focus_ids
        suspect_fact = facts_by_id[suspect]
        conflict_id = atoms.intern(Fact(CONFLICT, (suspect_fact,)))

        copy_ids = [0] * len(facts_by_id)

        def copy_atom(fact_id: int) -> int:
            atom_id = copy_ids[fact_id]
            if not atom_id:
                atom_id = atoms.intern(
                    Fact(WITH_FACT, (facts_by_id[fact_id], suspect_fact))
                )
                copy_ids[fact_id] = atom_id
            return atom_id

        # The added fact itself, and everything still remaining.
        emit((copy_atom(suspect),))
        for fact_id in sorted(influence):
            if fact_id == suspect:
                continue
            emit((copy_atom(fact_id),), (remains_atom(fact_id),))
        # Chase within the influence of the suspect: only groundings whose
        # head lies in the influence can fire, and `groundings_by_head`
        # yields exactly those (no full grounding rescan per suspect).
        for head_id in sorted(influence):
            for index in data.groundings_by_head[head_id]:
                body_ids = grounding_bodies[index]
                if any(fact_id not in available for fact_id in body_ids):
                    continue
                rule_body: list[int] = []
                for fact_id in body_ids:
                    if fact_id == suspect or fact_id in safe_ids:
                        continue
                    if fact_id in influence:
                        rule_body.append(copy_atom(fact_id))
                    else:
                        rule_body.append(remains_atom(fact_id))
                emit((copy_atom(head_id),), tuple(rule_body))
        # Conflict detection against every relevant violation.
        for _violation, body_ids in relevant_violations:
            if not any(fact_id in influence for fact_id in body_ids):
                continue  # unaffected by re-adding the suspect
            rule_body = []
            for fact_id in body_ids:
                if fact_id in safe_ids:
                    continue
                if fact_id in influence:
                    rule_body.append(copy_atom(fact_id))
                else:
                    rule_body.append(remains_atom(fact_id))
            emit((conflict_id,), tuple(rule_body))
        emit(
            (),
            (atoms.intern(deleted(suspect_fact)),),
            (conflict_id,),
        )

    result = XRProgram(program=program)
    _emit_query_rules(
        result, emit, data, remains_atom, query_groundings, available, safe_ids
    )
    return result


# ---------------------------------------------------------------------------
# The literal Figure 1 encoding (published variant; see module docstring).
# ---------------------------------------------------------------------------


def build_figure1_program(
    data: ExchangeData,
    query_groundings: list[tuple[Fact, tuple[Fact, ...]]] | None = None,
    focus: set[Fact] | None = None,
    safe: set[Fact] | None = None,
    violations: list[Violation] | None = None,
    focus_ids: set[int] | frozenset[int] | None = None,
    safe_ids: set[int] | frozenset[int] | None = None,
) -> XRProgram:
    """Build the ground Figure 1 program of Theorem 2, literally.

    Kept as a study/ablation artifact: on mappings with chained tgds it can
    miss XR-solutions (module docstring); on single-level mappings — e.g.
    key constraints directly over exchanged facts — it agrees with
    :func:`build_repair_program`.
    """
    focus_ids, safe_ids = _normalize_scope(data, focus, safe, focus_ids, safe_ids)
    scoped_violations = _normalize_violations(data, violations)
    available = focus_ids | safe_ids

    facts_by_id = data.facts_by_id
    source_mask = data.source_id_mask
    grounding_bodies = data.grounding_bodies
    grounding_heads = data.grounding_heads

    program = GroundProgram(AtomTable())
    atoms = program.atoms
    emit = _Emitter(program)

    fact_atoms = [0] * len(facts_by_id)
    remains_ids = [0] * len(facts_by_id)
    deleted_ids = [0] * len(facts_by_id)
    incidental_ids = [0] * len(facts_by_id)

    def fact_atom(fact_id: int) -> int:
        atom_id = fact_atoms[fact_id]
        if not atom_id:
            atom_id = atoms.intern(facts_by_id[fact_id])
            fact_atoms[fact_id] = atom_id
        return atom_id

    def remains_atom(fact_id: int) -> int:
        atom_id = remains_ids[fact_id]
        if not atom_id:
            atom_id = atoms.intern(remains(facts_by_id[fact_id]))
            remains_ids[fact_id] = atom_id
        return atom_id

    def deleted_atom(fact_id: int) -> int:
        atom_id = deleted_ids[fact_id]
        if not atom_id:
            atom_id = atoms.intern(deleted(facts_by_id[fact_id]))
            deleted_ids[fact_id] = atom_id
        return atom_id

    def incidental_atom(fact_id: int) -> int:
        atom_id = incidental_ids[fact_id]
        if not atom_id:
            atom_id = atoms.intern(incidental(facts_by_id[fact_id]))
            incidental_ids[fact_id] = atom_id
        return atom_id

    # --- per-fact rules.
    for fact_id in sorted(focus_ids):
        atom = fact_atom(fact_id)
        deleted_id = deleted_atom(fact_id)
        remains_id = remains_atom(fact_id)
        if not source_mask[fact_id]:  # target fact
            incidental_id = incidental_atom(fact_id)
            emit((incidental_id,), (atom,), (remains_id, deleted_id))
            emit((), (remains_id, deleted_id))
            emit((), (remains_id, incidental_id))
            emit((), (deleted_id, incidental_id))
        else:
            emit((atom,))
            emit((remains_id,), (atom,), (deleted_id,))

    # --- chase / deletion / remainder rules per tgd grounding.
    for index, head_id in enumerate(grounding_heads):
        if head_id in safe_ids or head_id not in focus_ids:
            continue
        body_ids = grounding_bodies[index]
        if any(fact_id not in available for fact_id in body_ids):
            continue
        if head_id in body_ids:
            continue  # tautological grounding
        focus_body = tuple(i for i in body_ids if i not in safe_ids)
        if not focus_body:
            emit((fact_atom(head_id),))
            emit((remains_atom(head_id),))
            continue
        body_atoms = tuple(fact_atom(i) for i in focus_body)
        emit((fact_atom(head_id),), body_atoms)
        emit(
            tuple(deleted_atom(i) for i in focus_body),
            (deleted_atom(head_id),) + body_atoms,
            tuple(
                incidental_atom(i)
                for i in focus_body
                if not source_mask[i]
            ),
        )
        emit(
            (remains_atom(head_id),),
            tuple(remains_atom(i) for i in focus_body),
        )

    # --- egd deletion rules.
    for violation, body_ids in scoped_violations:
        if any(fact_id not in available for fact_id in body_ids):
            continue
        focus_body = tuple(i for i in body_ids if i not in safe_ids)
        if not focus_body:
            raise ValueError(
                f"unrepairable violation: every fact of {violation!r} is safe"
            )
        emit(
            tuple(deleted_atom(i) for i in focus_body),
            tuple(fact_atom(i) for i in focus_body),
            tuple(
                incidental_atom(i)
                for i in focus_body
                if not source_mask[i]
            ),
        )

    result = XRProgram(program=program)
    _emit_query_rules(
        result, emit, data, remains_atom, query_groundings, available, safe_ids
    )
    return result


ENCODINGS = {
    "repair": build_repair_program,
    "figure1": build_figure1_program,
}


def build_family_program(
    data: ExchangeData,
    query_groundings: list[tuple[Fact, tuple[Fact, ...]]],
    clusters: Iterable,
    safe_ids: set[int] | frozenset[int],
    encoding: str = "repair",
    builder=None,
) -> XRProgram:
    """One shared ground program for a whole cluster *family*.

    A family is a set of signature groups whose signatures overlap on
    violation clusters; ``clusters`` is the union of those clusters
    (:class:`~repro.xr.envelope.ViolationCluster` instances, deduplicated
    by the caller).  The program is the ordinary XR encoding over the
    union focus — sound because clusters are pairwise independent
    (Definition 8): restricting a stable model of the union program to
    one member signature's focus yields exactly a stable model of that
    member's per-signature program, so cautious/brave verdicts of the
    query atoms coincide.  All candidates of the family then share one
    solver, and everything it learns transfers across them.
    """
    focus_ids: set[int] = set()
    violations: list[Violation] = []
    for cluster in clusters:
        focus_ids |= cluster.influence_ids
        violations.extend(cluster.violations)
    focus_ids -= set(safe_ids)
    if builder is None:
        builder = build_xr_program
    return builder(
        data,
        query_groundings=query_groundings,
        violations=violations,
        encoding=encoding,
        focus_ids=focus_ids,
        safe_ids=safe_ids,
    )


def build_xr_program(
    data: ExchangeData,
    query_groundings: list[tuple[Fact, tuple[Fact, ...]]] | None = None,
    focus: set[Fact] | None = None,
    safe: set[Fact] | None = None,
    violations: list[Violation] | None = None,
    encoding: str = "repair",
    focus_ids: set[int] | frozenset[int] | None = None,
    safe_ids: set[int] | frozenset[int] | None = None,
) -> XRProgram:
    """Dispatch to the selected encoding (``"repair"`` or ``"figure1"``)."""
    try:
        builder = ENCODINGS[encoding]
    except KeyError:
        raise ValueError(
            f"unknown encoding {encoding!r}; choose from {sorted(ENCODINGS)}"
        ) from None
    return builder(
        data,
        query_groundings=query_groundings,
        focus=focus,
        safe=safe,
        violations=violations,
        focus_ids=focus_ids,
        safe_ids=safe_ids,
    )
