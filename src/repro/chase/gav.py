"""Semi-naive chase for GAV rules (with optional skolem-term heads).

After the Theorem 1 reduction, every rule has a single head atom whose terms
are frontier variables, constants, or skolem terms, and no labelled nulls
are ever created: skolem values play their role.  This makes the chase a
plain datalog fixpoint, evaluated semi-naively — each round only considers
rule bodies with at least one atom matched in the most recent delta.

The same matcher also enumerates *groundings*: the instantiations of a rule
whose body facts all hold in a given instance.  Grounding enumeration is the
basis of support sets (Definition 4) and of the Figure 1 program grounding.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.dependencies.tgds import TGD, SkolemTerm
from repro.relational.instance import Fact, Instance
from repro.relational.queries import Atom, CompiledJoin, match_atoms
from repro.relational.terms import Const, Variable


def _unify_atom_with_fact(
    atom: Atom, fact: Fact, binding: dict[Variable, Any]
) -> dict[Variable, Any] | None:
    """Extend ``binding`` so that ``atom`` matches ``fact``, or None."""
    if atom.relation != fact.relation or len(atom.terms) != len(fact.args):
        return None
    local = dict(binding)
    for term, value in zip(atom.terms, fact.args):
        if isinstance(term, Variable):
            if term in local:
                if local[term] != value:
                    return None
            else:
                local[term] = value
        elif isinstance(term, Const):
            if term.value != value:
                return None
        else:
            raise TypeError(f"unexpected body term {term!r}")
    return local


_VAR, _CONST, _SKOLEM = 0, 1, 2


def compile_head_grounder(rule: TGD) -> Callable[[dict[Variable, Any]], Fact]:
    """A function instantiating the (single) GAV head under a binding.

    The term kinds are classified once at compile time; the chase and the
    grounder call the result once per derived binding, skipping the
    per-term isinstance dispatch of the uncompiled path.
    """
    atom = rule.head[0]
    relation = atom.relation
    ops: list[tuple[int, Any]] = []
    for term in atom.terms:
        if isinstance(term, Variable):
            ops.append((_VAR, term))
        elif isinstance(term, Const):
            ops.append((_CONST, term.value))
        elif isinstance(term, SkolemTerm):
            ops.append((_SKOLEM, term))
        else:
            raise TypeError(f"unexpected head term {term!r}")

    def ground(binding: dict[Variable, Any]) -> Fact:
        return Fact(
            relation,
            [
                binding[payload]
                if kind == _VAR
                else (payload if kind == _CONST else payload.ground(binding))
                for kind, payload in ops
            ],
        )

    return ground


def compile_substituter(atom: Atom) -> Callable[[dict[Variable, Any]], Fact]:
    """A function instantiating a body atom (variables/constants only)."""
    relation = atom.relation
    ops: list[tuple[bool, Any]] = []
    for term in atom.terms:
        if isinstance(term, Variable):
            ops.append((True, term))
        elif isinstance(term, Const):
            ops.append((False, term.value))
        else:
            raise TypeError(f"cannot ground term {term!r}")

    def substitute(binding: dict[Variable, Any]) -> Fact:
        return Fact(
            relation,
            [binding[payload] if is_var else payload for is_var, payload in ops],
        )

    return substitute


def ground_head(rule: TGD, binding: dict[Variable, Any]) -> Fact:
    """Instantiate the (single) head atom of a GAV rule under ``binding``."""
    return compile_head_grounder(rule)(binding)


def _check_rules(rules: Sequence[TGD]) -> None:
    for rule in rules:
        if not rule.is_gav():
            raise ValueError(
                f"{rule.label}: gav_chase requires GAV rules "
                "(single head atom, no existential variables)"
            )


class PivotEntry:
    """One (rule, pivot-atom) pair of a :class:`RuleIndex`.

    The join over the remaining body atoms is compiled lazily on first use
    and reused for every later delta fact and round: its plan depends only
    on the bound-variable *names* (the pivot's variables), never on their
    values or on the instance contents, so one plan serves every instance
    the index is ever run against.
    """

    __slots__ = ("rule", "pivot", "rest", "ground", "substituters", "_join")

    def __init__(self, rule: TGD, position: int, ground) -> None:
        self.rule = rule
        self.pivot = rule.body[position]
        self.rest = [a for i, a in enumerate(rule.body) if i != position]
        self.ground = ground
        self.substituters = tuple(
            compile_substituter(atom) for atom in rule.body
        )
        self._join: CompiledJoin | None = None

    def join(self, instance: Instance) -> CompiledJoin:
        if self._join is None:
            self._join = CompiledJoin(
                instance, self.rest, self.pivot.variables()
            )
        return self._join

    def seed(self, fact: Fact) -> dict[Variable, Any] | None:
        return _unify_atom_with_fact(self.pivot, fact, {})

    def body_facts(self, binding: dict[Variable, Any]) -> tuple[Fact, ...]:
        return tuple(sub(binding) for sub in self.substituters)


class RuleIndex:
    """Per-relation pivot index over GAV rules.

    Indexing a delta fact into the rules it can wake is the core step of
    both the full semi-naive chase (:func:`gav_chase`) and the delta chase
    of :mod:`repro.incremental`; building the index once and sharing it
    amortizes head-grounder/substituter compilation and the lazy join
    plans across every round — and, for an update session, across every
    applied delta.
    """

    def __init__(self, rules: Sequence[TGD]) -> None:
        _check_rules(rules)
        self.rules = list(rules)
        self.by_relation: dict[str, list[PivotEntry]] = {}
        for rule in self.rules:
            ground = compile_head_grounder(rule)
            for position in range(len(rule.body)):
                entry = PivotEntry(rule, position, ground)
                self.by_relation.setdefault(entry.pivot.relation, []).append(
                    entry
                )

    def entries_for(self, relation: str) -> Sequence[PivotEntry]:
        return self.by_relation.get(relation, ())


def gav_chase(
    instance: Instance,
    rules: Sequence[TGD],
    max_rounds: int = 1_000_000,
    stats: dict[str, int] | None = None,
    index: RuleIndex | None = None,
) -> Instance:
    """Compute the least fixpoint of ``rules`` over ``instance`` (a copy).

    Semi-naive evaluation with *strict* rounds: round ``k`` matches each
    rule body with at least one atom bound to a fact derived in round
    ``k - 1``, and facts derived in round ``k`` only become visible to
    joins in round ``k + 1``.  Strict rounds make the per-round derivation
    set — and therefore the ``rounds`` counter — a pure function of
    (instance, rules), independent of fact iteration order, which is what
    lets the batch evaluator (:mod:`repro.chase.batch`) reproduce the
    counters bit-for-bit.  A prebuilt ``index`` (:class:`RuleIndex` over
    the same rules) can be passed to share compiled joins across repeated
    chases.

    When ``stats`` is a dict, the deterministic work counters ``rounds``
    (semi-naive delta iterations) and ``derived_facts`` (facts added
    beyond the input) are recorded into it (observability; answer-neutral).
    """
    if index is None:
        index = RuleIndex(rules)
    else:
        _check_rules(rules)
    work = instance.copy()
    delta = list(instance)

    rounds = 0
    while delta:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError(f"gav_chase exceeded {max_rounds} rounds")
        pending: set[Fact] = set()
        for fact in delta:
            for entry in index.entries_for(fact.relation):
                seed = entry.seed(fact)
                if seed is None:
                    continue
                join = entry.join(work)
                # Buffer heads until the round ends: a derivation that
                # needs an in-round fact fires next round instead, so the
                # fixpoint is unchanged but each round's output depends
                # only on the (work, delta) sets.
                derived = [
                    entry.ground(binding)
                    for binding in join.bindings(work, seed)
                ]
                for head_fact in derived:
                    if head_fact not in work:
                        pending.add(head_fact)
        delta = list(pending)
        for head_fact in delta:
            work.add(head_fact)
    if stats is not None:
        stats["rounds"] = rounds
        stats["derived_facts"] = len(work) - len(instance)
    return work


def enumerate_groundings(
    rules: Iterable[TGD],
    instance: Instance,
) -> Iterator[tuple[TGD, tuple[Fact, ...], Fact]]:
    """Yield every grounding ``(rule, body_facts, head_fact)`` over ``instance``.

    A grounding is an instantiation of the rule whose body facts all hold in
    the instance.  Duplicate bindings that produce the same (body, head)
    pair are deduplicated per rule.  *Tautological* groundings — the head
    fact occurring in its own body (e.g. transitivity instantiated with a
    reflexive premise) — are dropped: they can never contribute a genuine
    derivation or support set.
    """
    for rule in rules:
        seen: set[tuple[tuple[Fact, ...], Fact]] = set()
        substituters = [compile_substituter(atom) for atom in rule.body]
        ground = compile_head_grounder(rule)
        for binding in match_atoms(instance, list(rule.body)):
            body_facts = tuple(sub(binding) for sub in substituters)
            head_fact = ground(binding)
            if head_fact in body_facts:
                continue
            key = (body_facts, head_fact)
            if key not in seen:
                seen.add(key)
                yield rule, body_facts, head_fact
