"""Semi-naive chase for GAV rules (with optional skolem-term heads).

After the Theorem 1 reduction, every rule has a single head atom whose terms
are frontier variables, constants, or skolem terms, and no labelled nulls
are ever created: skolem values play their role.  This makes the chase a
plain datalog fixpoint, evaluated semi-naively — each round only considers
rule bodies with at least one atom matched in the most recent delta.

The same matcher also enumerates *groundings*: the instantiations of a rule
whose body facts all hold in a given instance.  Grounding enumeration is the
basis of support sets (Definition 4) and of the Figure 1 program grounding.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.dependencies.tgds import TGD, SkolemTerm
from repro.relational.instance import Fact, Instance
from repro.relational.queries import Atom, match_atoms
from repro.relational.terms import Const, Variable


def _unify_atom_with_fact(
    atom: Atom, fact: Fact, binding: dict[Variable, Any]
) -> dict[Variable, Any] | None:
    """Extend ``binding`` so that ``atom`` matches ``fact``, or None."""
    if atom.relation != fact.relation or len(atom.terms) != len(fact.args):
        return None
    local = dict(binding)
    for term, value in zip(atom.terms, fact.args):
        if isinstance(term, Variable):
            if term in local:
                if local[term] != value:
                    return None
            else:
                local[term] = value
        elif isinstance(term, Const):
            if term.value != value:
                return None
        else:
            raise TypeError(f"unexpected body term {term!r}")
    return local


def ground_head(rule: TGD, binding: dict[Variable, Any]) -> Fact:
    """Instantiate the (single) head atom of a GAV rule under ``binding``."""
    atom = rule.head[0]
    args = []
    for term in atom.terms:
        if isinstance(term, Variable):
            args.append(binding[term])
        elif isinstance(term, Const):
            args.append(term.value)
        elif isinstance(term, SkolemTerm):
            args.append(term.ground(binding))
        else:
            raise TypeError(f"unexpected head term {term!r}")
    return Fact(atom.relation, args)


def _check_rules(rules: Sequence[TGD]) -> None:
    for rule in rules:
        if not rule.is_gav():
            raise ValueError(
                f"{rule.label}: gav_chase requires GAV rules "
                "(single head atom, no existential variables)"
            )


def gav_chase(
    instance: Instance,
    rules: Sequence[TGD],
    max_rounds: int = 1_000_000,
) -> Instance:
    """Compute the least fixpoint of ``rules`` over ``instance`` (a copy).

    Semi-naive evaluation: round ``k`` matches each rule body with at least
    one atom bound to a fact derived in round ``k - 1``.
    """
    _check_rules(rules)
    work = instance.copy()
    delta = list(instance)

    # Index rules by body relation so a delta fact only wakes relevant rules.
    by_relation: dict[str, list[tuple[TGD, int]]] = {}
    for rule in rules:
        for index, atom in enumerate(rule.body):
            by_relation.setdefault(atom.relation, []).append((rule, index))

    rounds = 0
    while delta:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError(f"gav_chase exceeded {max_rounds} rounds")
        next_delta: list[Fact] = []
        for fact in delta:
            for rule, pivot in by_relation.get(fact.relation, ()):
                seed = _unify_atom_with_fact(rule.body[pivot], fact, {})
                if seed is None:
                    continue
                rest = [a for i, a in enumerate(rule.body) if i != pivot]
                # Buffer heads: adding to `work` while match_atoms iterates
                # over it would mutate the live extension sets.
                derived = [
                    ground_head(rule, binding)
                    for binding in match_atoms(work, rest, seed)
                ]
                for head_fact in derived:
                    if work.add(head_fact):
                        next_delta.append(head_fact)
        delta = next_delta
    return work


def enumerate_groundings(
    rules: Iterable[TGD],
    instance: Instance,
) -> Iterator[tuple[TGD, tuple[Fact, ...], Fact]]:
    """Yield every grounding ``(rule, body_facts, head_fact)`` over ``instance``.

    A grounding is an instantiation of the rule whose body facts all hold in
    the instance.  Duplicate bindings that produce the same (body, head)
    pair are deduplicated per rule.  *Tautological* groundings — the head
    fact occurring in its own body (e.g. transitivity instantiated with a
    reflexive premise) — are dropped: they can never contribute a genuine
    derivation or support set.
    """
    for rule in rules:
        seen: set[tuple[tuple[Fact, ...], Fact]] = set()
        for binding in match_atoms(instance, list(rule.body)):
            body_facts = tuple(atom.substitute(binding) for atom in rule.body)
            head_fact = ground_head(rule, binding)
            if head_fact in body_facts:
                continue
            key = (body_facts, head_fact)
            if key not in seen:
                seen.add(key)
                yield rule, body_facts, head_fact
