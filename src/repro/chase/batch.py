"""Set-at-a-time batch evaluation for the exchange phase.

The tuple-at-a-time evaluator (:mod:`repro.chase.gav`,
:mod:`repro.relational.queries`) walks one candidate fact at a time and
copies a binding dict per successful match.  This module replaces those
inner loops with **batch operators** over tuple rows:

- a binding is a plain ``tuple`` of values laid out by a fixed
  variable-to-slot assignment compiled per rule (no dicts, no copies);
- each join level is a compiled :class:`_AtomStep` probing a multi-column
  **hash index** over the relation extension — built once per
  (relation, key-positions) signature, shared across rules, and maintained
  incrementally as the chase derives new facts;
- constant filters and repeated-variable checks are folded into the index
  build, so they run once per stored fact instead of once per probe.

A small **planner** (:func:`plan_mode`) picks the execution mode per rule:

- ``nested`` — the relations involved are tiny; fall back to the existing
  compiled nested-loop join (index build would cost more than it saves);
- ``hash`` — the default batch hash join described above;
- ``sqlite`` — the relations involved are large enough that pushing the
  join down into SQLite (via :mod:`repro.storage.sqlite_store`) wins: the
  instance is mirrored once into an in-memory store and each rule body
  becomes one SELECT over the ``rel_<name>`` tables.

The chase itself only ever uses ``nested``/``hash`` (its extensions grow
every round, so a SQLite mirror would be rebuilt per round); the one-shot
post-chase joins — grounding enumeration and violation detection — use the
full planner.  Every mode produces the same row *set*; order differences
are absorbed by the canonical sorting in :mod:`repro.xr.exchange`.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import itemgetter
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.dependencies.egds import EGD
from repro.dependencies.tgds import TGD, SkolemTerm
from repro.relational.instance import Fact, Instance
from repro.relational.queries import Atom, match_atoms, plan_join_order
from repro.relational.terms import Const, SkolemValue, Variable, is_constant_value


@dataclass(frozen=True)
class BatchOptions:
    """Planner thresholds (see :func:`plan_mode`).

    ``nested_threshold`` is the largest *total* extension size (sum over
    the body's relations) still handled by the nested-loop fallback;
    ``sqlite_threshold`` is the smallest total extension size at which the
    one-shot joins are pushed down into SQLite.  Tests force
    ``sqlite_threshold`` low to exercise the push-down on small instances.
    """

    nested_threshold: int = 16
    sqlite_threshold: int = 100_000


DEFAULT_OPTIONS = BatchOptions()


def plan_mode(
    instance: Instance, atoms: Sequence[Atom], options: BatchOptions
) -> str:
    """Choose ``nested`` / ``hash`` / ``sqlite`` for one body join."""
    total = sum(len(instance.facts_of(atom.relation)) for atom in atoms)
    if total <= options.nested_threshold:
        return "nested"
    if total >= options.sqlite_threshold:
        return "sqlite"
    return "hash"


# --------------------------------------------------------------- compilation


def _key_projector(positions: Sequence[int]) -> Callable[[Sequence], Any]:
    """A compiled index-key projection: scalar for one column, tuple else."""
    if not positions:
        return lambda values: ()
    return itemgetter(*positions)


def _tuple_projector(positions: Sequence[int]) -> Callable[[Sequence], tuple]:
    """A compiled projection that always yields a tuple (row extension)."""
    if not positions:
        return lambda values: ()
    if len(positions) == 1:
        position = positions[0]
        return lambda values: (values[position],)
    return itemgetter(*positions)


class _AtomStep:
    """One join level of a batch plan, compiled for a fixed slot layout.

    ``key_positions``/``key_slots`` pair fact argument positions with the
    row slots they must equal (bound variables, including a variable bound
    twice within this atom); ``const_checks`` and ``same_checks`` are
    folded into the index build; ``new_positions`` are projected into the
    row extension, binding fresh slots in first-occurrence order.
    """

    __slots__ = (
        "relation",
        "key_positions",
        "key_slots",
        "const_checks",
        "same_checks",
        "new_positions",
        "key_of_args",
        "ext_of_args",
        "key_of_row",
        "signature",
    )

    def __init__(self, atom: Atom, layout: dict[Variable, int]) -> None:
        self.relation = atom.relation
        key_positions: list[int] = []
        key_slots: list[int] = []
        const_checks: list[tuple[int, Any]] = []
        same_checks: list[tuple[int, int]] = []
        new_positions: list[int] = []
        first_here: dict[Variable, int] = {}
        for position, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                slot = layout.get(term)
                if slot is not None:
                    key_positions.append(position)
                    key_slots.append(slot)
                elif term in first_here:
                    same_checks.append((first_here[term], position))
                else:
                    first_here[term] = position
                    new_positions.append(position)
            elif isinstance(term, Const):
                const_checks.append((position, term.value))
            else:
                raise TypeError(f"unexpected body term {term!r}")
        for variable, position in first_here.items():
            layout[variable] = len(layout)
        self.key_positions = tuple(key_positions)
        self.key_slots = tuple(key_slots)
        self.const_checks = tuple(const_checks)
        self.same_checks = tuple(same_checks)
        self.new_positions = tuple(new_positions)
        # Compiled projections: a single-column key stays a scalar (both
        # sides of the index agree), a multi-column key is itemgetter's
        # tuple; extensions are always tuples (rows concatenate them).
        self.key_of_args = _key_projector(self.key_positions)
        self.key_of_row = _key_projector(self.key_slots)
        self.ext_of_args = _tuple_projector(self.new_positions)
        # Everything admit() looks at: two steps with equal signatures
        # build identical indexes, so the cache can share one.
        self.signature = (
            self.relation,
            self.key_positions,
            self.const_checks,
            self.same_checks,
            self.new_positions,
        )

    def admit(self, fact: Fact) -> tuple[Any, tuple] | None:
        """``(key, extension)`` for a fact passing the folded filters."""
        args = fact.args
        for position, value in self.const_checks:
            if args[position] != value:
                return None
        for left, right in self.same_checks:
            if args[left] != args[right]:
                return None
        return (self.key_of_args(args), self.ext_of_args(args))


class _IndexCache:
    """Hash indexes over one instance, maintained incrementally.

    Keyed by step *signature* (relation, key positions, folded filters,
    projection): plans that join the same relation the same way — e.g.
    the two self-join atoms of every key egd over one relation — share a
    single index.  Each index is built exactly once from the extension
    and then extended fact-by-fact as the chase derives new rows
    (:meth:`add_fact`).
    """

    __slots__ = ("instance", "_by_signature", "_by_relation")

    def __init__(self, instance: Instance) -> None:
        self.instance = instance
        self._by_signature: dict[tuple, dict] = {}
        self._by_relation: dict[str, list[tuple[_AtomStep, dict]]] = {}

    def index_for(self, step: _AtomStep) -> dict[Any, list[tuple]]:
        index = self._by_signature.get(step.signature)
        if index is None:
            index = {}
            admit = step.admit
            for fact in self.instance.facts_of(step.relation):
                entry = admit(fact)
                if entry is not None:
                    index.setdefault(entry[0], []).append((entry[1], fact))
            self._by_signature[step.signature] = index
            self._by_relation.setdefault(step.relation, []).append(
                (step, index)
            )
        return index

    def add_fact(self, fact: Fact) -> None:
        for step, index in self._by_relation.get(fact.relation, ()):
            entry = step.admit(fact)
            if entry is not None:
                index.setdefault(entry[0], []).append((entry[1], fact))


def _probe(
    step: _AtomStep, index: dict[Any, list[tuple]], rows: list[tuple]
) -> list[tuple]:
    key_of_row = step.key_of_row
    out: list[tuple] = []
    append = out.append
    get = index.get
    for row in rows:
        bucket = get(key_of_row(row))
        if bucket:
            for extension, _fact in bucket:
                append(row + extension)
    return out


def _probe_tracked(
    step: _AtomStep,
    index: dict[Any, list[tuple]],
    rows: list[tuple[tuple, tuple]],
) -> list[tuple[tuple, tuple]]:
    """Like :func:`_probe`, but rows are ``(values, provenance facts)``.

    Provenance rows let grounding enumeration emit the matched body facts
    without re-instantiating them by substitution — the contributing
    stored fact rides along with every probe extension.
    """
    key_of_row = step.key_of_row
    out: list[tuple[tuple, tuple]] = []
    append = out.append
    get = index.get
    for values, facts in rows:
        bucket = get(key_of_row(values))
        if bucket:
            for extension, fact in bucket:
                append((values + extension, facts + (fact,)))
    return out


_VAR, _CONST, _SKOLEM = 0, 1, 2


def compile_slot_head(
    rule: TGD, layout: dict[Variable, int]
) -> Callable[[tuple], Fact]:
    """The head grounder of a GAV rule, compiled against a slot layout."""
    atom = rule.head[0]
    relation = atom.relation
    ops: list[tuple[int, Any]] = []
    for term in atom.terms:
        if isinstance(term, Variable):
            ops.append((_VAR, layout[term]))
        elif isinstance(term, Const):
            ops.append((_CONST, term.value))
        elif isinstance(term, SkolemTerm):
            arg_ops = tuple(
                (True, layout[argument])
                if isinstance(argument, Variable)
                else (False, argument.value)
                for argument in term.args
            )
            ops.append((_SKOLEM, (term.function, arg_ops)))
        else:
            raise TypeError(f"unexpected head term {term!r}")

    if all(kind == _VAR for kind, _payload in ops):
        # The common GAV case (no constants, no skolems): the head args
        # are a plain projection of the row.
        project = _tuple_projector([payload for _kind, payload in ops])

        def ground_projection(row: tuple) -> Fact:
            return Fact(relation, project(row))

        return ground_projection

    def ground(row: tuple) -> Fact:
        args = []
        for kind, payload in ops:
            if kind == _VAR:
                args.append(row[payload])
            elif kind == _CONST:
                args.append(payload)
            else:
                function, arg_ops = payload
                args.append(
                    SkolemValue(
                        function,
                        tuple(
                            row[value] if is_var else value
                            for is_var, value in arg_ops
                        ),
                    )
                )
        return Fact(relation, args)

    return ground


def compile_slot_substituter(
    atom: Atom, layout: dict[Variable, int]
) -> Callable[[tuple], Fact]:
    """A body-atom instantiator (variables/constants), row-slot based."""
    relation = atom.relation
    ops = tuple(
        (True, layout[term])
        if isinstance(term, Variable)
        else (False, term.value)
        for term in atom.terms
    )

    def substitute(row: tuple) -> Fact:
        return Fact(
            relation,
            [row[slot] if is_var else slot for is_var, slot in ops],
        )

    return substitute


# ------------------------------------------------------------- full-body join


class _BodyPlan:
    """A compiled full-body join: every atom is a probe step.

    Rows start as the empty tuple and grow one atom at a time in the
    planned order; the slot layout is the first-occurrence order of the
    variables along that order.
    """

    __slots__ = ("atoms", "steps", "layout", "body_order")

    def __init__(self, instance: Instance, atoms: Sequence[Atom]) -> None:
        original = list(atoms)
        self.atoms = list(plan_join_order(instance, original, set()))
        # Recover each planned atom's original position (by object
        # identity — a body may contain equal atoms twice), so provenance
        # tuples in join order can be reordered back to body order.
        join_to_body: list[int] = []
        taken: set[int] = set()
        for atom in self.atoms:
            for index, candidate in enumerate(original):
                if index not in taken and candidate is atom:
                    taken.add(index)
                    join_to_body.append(index)
                    break
        inverse = [0] * len(original)
        for join_position, body_index in enumerate(join_to_body):
            inverse[body_index] = join_position
        self.body_order = tuple(inverse)
        self.layout: dict[Variable, int] = {}
        self.steps = [_AtomStep(atom, self.layout) for atom in self.atoms]

    def rows_hash(self, cache: _IndexCache) -> list[tuple]:
        rows: list[tuple] = [()]
        for step in self.steps:
            rows = _probe(step, cache.index_for(step), rows)
            if not rows:
                return rows
        return rows

    def rows_hash_tracked(
        self, cache: _IndexCache
    ) -> list[tuple[tuple, tuple]]:
        """Hash-join rows with the matched facts riding along.

        Each result is ``(values, facts-in-join-order)``; reorder the
        facts through :attr:`body_order` to recover the body-order tuple.
        """
        rows: list[tuple[tuple, tuple]] = [((), ())]
        for step in self.steps:
            rows = _probe_tracked(step, cache.index_for(step), rows)
            if not rows:
                return rows
        return rows

    def rows_nested(self, instance: Instance) -> list[tuple]:
        order = [
            variable
            for variable, _slot in sorted(
                self.layout.items(), key=lambda item: item[1]
            )
        ]
        return [
            tuple(binding[variable] for variable in order)
            for binding in match_atoms(instance, self.atoms)
        ]

    def rows_sqlite(self, mirror: "_SQLiteMirror") -> list[tuple]:
        return mirror.join_rows(self.atoms, self.layout)


class _SQLiteMirror:
    """A lazy in-memory SQLite copy of one instance for join push-down.

    Built at most once per batch context; each body join becomes a single
    SELECT over the mirrored ``rel_<name>`` tables with equality
    conditions for shared variables and encoded-constant filters.  Raises
    ``TypeError`` for unencodable values (callers fall back to hash mode).
    """

    __slots__ = ("instance", "_store", "_failed")

    def __init__(self, instance: Instance) -> None:
        self.instance = instance
        self._store = None
        self._failed = False

    def _ensure_store(self):
        if self._failed:
            raise TypeError("instance not representable in the SQLite mirror")
        if self._store is None:
            from repro.storage.sqlite_store import SQLiteInstanceStore

            store = SQLiteInstanceStore(":memory:")
            try:
                store.save(self.instance)
            except TypeError:
                self._failed = True
                store.close()
                raise
            self._store = store
        return self._store

    def join_rows(
        self, atoms: Sequence[Atom], layout: dict[Variable, int]
    ) -> list[tuple]:
        from repro.storage.sqlite_store import decode_value, encode_value

        if any(
            not self.instance.facts_of(atom.relation) for atom in atoms
        ):
            return []
        store = self._ensure_store()
        first_seen: dict[Variable, str] = {}
        conditions: list[str] = []
        parameters: list[str] = []
        tables: list[str] = []
        for index, atom in enumerate(atoms):
            alias = f"t{index}"
            tables.append(f'"rel_{atom.relation}" {alias}')
            for position, term in enumerate(atom.terms):
                column = f"{alias}.c{position}"
                if isinstance(term, Variable):
                    if term in first_seen:
                        conditions.append(f"{column} = {first_seen[term]}")
                    else:
                        first_seen[term] = column
                elif isinstance(term, Const):
                    conditions.append(f"{column} = ?")
                    parameters.append(encode_value(term.value))
                else:
                    raise TypeError(f"unexpected body term {term!r}")
        columns = [
            column
            for _variable, column in sorted(
                first_seen.items(), key=lambda item: layout[item[0]]
            )
        ]
        sql = (
            f"SELECT {', '.join(columns) if columns else '1'} "
            f"FROM {', '.join(tables)}"
        )
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        cursor = store.connection.execute(sql, parameters)
        if not columns:
            return [() for _row in cursor.fetchall()]
        return [
            tuple(decode_value(value) for value in row)
            for row in cursor.fetchall()
        ]


class _BatchContext:
    """Shared per-instance state for the one-shot post-chase joins."""

    __slots__ = ("instance", "options", "cache", "mirror", "plan_log")

    def __init__(
        self,
        instance: Instance,
        options: BatchOptions,
        plan_log: dict[str, str] | None = None,
    ) -> None:
        self.instance = instance
        self.options = options
        self.cache = _IndexCache(instance)
        self.mirror = _SQLiteMirror(instance)
        self.plan_log = plan_log

    def rows(self, label: str, atoms: Sequence[Atom]) -> tuple[_BodyPlan, list[tuple]]:
        plan = _BodyPlan(self.instance, atoms)
        mode = plan_mode(self.instance, atoms, self.options)
        if mode == "sqlite":
            try:
                rows = plan.rows_sqlite(self.mirror)
            except TypeError:
                # Unencodable value (e.g. a boolean): the mirror cannot
                # represent this instance; run the hash join instead.
                mode = "hash"
                rows = plan.rows_hash(self.cache)
        elif mode == "nested":
            rows = plan.rows_nested(self.instance)
        else:
            rows = plan.rows_hash(self.cache)
        if self.plan_log is not None:
            self.plan_log[label] = mode
        return plan, rows


# -------------------------------------------------------------------- chase


class _PivotPlan:
    """One (rule, pivot-position) batch plan for the semi-naive chase.

    The pivot atom seeds rows directly from delta facts; the remaining
    atoms are probe steps against the (round-stable) work instance.
    """

    __slots__ = ("rule", "pivot", "steps", "ground", "layout")

    def __init__(self, instance: Instance, rule: TGD, position: int) -> None:
        self.rule = rule
        self.pivot = rule.body[position]
        self.layout: dict[Variable, int] = {}
        seed_step = _AtomStep(self.pivot, self.layout)
        rest = [a for i, a in enumerate(rule.body) if i != position]
        ordered = plan_join_order(instance, rest, set(self.layout))
        self.steps = [seed_step] + [
            _AtomStep(atom, self.layout) for atom in ordered
        ]
        self.ground = compile_slot_head(rule, self.layout)

    def seed_rows(self, facts: Iterable[Fact]) -> list[tuple]:
        admit = self.steps[0].admit
        rows = []
        for fact in facts:
            entry = admit(fact)
            if entry is not None:
                rows.append(entry[1])
        return rows


def batch_chase(
    instance: Instance,
    rules: Sequence[TGD],
    max_rounds: int = 1_000_000,
    stats: dict[str, int] | None = None,
    options: BatchOptions = DEFAULT_OPTIONS,
) -> Instance:
    """Strict-round semi-naive fixpoint, evaluated set-at-a-time.

    Bit-identical to :func:`repro.chase.gav.gav_chase` (same fixpoint,
    same ``rounds``/``derived_facts`` counters): both use strict rounds,
    so the per-round derivation set is a pure function of the (work,
    delta) sets and the evaluation strategy cannot be observed.
    """
    from repro.chase.gav import _check_rules

    _check_rules(rules)
    work = instance.copy()
    cache = _IndexCache(work)
    by_relation: dict[str, list[_PivotPlan]] = {}
    for rule in rules:
        for position in range(len(rule.body)):
            plan = _PivotPlan(work, rule, position)
            by_relation.setdefault(plan.pivot.relation, []).append(plan)

    delta = list(instance)
    rounds = 0
    while delta:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError(f"batch_chase exceeded {max_rounds} rounds")
        delta_by_relation: dict[str, list[Fact]] = {}
        for fact in delta:
            delta_by_relation.setdefault(fact.relation, []).append(fact)
        pending: set[Fact] = set()
        for relation, facts in delta_by_relation.items():
            for plan in by_relation.get(relation, ()):
                rows = plan.seed_rows(facts)
                for step in plan.steps[1:]:
                    if not rows:
                        break
                    rows = _probe(step, cache.index_for(step), rows)
                ground = plan.ground
                for row in rows:
                    head_fact = ground(row)
                    if head_fact not in work:
                        pending.add(head_fact)
        delta = list(pending)
        for head_fact in delta:
            work.add(head_fact)
            cache.add_fact(head_fact)
    if stats is not None:
        stats["rounds"] = rounds
        stats["derived_facts"] = len(work) - len(instance)
    return work


# ------------------------------------------------- groundings and violations


def enumerate_groundings_batch(
    rules: Iterable[TGD],
    instance: Instance,
    options: BatchOptions = DEFAULT_OPTIONS,
    plan_log: dict[str, str] | None = None,
) -> Iterator[tuple[TGD, tuple[Fact, ...], Fact]]:
    """Batch equivalent of :func:`repro.chase.gav.enumerate_groundings`.

    Same dedup semantics — one grounding per distinct ``(body facts, head
    fact)`` pair per rule, tautological groundings (head in own body)
    dropped — but each rule body is one planned batch join instead of a
    per-binding nested loop.  In hash mode the matched body facts come
    straight from the join's provenance (no re-instantiation by
    substitution); nested/SQLite rows carry values only, so those modes
    substitute.  Yield order within a rule follows the join, which is
    *not* the tuple path's order; callers canonicalize.
    """
    context = _BatchContext(instance, options, plan_log)
    for rule in rules:
        mode = plan_mode(instance, rule.body, options)
        plan = _BodyPlan(instance, rule.body)
        tracked: list[tuple[tuple, tuple]] | None = None
        rows: list[tuple] = []
        if mode == "sqlite":
            try:
                rows = plan.rows_sqlite(context.mirror)
            except TypeError:
                mode = "hash"
        if mode == "nested":
            rows = plan.rows_nested(instance)
        elif mode == "hash":
            tracked = plan.rows_hash_tracked(context.cache)
        if context.plan_log is not None:
            context.plan_log[rule.label] = mode
        ground = compile_slot_head(rule, plan.layout)
        seen: set[tuple[tuple[Fact, ...], Fact]] = set()
        if tracked is not None:
            body_of = _tuple_projector(plan.body_order)
            for values, provenance in tracked:
                body_facts = body_of(provenance)
                head_fact = ground(values)
                if head_fact in body_facts:
                    continue
                key = (body_facts, head_fact)
                if key not in seen:
                    seen.add(key)
                    yield rule, body_facts, head_fact
        else:
            substituters = tuple(
                compile_slot_substituter(atom, plan.layout)
                for atom in rule.body
            )
            for row in rows:
                body_facts = tuple(sub(row) for sub in substituters)
                head_fact = ground(row)
                if head_fact in body_facts:
                    continue
                key = (body_facts, head_fact)
                if key not in seen:
                    seen.add(key)
                    yield rule, body_facts, head_fact


def find_violations_batch(
    egds: Sequence[EGD],
    chased: Instance,
    options: BatchOptions = DEFAULT_OPTIONS,
    plan_log: dict[str, str] | None = None,
) -> list:
    """All grounded-egd violations, one planned batch join per egd.

    Returns raw :class:`~repro.xr.exchange.Violation` objects including
    both orientations of symmetric egds; callers dedup through
    :func:`repro.xr.exchange.canonicalize_violations`, exactly as the
    tuple path does.
    """
    from repro.xr.exchange import Violation

    context = _BatchContext(chased, options, plan_log)
    violations = []
    for egd in egds:
        plan, rows = context.rows(egd.label, egd.body)
        if not rows:
            continue
        substituters = tuple(
            compile_slot_substituter(atom, plan.layout) for atom in egd.body
        )
        lhs_slot = plan.layout[egd.lhs]
        rhs_is_var = isinstance(egd.rhs, Variable)
        rhs_slot = plan.layout[egd.rhs] if rhs_is_var else None
        rhs_const = None if rhs_is_var else egd.rhs.value
        constants_only = egd.constants_only
        for row in rows:
            lhs_value = row[lhs_slot]
            rhs_value = row[rhs_slot] if rhs_is_var else rhs_const
            if lhs_value == rhs_value:
                continue
            if constants_only and not (
                is_constant_value(lhs_value) and is_constant_value(rhs_value)
            ):
                continue
            body_facts = tuple(sub(row) for sub in substituters)
            violations.append(Violation(egd, body_facts, lhs_value, rhs_value))
    return violations
