"""The standard chase for ``glav+(wa-glav, egd)`` schema mappings.

The chase starts from a source instance, applies the source-to-target tgds,
then saturates the target tgds and egds:

- a **tgd step** fires on an *active trigger* — a binding of the body that
  cannot be extended to satisfy the head — and adds the head facts with
  fresh labelled nulls for the existential variables;
- an **egd step** fires on a body binding with ``lhs ≠ rhs``; if both values
  are distinct constants the chase **fails**, otherwise the null among them
  is replaced everywhere by the other value.

For weakly acyclic target tgds the procedure terminates in polynomially many
steps (Fagin et al. 2005) and returns the canonical universal solution.  The
two facts the paper uses repeatedly hold for the tgd-only chase: every source
instance has a (canonical universal) solution, and the chase is monotone.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.chase.result import ChaseResult
from repro.dependencies.egds import EGD
from repro.dependencies.mapping import SchemaMapping
from repro.dependencies.tgds import TGD, SkolemTerm
from repro.relational.instance import Fact, Instance
from repro.relational.queries import Atom, match_atoms
from repro.relational.terms import (
    Const,
    Variable,
    fresh_null,
    is_constant_value,
    is_null_value,
)


def _head_satisfiable(
    instance: Instance, tgd: TGD, binding: dict[Variable, Any]
) -> bool:
    """True if the binding extends to the existentials making the head true.

    This is the activeness test of the *standard* (non-oblivious) chase: an
    already-satisfied head means the trigger does not fire.
    """
    frontier_binding = {
        var: val for var, val in binding.items() if var in tgd.frontier
    }
    for extension in match_atoms(instance, list(tgd.head), frontier_binding):
        return True
    return False


def _ground_head_atom(
    atom: Atom, binding: dict[Variable, Any]
) -> Fact:
    args = []
    for term in atom.terms:
        if isinstance(term, Variable):
            args.append(binding[term])
        elif isinstance(term, Const):
            args.append(term.value)
        elif isinstance(term, SkolemTerm):
            args.append(term.ground(binding))
        else:
            raise TypeError(f"unexpected head term {term!r}")
    return Fact(atom.relation, args)


def _apply_tgds_once(
    instance: Instance, tgds: Sequence[TGD], counters: dict[str, int]
) -> bool:
    """Fire every active trigger of every tgd once; True if anything changed."""
    pending: list[tuple[TGD, dict[Variable, Any]]] = []
    for tgd in tgds:
        for binding in match_atoms(instance, list(tgd.body)):
            if tgd.existential and _head_satisfiable(instance, tgd, binding):
                continue
            if not tgd.existential:
                if all(
                    _ground_head_atom(atom, binding) in instance
                    for atom in tgd.head
                ):
                    continue
            pending.append((tgd, binding))

    changed = False
    for tgd, binding in pending:
        # Re-check activeness: an earlier firing this round may have
        # satisfied the head already.
        if tgd.existential:
            if _head_satisfiable(instance, tgd, binding):
                continue
            extended = dict(binding)
            for var in tgd.existential:
                extended[var] = fresh_null()
                counters["nulls"] += 1
        else:
            extended = binding
        for atom in tgd.head:
            if instance.add(_ground_head_atom(atom, extended)):
                changed = True
                counters["steps"] += 1
    return changed


class _UnionFind:
    """Union-find over values, preferring constants as representatives."""

    def __init__(self) -> None:
        self.parent: dict[Any, Any] = {}

    def find(self, value: Any) -> Any:
        root = value
        while root in self.parent:
            root = self.parent[root]
        while value != root:
            parent = self.parent[value]
            self.parent[value] = root
            value = parent
        return root

    def union(self, left: Any, right: Any) -> str:
        """Merge the classes of two values.

        Returns ``"ok"`` when merged (or already equal), ``"clash"`` when
        both representatives are distinct constants.
        """
        left_root = self.find(left)
        right_root = self.find(right)
        if left_root == right_root:
            return "ok"
        left_const = is_constant_value(left_root)
        right_const = is_constant_value(right_root)
        if left_const and right_const:
            return "clash"
        if left_const:
            self.parent[right_root] = left_root
        else:
            self.parent[left_root] = right_root
        return "ok"


def _apply_egds_once(
    instance: Instance, egds: Sequence[EGD], counters: dict[str, int]
) -> tuple[bool, str | None]:
    """Apply all egd steps; returns (changed, failure_message)."""
    union_find = _UnionFind()
    any_merge = False
    for egd in egds:
        for binding in match_atoms(instance, list(egd.body)):
            lhs_value = binding[egd.lhs]
            rhs_value = (
                binding[egd.rhs] if isinstance(egd.rhs, Variable) else egd.rhs.value
            )
            if lhs_value == rhs_value:
                continue
            if egd.constants_only and (
                is_null_value(lhs_value) or is_null_value(rhs_value)
            ):
                continue
            outcome = union_find.union(lhs_value, rhs_value)
            if outcome == "clash":
                return False, (
                    f"{egd.label}: cannot equate distinct constants "
                    f"{union_find.find(lhs_value)!r} and {union_find.find(rhs_value)!r}"
                )
            any_merge = True
            counters["merges"] += 1

    if not any_merge:
        return False, None

    # Rewrite the instance under the computed substitution.
    rewritten = Instance()
    for fact in instance:
        new_args = tuple(union_find.find(arg) for arg in fact.args)
        rewritten.add(Fact(fact.relation, new_args))
    # Replace contents in place so callers keep their reference.
    instance._extensions = rewritten._extensions  # noqa: SLF001 (deliberate swap)
    instance._indexes = {}
    instance._size = len(rewritten)
    return True, None


def standard_chase(
    source: Instance,
    mapping: SchemaMapping,
    max_rounds: int = 10_000,
) -> ChaseResult:
    """Chase ``source`` with ``mapping``; return the result.

    The returned :class:`ChaseResult` carries the full chased instance and
    its target restriction (the canonical universal solution) on success.
    Raises ``RuntimeError`` if ``max_rounds`` is exceeded (which cannot
    happen for weakly acyclic mappings on finite instances).
    """
    counters = {"steps": 0, "nulls": 0, "merges": 0}
    work = source.copy()

    # Source-to-target tgds can be saturated together with target tgds; the
    # loop below handles both (s-t bodies only match source facts anyway).
    all_tgds = list(mapping.all_tgds())
    egds = list(mapping.target_egds)

    for _ in range(max_rounds):
        tgd_change = _apply_tgds_once(work, all_tgds, counters)
        egd_change, failure = _apply_egds_once(work, egds, counters)
        if failure is not None:
            return ChaseResult(
                failed=True,
                failure=failure,
                steps=counters["steps"],
                nulls_created=counters["nulls"],
                merges=counters["merges"],
            )
        if not tgd_change and not egd_change:
            target = work.restrict(mapping.target.names())
            return ChaseResult(
                failed=False,
                solution=work,
                target=target,
                steps=counters["steps"],
                nulls_created=counters["nulls"],
                merges=counters["merges"],
            )
    raise RuntimeError(f"chase did not terminate within {max_rounds} rounds")


def canonical_universal_solution(
    source: Instance, mapping: SchemaMapping
) -> Instance:
    """``chase(I, M)``: the canonical universal solution, or raise on failure."""
    result = standard_chase(source, mapping)
    if result.failed:
        raise ValueError(f"no solution exists: {result.failure}")
    assert result.target is not None
    return result.target


def has_solution(source: Instance, mapping: SchemaMapping) -> bool:
    """True if ``source`` has a solution w.r.t. ``mapping``.

    For weakly acyclic mappings, a solution exists iff the chase succeeds.
    """
    return not standard_chase(source, mapping).failed
