"""Result object for chase runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.instance import Instance


@dataclass
class ChaseResult:
    """Outcome of a chase run.

    ``failed`` is True when an egd tried to equate two distinct constants;
    in that case ``solution`` is None and ``failure`` describes the clash.
    On success, ``solution`` is the full chased instance (source facts plus
    derived target facts) and ``target`` its restriction to target relations
    — the canonical universal solution.
    """

    failed: bool
    solution: Instance | None = None
    target: Instance | None = None
    failure: str | None = None
    steps: int = 0
    nulls_created: int = 0
    merges: int = field(default=0)

    def __bool__(self) -> bool:
        return not self.failed
