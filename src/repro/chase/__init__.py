"""Chase procedures.

Two engines:

- :mod:`repro.chase.standard` — the standard chase for ``glav+(wa-glav, egd)``
  mappings: tgd steps invent labelled nulls, egd steps unify values (failing
  on two distinct constants).  Produces the canonical universal solution when
  it succeeds.  Used by the naive oracle, solution-existence checks, and
  tests.
- :mod:`repro.chase.gav` — a semi-naive bottom-up evaluator for GAV rules
  (possibly with skolem terms in heads, as produced by the Theorem 1
  reduction).  This is the engine behind the quasi-solution, the exchange
  phase, and the enumeration of rule groundings (support sets).
"""

from repro.chase.result import ChaseResult
from repro.chase.standard import (
    canonical_universal_solution,
    has_solution,
    standard_chase,
)
from repro.chase.gav import enumerate_groundings, gav_chase

__all__ = [
    "ChaseResult",
    "standard_chase",
    "canonical_universal_solution",
    "has_solution",
    "gav_chase",
    "enumerate_groundings",
]
